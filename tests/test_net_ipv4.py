"""Unit and property tests for repro.net.ipv4."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.ipv4 import (
    IPv4Error,
    format_ip,
    format_subnet,
    ip_in_prefix,
    iter_prefix,
    parse_ip,
    prefix_mask,
    prefix_of,
    prefix_size,
    random_ips,
    subnet_key,
    subnet_key_parts,
    summarize_prefixes,
)

addresses = st.integers(min_value=0, max_value=2**32 - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


class TestParseFormat:
    def test_parse_known_address(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_format_known_address(self):
        assert format_ip((192 << 24) + (168 << 16) + (1 << 8) + 5) == "192.168.1.5"

    def test_parse_rejects_short_address(self):
        with pytest.raises(IPv4Error):
            parse_ip("10.0.0")

    def test_parse_rejects_octet_out_of_range(self):
        with pytest.raises(IPv4Error):
            parse_ip("10.0.0.256")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(IPv4Error):
            parse_ip("10.0.0.x")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(IPv4Error):
            format_ip(2**32)

    @given(addresses)
    def test_roundtrip(self, ip):
        assert parse_ip(format_ip(ip)) == ip


class TestPrefixes:
    def test_prefix_mask_values(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(16) == 0xFFFF0000
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_prefix_mask_rejects_invalid(self):
        with pytest.raises(IPv4Error):
            prefix_mask(33)

    def test_prefix_of_truncates(self):
        assert prefix_of(parse_ip("10.1.2.3"), 16) == parse_ip("10.1.0.0")

    def test_prefix_size(self):
        assert prefix_size(24) == 256
        assert prefix_size(32) == 1
        assert prefix_size(0) == 2**32

    def test_ip_in_prefix(self):
        base = parse_ip("10.1.0.0")
        assert ip_in_prefix(parse_ip("10.1.200.7"), base, 16)
        assert not ip_in_prefix(parse_ip("10.2.0.1"), base, 16)

    def test_iter_prefix_small(self):
        ips = list(iter_prefix(parse_ip("10.0.0.8"), 30))
        assert ips == [parse_ip("10.0.0.8") + i for i in range(4)]

    @given(addresses, prefix_lengths)
    def test_prefix_of_is_idempotent(self, ip, length):
        base = prefix_of(ip, length)
        assert prefix_of(base, length) == base

    @given(addresses, prefix_lengths)
    def test_ip_always_in_its_own_prefix(self, ip, length):
        assert ip_in_prefix(ip, prefix_of(ip, length), length)


class TestSubnetKeys:
    @given(addresses, prefix_lengths)
    def test_subnet_key_roundtrip(self, ip, length):
        base, parsed_length = subnet_key_parts(subnet_key(ip, length))
        assert parsed_length == length
        assert base == prefix_of(ip, length)

    @given(addresses, addresses)
    def test_same_slash16_same_key(self, a, b):
        same_prefix = prefix_of(a, 16) == prefix_of(b, 16)
        assert (subnet_key(a, 16) == subnet_key(b, 16)) == same_prefix

    def test_keys_of_different_lengths_never_collide(self):
        ip = parse_ip("10.1.2.3")
        keys = {subnet_key(ip, length) for length in range(33)}
        assert len(keys) == 33

    def test_format_subnet(self):
        assert format_subnet(subnet_key(parse_ip("10.1.2.3"), 16)) == "10.1.0.0/16"


class TestSampling:
    def test_random_ips_distinct(self):
        rng = random.Random(0)
        ips = random_ips(100, rng)
        assert len(set(ips)) == 100

    def test_random_ips_from_universe(self):
        rng = random.Random(0)
        universe = list(range(1000, 1100))
        ips = random_ips(10, rng, universe=universe)
        assert all(ip in set(universe) for ip in ips)

    def test_random_ips_rejects_oversample(self):
        with pytest.raises(IPv4Error):
            random_ips(5, random.Random(0), universe=[1, 2, 3])

    def test_random_ips_rejects_negative(self):
        with pytest.raises(IPv4Error):
            random_ips(-1, random.Random(0))

    def test_summarize_prefixes_counts(self):
        ips = [parse_ip("10.0.0.1"), parse_ip("10.0.0.2"), parse_ip("10.1.0.1")]
        counts = summarize_prefixes(ips, 16)
        assert counts[subnet_key(parse_ip("10.0.0.0"), 16)] == 2
        assert counts[subnet_key(parse_ip("10.1.0.0"), 16)] == 1
