"""Unit tests for the exhaustive/oracle baselines and the GBDT substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exhaustive import (
    exhaustive_all_ports_curve,
    optimal_port_order_curve,
    oracle_curve,
    random_probe_precision,
)
from repro.baselines.gbdt import GBDTConfig, GradientBoostedTrees


class TestOptimalPortOrder:
    def test_curve_reaches_full_coverage(self, censys_dataset):
        points = optimal_port_order_curve(censys_dataset)
        assert points[-1].fraction == pytest.approx(1.0)
        assert points[-1].normalized_fraction == pytest.approx(1.0)

    def test_one_full_scan_per_port(self, censys_dataset):
        points = optimal_port_order_curve(censys_dataset)
        assert points[0].full_scans == pytest.approx(1.0)
        assert points[-1].full_scans == pytest.approx(len(points))

    def test_first_port_is_most_popular(self, censys_dataset):
        points = optimal_port_order_curve(censys_dataset)
        registry = censys_dataset.port_registry()
        top_count = registry.count(registry.top_ports(1)[0])
        assert points[0].found == top_count

    def test_fractions_monotonic(self, censys_dataset):
        points = optimal_port_order_curve(censys_dataset)
        fractions = [point.fraction for point in points]
        assert fractions == sorted(fractions)

    def test_exhaustive_all_ports_extends_to_domain_size(self, censys_dataset):
        points = exhaustive_all_ports_curve(censys_dataset)
        assert len(points) == len(censys_dataset.port_domain)
        assert points[-1].fraction == pytest.approx(1.0)

    def test_exhaustive_all_ports_without_domain(self, lzr_dataset):
        points = exhaustive_all_ports_curve(lzr_dataset, total_ports=2000)
        assert len(points) == 2000
        assert points[-1].fraction == pytest.approx(1.0)


class TestOracle:
    def test_oracle_precision_is_perfect(self, censys_dataset):
        points = oracle_curve(censys_dataset)
        assert all(point.precision == pytest.approx(1.0) for point in points)
        assert points[-1].fraction == pytest.approx(1.0)

    def test_oracle_bandwidth_equals_service_count(self, censys_dataset):
        points = oracle_curve(censys_dataset)
        expected = censys_dataset.service_count() / censys_dataset.address_space_size
        assert points[-1].full_scans == pytest.approx(expected)

    def test_oracle_empty_dataset(self, censys_dataset):
        empty = censys_dataset.restricted_to_ports([1])
        assert oracle_curve(empty) == []

    def test_random_probe_precision_small(self, censys_dataset):
        precision = random_probe_precision(censys_dataset)
        assert 0.0 < precision < 0.01


class TestGBDTConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_estimators": 0},
        {"max_depth": 0},
        {"learning_rate": 0.0},
        {"learning_rate": 2.0},
        {"min_samples_leaf": 0},
        {"subsample": 0.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GBDTConfig(**kwargs)


class TestGradientBoostedTrees:
    def test_learns_single_feature_rule(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(400, 3)).astype(float)
        y = X[:, 1]
        model = GradientBoostedTrees(GBDTConfig(n_estimators=15)).fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.99

    def test_learns_conjunction(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(600, 4)).astype(float)
        y = ((X[:, 0] == 1) & (X[:, 2] == 1)).astype(float)
        model = GradientBoostedTrees(GBDTConfig(n_estimators=30, max_depth=3)).fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.95

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostedTrees(GBDTConfig(n_estimators=10)).fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_degenerate_labels_fall_back_to_base_rate(self):
        X = np.zeros((50, 3))
        y = np.ones(50)
        model = GradientBoostedTrees().fit(X, y)
        assert model.n_trees == 0
        assert np.all(model.predict_proba(X) > 0.9)

    def test_input_validation(self):
        model = GradientBoostedTrees()
        with pytest.raises(ValueError):
            model.fit(np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.zeros(9))

    def test_subsampling_still_learns(self):
        rng = np.random.default_rng(3)
        X = rng.integers(0, 2, size=(500, 4)).astype(float)
        y = X[:, 3]
        model = GradientBoostedTrees(GBDTConfig(n_estimators=25, subsample=0.5)).fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.95

    def test_real_valued_features_supported(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 2))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
        model = GradientBoostedTrees(GBDTConfig(n_estimators=40)).fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.9

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=20, max_value=80), st.integers(min_value=0, max_value=1000))
    def test_probability_bounds_property(self, rows, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 2, size=(rows, 3)).astype(float)
        y = rng.integers(0, 2, size=rows).astype(float)
        model = GradientBoostedTrees(GBDTConfig(n_estimators=5)).fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))
