"""Property tests for the array-native column storage.

The hot columns (:class:`~repro.scanner.records.ObservationBatch`,
:class:`~repro.core.features.HostFeatureColumns`, shard payloads) are backed
by :class:`~repro.engine.columns.IntColumn` -- fixed-width int64
``array('q')`` buffers -- instead of lists of boxed ints.  The storage must
be *invisible*: object rows round-trip through the columns bit-identically,
int64 boundary values survive, overflow is loud, empty batches behave, and
hash-sharded group columns reassemble through ``merge_ordered`` into exactly
the original serial order.  Hypothesis drives the shapes; the encoder-sharing
regression tests at the bottom pin the "one status-id space per pipeline"
contract the columnar scan path relies on.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.columns import IntColumn, numpy_available
from repro.engine.encoding import DictionaryEncoder
from repro.engine.shard import merge_ordered, shard_group_columns
from repro.internet.banners import BannerInterner
from repro.scanner.records import ObservationBatch, ScanObservation

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

int64s = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)

protocols = st.sampled_from(["http", "ssh", "tls", "ftp", "telnet", "unknown"])
banner_features = st.dictionaries(
    st.sampled_from(["title", "server", "banner", "cert_subject"]),
    st.text(max_size=8), max_size=3)
observations = st.builds(
    ScanObservation,
    ip=st.integers(min_value=0, max_value=2**32 - 1),
    port=st.integers(min_value=0, max_value=65535),
    protocol=protocols,
    app_features=banner_features,
    ttl=st.integers(min_value=0, max_value=255),
)


class TestIntColumn:
    @given(st.lists(int64s, max_size=50))
    def test_round_trips_int64_values_bit_identically(self, values):
        column = IntColumn(values)
        assert column.tolist() == values
        assert list(column) == values
        # The buffer itself is the canonical encoding: 8 bytes per value,
        # identical to a plain array('q') built from the same values.
        assert column.tobytes() == array("q", values).tobytes()

    def test_boundary_values_survive(self):
        column = IntColumn([INT64_MIN, -1, 0, 1, INT64_MAX])
        assert column.tolist() == [INT64_MIN, -1, 0, 1, INT64_MAX]

    @pytest.mark.parametrize("value", [INT64_MAX + 1, INT64_MIN - 1, 2**64])
    def test_out_of_int64_overflows_loudly(self, value):
        with pytest.raises(OverflowError):
            IntColumn([value])
        column = IntColumn()
        with pytest.raises(OverflowError):
            column.append(value)

    def test_exposes_a_memoryview_of_machine_words(self):
        column = IntColumn([1, -2, 3])
        view = memoryview(column)
        assert view.itemsize == 8
        assert view.nbytes == 24
        assert view.format == "q"
        assert view.tolist() == [1, -2, 3]

    @given(st.lists(int64s, max_size=50))
    def test_numpy_view_is_zero_copy_and_exact(self, values):
        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        import numpy as np

        from repro.engine.columns import as_numpy

        column = IntColumn(values)
        ndarray = as_numpy(column)
        assert ndarray.dtype == np.int64
        assert ndarray.tolist() == values


class TestObservationBatchRoundTrip:
    @settings(max_examples=50)
    @given(st.lists(observations, max_size=30))
    def test_object_rows_round_trip_through_the_columns(self, rows):
        batch = ObservationBatch.from_observations(rows)
        assert len(batch) == len(rows)
        assert batch.ips.tolist() == [obs.ip for obs in rows]
        assert batch.ports.tolist() == [obs.port for obs in rows]
        assert batch.ttls.tolist() == [obs.ttl for obs in rows]
        assert batch.materialize() == rows
        assert [batch.row(i) for i in range(len(batch))] == rows

    def test_empty_batch(self):
        batch = ObservationBatch.from_observations([])
        assert len(batch) == 0
        assert batch.materialize() == []
        assert batch.pairs() == []

    @settings(max_examples=50)
    @given(st.data())
    def test_select_returns_exactly_the_requested_rows(self, data):
        rows = data.draw(st.lists(observations, min_size=1, max_size=30))
        batch = ObservationBatch.from_observations(rows)
        indices = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(rows) - 1), max_size=30))
        selected = batch.select(indices)
        assert selected.materialize() == [rows[i] for i in indices]


class TestShardReassembly:
    groups = st.lists(
        st.tuples(
            int64s,  # group key
            st.lists(  # members: (label, values)
                st.tuples(st.integers(min_value=0, max_value=65535),
                          st.lists(int64s, max_size=4)),
                max_size=4),
        ),
        max_size=12)

    @settings(max_examples=50)
    @given(groups, st.integers(min_value=1, max_value=5))
    def test_shard_slices_reassemble_in_serial_order(self, groups, shard_count):
        group_keys = [key for key, _ in groups]
        member_starts, labels = [0], []
        value_starts, value_ids = [0], []
        for _, members in groups:
            for label, values in members:
                labels.append(label)
                value_ids.extend(values)
                value_starts.append(len(value_ids))
            member_starts.append(len(labels))

        sharded = shard_group_columns(
            assign_keys=list(range(len(groups))),
            group_keys=group_keys,
            member_starts=member_starts,
            labels=labels,
            value_starts=value_starts,
            value_ids=value_ids,
            shard_count=shard_count,
        )

        # Decode every shard's locally re-offset columns back into
        # (key, [(label, values), ...]) tuples tagged with group_order.
        per_shard = []
        for shard in sharded.shards:
            assert all(isinstance(column, array)
                       for column in shard.values()), \
                "shard payload columns must be machine-native buffers"
            decoded = []
            for g, original in enumerate(shard["group_order"]):
                members = []
                for m in range(shard["member_starts"][g],
                               shard["member_starts"][g + 1]):
                    lo = shard["value_starts"][m]
                    hi = shard["value_starts"][m + 1]
                    members.append((shard["labels"][m],
                                    list(shard["value_ids"][lo:hi])))
                decoded.append((original, (shard["group_keys"][g], members)))
            per_shard.append(decoded)

        reassembled = merge_ordered(per_shard)
        assert reassembled == [(key, [(label, list(values))
                                      for label, values in members])
                               for key, members in groups]


class TestStatusEncoderSharing:
    """Regression: select/from_observations must not re-encode statuses.

    Both used to spin up a fresh id space per call, so two batches over the
    same pipeline disagreed on what status id 0 meant and every select paid
    one decode/encode round-trip per row.
    """

    def _rows(self):
        return [ScanObservation(ip=10, port=22, protocol="ssh"),
                ScanObservation(ip=10, port=80, protocol="http"),
                ScanObservation(ip=11, port=80, protocol="http")]

    def test_from_observations_reuses_the_given_encoder(self):
        encoder = DictionaryEncoder()
        first = ObservationBatch.from_observations(self._rows(),
                                                   statuses=encoder)
        second = ObservationBatch.from_observations(self._rows(),
                                                    statuses=encoder)
        assert first.statuses is encoder and second.statuses is encoder
        # Identical protocols map to identical ids across both batches.
        assert first.status.tolist() == second.status.tolist()

    def test_select_shares_tables_and_ids_verbatim(self):
        batch = ObservationBatch.from_observations(
            self._rows(), banners=BannerInterner())
        selected = batch.select([2, 0])
        assert selected.statuses is batch.statuses
        assert selected.banners is batch.banners
        assert selected.local_banners is batch.local_banners
        assert selected.status.tolist() == [batch.status[2], batch.status[0]]

    def test_empty_select_fast_path_shares_tables(self):
        batch = ObservationBatch.from_observations(self._rows())
        empty = batch.select([])
        assert len(empty) == 0
        assert empty.statuses is batch.statuses
        assert empty.banners is batch.banners
        assert empty.local_banners is batch.local_banners

    def test_pipeline_exposes_one_status_id_space(self, universe):
        from repro.scanner.pipeline import ScanPipeline

        pipeline = ScanPipeline(universe)
        first = pipeline.seed_scan(0.002, seed=1)
        second = pipeline.seed_scan(0.002, seed=2)
        assert first.batch is not None and second.batch is not None
        assert first.batch.statuses is pipeline.status_encoder
        assert second.batch.statuses is pipeline.status_encoder
