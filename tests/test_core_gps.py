"""Integration tests for the GPS orchestrator."""

from __future__ import annotations


from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.core.metrics import fraction_of_services
from repro.datasets.split import seed_scan_cost_probes
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline


class TestDatasetSplitMode:
    def test_run_produces_all_artifacts(self, gps_run):
        result, _ = gps_run
        assert result.model is not None
        assert result.feature_index is not None
        assert result.priors_plan
        assert result.predictions
        assert result.discovery_log
        assert result.model_build_seconds > 0.0

    def test_discovery_log_is_cumulative_and_deduplicated(self, gps_run):
        result, _ = gps_run
        probes = [batch.cumulative_probes for batch in result.discovery_log]
        assert probes == sorted(probes)
        seen = set()
        for batch in result.discovery_log:
            assert not (set(batch.pairs) & seen)
            seen.update(batch.pairs)
        assert seen == result.discovered_pairs()

    def test_phases_appear_in_order(self, gps_run):
        result, _ = gps_run
        phases = [batch.phase for batch in result.discovery_log]
        assert phases[0] == "seed"
        if "prediction" in phases and "priors" in phases:
            assert phases.index("priors") < phases.index("prediction")

    def test_seed_bandwidth_charged(self, gps_run, censys_dataset):
        result, pipeline = gps_run
        expected_seed = seed_scan_cost_probes(censys_dataset, 0.05)
        assert pipeline.ledger.total_probes(ScanCategory.SEED) == expected_seed

    def test_port_domain_respected(self, gps_run, censys_dataset):
        result, _ = gps_run
        domain = set(censys_dataset.port_domain)
        assert all(entry.port in domain for entry in result.priors_plan)
        assert all(prediction.port in domain for prediction in result.predictions)

    def test_gps_finds_majority_of_dataset_services(self, gps_run, censys_dataset):
        result, _ = gps_run
        fraction = fraction_of_services(result.discovered_pairs(),
                                        censys_dataset.pairs())
        assert fraction >= 0.5

    def test_gps_uses_less_bandwidth_than_exhaustive_domain_scan(self, gps_run,
                                                                 censys_dataset):
        _, pipeline = gps_run
        exhaustive_full_scans = len(censys_dataset.port_domain)
        assert pipeline.ledger.full_scans() < exhaustive_full_scans

    def test_all_observations_cover_every_phase(self, gps_run):
        result, _ = gps_run
        total = (len(result.seed_observations) + len(result.priors_observations)
                 + len(result.prediction_observations))
        assert len(result.all_observations()) == total

    def test_log_as_tuples_matches_batches(self, gps_run):
        result, _ = gps_run
        tuples = result.log_as_tuples()
        assert len(tuples) == len(result.discovery_log)
        assert tuples[0][0] == result.discovery_log[0].cumulative_probes


class TestSelfCollectedSeedMode:
    def test_gps_collects_its_own_seed(self, universe):
        pipeline = ScanPipeline(universe)
        gps = GPS(pipeline, GPSConfig(seed_fraction=0.02, step_size=16))
        result = gps.run()
        assert result.seed_observations
        # The self-collected seed is charged at one probe per (address, port).
        sampled = int(round(universe.address_space_size() * 0.02))
        assert pipeline.ledger.total_probes(ScanCategory.SEED) >= sampled * 65535


class TestBudgetEnforcement:
    def test_budget_truncates_run(self, universe, censys_dataset, censys_split):
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain,
                           max_full_scans=4.0)
        gps = GPS(pipeline, config)
        result = gps.run(seed=censys_split.seed_scan_result(),
                         seed_cost_probes=seed_scan_cost_probes(censys_dataset, 0.05))
        assert result.truncated_by_budget
        # The budget may be overshot by at most one scan batch.
        budget_probes = 4.0 * universe.address_space_size()
        assert pipeline.ledger.total_probes() <= budget_probes + 70000 * 8

    def test_unbudgeted_run_not_truncated(self, gps_run):
        result, _ = gps_run
        assert not result.truncated_by_budget

    def test_budgeted_run_finds_fewer_services(self, universe, censys_dataset,
                                               censys_split, gps_run):
        full_result, _ = gps_run
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain,
                           max_full_scans=4.0)
        gps = GPS(pipeline, config)
        budgeted = gps.run(seed=censys_split.seed_scan_result(),
                           seed_cost_probes=seed_scan_cost_probes(censys_dataset, 0.05))
        assert len(budgeted.discovered_pairs()) <= len(full_result.discovered_pairs())


class TestEngineBackedRun:
    def test_engine_model_produces_same_discoveries(self, universe, censys_dataset,
                                                    censys_split, gps_run):
        reference_result, _ = gps_run
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain, use_engine=True)
        gps = GPS(pipeline, config)
        result = gps.run(seed=censys_split.seed_scan_result(),
                         seed_cost_probes=seed_scan_cost_probes(censys_dataset, 0.05))
        assert result.discovered_pairs() == reference_result.discovered_pairs()
