"""Unit tests for repro.net.asn."""

from __future__ import annotations

import pytest

from repro.net.asn import AsnDatabase, AsnRecord
from repro.net.ipv4 import IPv4Error, parse_ip


def _record(cidr_base: str, length: int, asn: int, name: str = "") -> AsnRecord:
    return AsnRecord(base=parse_ip(cidr_base), prefix_len=length, asn=asn, name=name)


class TestAsnRecord:
    def test_contains(self):
        record = _record("10.1.0.0", 16, 65001)
        assert record.contains(parse_ip("10.1.255.255"))
        assert not record.contains(parse_ip("10.2.0.0"))

    def test_cidr_rendering(self):
        assert _record("10.1.0.0", 16, 65001).cidr() == "10.1.0.0/16"


class TestAsnDatabase:
    def test_lookup_and_asn_of(self):
        db = AsnDatabase([_record("10.1.0.0", 16, 65001, "One"),
                          _record("10.2.0.0", 16, 65002, "Two")])
        assert db.asn_of(parse_ip("10.1.4.5")) == 65001
        assert db.asn_of(parse_ip("10.2.4.5")) == 65002

    def test_unannounced_address_returns_default(self):
        db = AsnDatabase([_record("10.1.0.0", 16, 65001)])
        assert db.asn_of(parse_ip("192.168.0.1")) == 0
        assert db.asn_of(parse_ip("192.168.0.1"), default=-1) == -1

    def test_longest_prefix_match_wins(self):
        db = AsnDatabase([
            _record("10.0.0.0", 8, 65000, "Coarse"),
            _record("10.1.0.0", 16, 65001, "Fine"),
        ])
        assert db.asn_of(parse_ip("10.1.2.3")) == 65001
        assert db.asn_of(parse_ip("10.200.2.3")) == 65000

    def test_duplicate_announcement_rejected(self):
        db = AsnDatabase([_record("10.1.0.0", 16, 65001)])
        with pytest.raises(ValueError):
            db.add(_record("10.1.0.0", 16, 65099))

    def test_invalid_prefix_length_rejected(self):
        db = AsnDatabase()
        with pytest.raises(IPv4Error):
            db.add(AsnRecord(base=0, prefix_len=40, asn=1))

    def test_name_lookup(self):
        db = AsnDatabase([_record("10.1.0.0", 16, 65001, "Distributel Network")])
        assert db.name_of(65001) == "Distributel Network"
        assert db.name_of(12345) == ""

    def test_records_and_len(self):
        db = AsnDatabase([_record("10.1.0.0", 16, 65001),
                          _record("10.0.0.0", 8, 65000)])
        assert len(db) == 2
        lengths = [record.prefix_len for record in db.records()]
        assert lengths == sorted(lengths, reverse=True)


class TestUniverseAsnDatabase:
    def test_every_host_is_announced(self, universe):
        db = universe.topology.asn_db
        sample = universe.all_ips()[:200]
        assert all(db.asn_of(ip) != 0 for ip in sample)

    def test_host_asn_matches_database(self, universe):
        db = universe.topology.asn_db
        for ip in universe.all_ips()[:200]:
            assert universe.hosts[ip].asn == db.asn_of(ip)
