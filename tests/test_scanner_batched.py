"""Equivalence tests for the batched prediction-scan path.

The batched layers (``Universe.syn_ack_many``, ``ZMapSimulator.scan_pair_batches``,
``LZRSimulator.fingerprint_batch``, ``ZGrabSimulator.grab_batch`` and
``ScanPipeline.scan_pair_batches``) are *defined* as equivalent to their
pair-by-pair counterparts: same probes sent, same services observed, identical
bandwidth-ledger charges.  Every test here compares the two paths on the same
targets, including the miss-heavy mixes (dark addresses, closed ports,
middleboxes, pseudo services) a real prediction scan probes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.gps import GPS
from repro.datasets.split import seed_scan_cost_probes
from repro.net.ipv4 import subnet_key
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import ProbeBatch, group_pairs


def _mixed_targets(universe, count=600, seed=5):
    """Real pairs, wrong-port probes, dark space, middleboxes and pseudo hosts."""
    rng = random.Random(seed)
    pairs = list(universe.real_service_pairs())[: count // 2]
    all_ips = universe.all_ips()
    pairs += [(rng.choice(all_ips), rng.randrange(1, 65536))
              for _ in range(count // 2)]
    pairs += [(rng.randrange(0, 2**32), 443) for _ in range(count // 4)]
    rng.shuffle(pairs)
    return pairs


def _observation_key(observations):
    return sorted((obs.ip, obs.port, obs.protocol,
                   tuple(sorted(obs.app_features.items())), obs.ttl)
                  for obs in observations)


class TestSynAckMany:
    def test_matches_point_probes(self, universe):
        pairs = _mixed_targets(universe, count=400)
        by_port: dict = {}
        for ip, port in pairs:
            by_port.setdefault(port, []).append(ip)
        for port, ips in by_port.items():
            expected = [ip for ip in ips if universe.syn_ack(ip, port)]
            assert universe.syn_ack_many(ips, port) == expected

    def test_small_batches_match(self, universe):
        # Below the bisect threshold the fallback path must agree too.
        ip = next(iter(universe.hosts))
        port = universe.hosts[ip].open_ports()[0] if universe.hosts[ip].services \
            else 80
        assert universe.syn_ack_many([ip], port) == \
            ([ip] if universe.syn_ack(ip, port) else [])

    def test_duplicates_and_order_preserved(self, universe):
        port = universe.ports_in_use()[0]
        responders = universe.ips_on_port(port)[:5]
        ips = responders + responders + [0, 1]
        assert universe.syn_ack_many(ips, port) == responders + responders

    def test_empty_batch(self, universe):
        assert universe.syn_ack_many([], 80) == []


class TestGroupPairs:
    def test_partitions_pairs_exactly(self, universe):
        pairs = _mixed_targets(universe, count=300)
        batches = group_pairs(pairs, 16)
        flattened = [pair for batch in batches for pair in batch.pairs()]
        assert sorted(flattened) == sorted(pairs)

    def test_batches_share_port_and_subnet(self):
        pairs = [(10, 80), (11, 80), (70000, 80), (10, 443)]
        batches = group_pairs(pairs, 16)
        assert len(batches) == 3
        for batch in batches:
            assert all(subnet_key(ip, 16) == batch.subnet for ip in batch.ips)

    def test_first_seen_order(self):
        pairs = [(70000, 80), (10, 443), (11, 80), (70001, 80)]
        batches = group_pairs(pairs, 16)
        assert [(b.port, tuple(b.ips)) for b in batches] == [
            (80, (70000, 70001)), (443, (10,)), (80, (11,)),
        ]

    def test_prefix_zero_collapses_to_per_port_batches(self):
        pairs = [(10, 80), (2**31, 80), (10, 443)]
        batches = group_pairs(pairs, 0)
        assert {(b.port, len(b)) for b in batches} == {(80, 2), (443, 1)}

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            group_pairs([(1, 80)], 33)


class TestBatchedLayers:
    def test_zmap_batches_match_pairs(self, universe):
        pairs = _mixed_targets(universe)
        batches = group_pairs(pairs, 16)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        hits_pairwise = pipeline_a.zmap.scan_pairs(pairs)
        hits_batched = pipeline_b.zmap.scan_pair_batches(batches)
        assert sorted(hits_pairwise) == sorted(hits_batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zmap_batch_rejects_invalid_port(self, universe):
        pipeline = ScanPipeline(universe)
        batch = ProbeBatch(port=0, subnet=subnet_key(1, 16), ips=(1, 2))
        with pytest.raises(ValueError):
            pipeline.zmap.scan_pair_batches([batch])

    def test_lzr_batch_matches_fingerprint_many(self, universe):
        pairs = _mixed_targets(universe)
        hits = ScanPipeline(universe).zmap.scan_pairs(pairs)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        many = pipeline_a.lzr.fingerprint_many(hits, category=ScanCategory.PREDICTION)
        batch = pipeline_b.lzr.fingerprint_batch(hits, category=ScanCategory.PREDICTION)
        assert many == batch
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zgrab_batch_matches_grab_many(self, universe):
        pairs = _mixed_targets(universe)
        fresh = ScanPipeline(universe)
        fingerprints = fresh.lzr.fingerprint_many(fresh.zmap.scan_pairs(pairs))
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        many = pipeline_a.zgrab.grab_many(fingerprints,
                                          category=ScanCategory.PREDICTION)
        batch = pipeline_b.zgrab.grab_batch(fingerprints,
                                            category=ScanCategory.PREDICTION)
        assert many == batch
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses


class TestBatchedPipeline:
    @pytest.mark.parametrize("prefix_len", [0, 16, 24])
    def test_batched_scan_pairs_equivalent(self, universe, prefix_len):
        pairs = _mixed_targets(universe)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs)
        batched = pipeline_b.scan_pairs(pairs, batch_prefix_len=prefix_len)
        assert _observation_key(pairwise) == _observation_key(batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_scan_pair_batches_accepts_pregrouped_batches(self, universe):
        pairs = _mixed_targets(universe, count=200)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs)
        batched = pipeline_b.scan_pair_batches(group_pairs(pairs, 16))
        assert _observation_key(pairwise) == _observation_key(batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes

    def test_filter_toggle_respected(self, universe):
        pairs = _mixed_targets(universe)
        unfiltered = ScanPipeline(universe).scan_pairs(pairs, apply_filter=False,
                                                       batch_prefix_len=16)
        filtered = ScanPipeline(universe).scan_pairs(pairs, batch_prefix_len=16)
        assert len(filtered) <= len(unfiltered)


class TestGPSEngineModes:
    """GPS end-to-end equivalence across engine modes (the acceptance check)."""

    @pytest.fixture(scope="class")
    def mode_runs(self, universe, censys_dataset, censys_split):
        results = {}
        for mode in ("fused", "legacy"):
            run_pipeline = ScanPipeline(universe)
            config = GPSConfig(seed_fraction=0.05, step_size=16,
                               port_domain=censys_dataset.port_domain,
                               use_engine=True, engine_mode=mode)
            gps = GPS(run_pipeline, config)
            seed_cost = seed_scan_cost_probes(censys_dataset, 0.05)
            results[mode] = (gps.run(seed=censys_split.seed_scan_result(),
                                     seed_cost_probes=seed_cost), run_pipeline)
        return results

    def test_priors_plans_identical(self, mode_runs):
        assert mode_runs["fused"][0].priors_plan == mode_runs["legacy"][0].priors_plan

    def test_predictions_identical(self, mode_runs):
        assert mode_runs["fused"][0].predictions == mode_runs["legacy"][0].predictions

    def test_discoveries_identical(self, mode_runs):
        assert mode_runs["fused"][0].discovered_pairs() == \
            mode_runs["legacy"][0].discovered_pairs()

    def test_bandwidth_identical(self, mode_runs):
        assert mode_runs["fused"][1].ledger.probes == \
            mode_runs["legacy"][1].ledger.probes
