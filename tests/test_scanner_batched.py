"""Equivalence tests for the batched prediction-scan path.

The batched layers (``Universe.syn_ack_many``, ``ZMapSimulator.scan_pair_batches``,
``LZRSimulator.fingerprint_batch``, ``ZGrabSimulator.grab_batch`` and
``ScanPipeline.scan_pair_batches``) are *defined* as equivalent to their
pair-by-pair counterparts: same probes sent, same services observed, identical
bandwidth-ledger charges.  Every test here compares the two paths on the same
targets, including the miss-heavy mixes (dark addresses, closed ports,
middleboxes, pseudo services) a real prediction scan probes.

The *columnar* layers (``scan_pair_batch_columns``, ``fingerprint_batch_columns``,
``grab_batch_columns``, ``ObservationBatch`` and the columnar pseudo filter)
carry the same contract one representation further: flat int columns instead
of per-hit objects, materializing ``ScanObservation`` rows only at the API
boundary -- with the per-object paths kept as the equivalence oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.datasets.split import seed_scan_cost_probes
from repro.net.ipv4 import subnet_key
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import ProbeBatch, group_pairs


def _mixed_targets(universe, count=600, seed=5):
    """Real pairs, wrong-port probes, dark space, middleboxes and pseudo hosts."""
    rng = random.Random(seed)
    pairs = list(universe.real_service_pairs())[: count // 2]
    all_ips = universe.all_ips()
    pairs += [(rng.choice(all_ips), rng.randrange(1, 65536))
              for _ in range(count // 2)]
    pairs += [(rng.randrange(0, 2**32), 443) for _ in range(count // 4)]
    rng.shuffle(pairs)
    return pairs


def _observation_key(observations):
    return sorted((obs.ip, obs.port, obs.protocol,
                   tuple(sorted(obs.app_features.items())), obs.ttl)
                  for obs in observations)


class TestSynAckMany:
    def test_matches_point_probes(self, universe):
        pairs = _mixed_targets(universe, count=400)
        by_port: dict = {}
        for ip, port in pairs:
            by_port.setdefault(port, []).append(ip)
        for port, ips in by_port.items():
            expected = [ip for ip in ips if universe.syn_ack(ip, port)]
            assert universe.syn_ack_many(ips, port) == expected

    def test_small_batches_match(self, universe):
        # Below the bisect threshold the fallback path must agree too.
        ip = next(iter(universe.hosts))
        port = universe.hosts[ip].open_ports()[0] if universe.hosts[ip].services \
            else 80
        assert universe.syn_ack_many([ip], port) == \
            ([ip] if universe.syn_ack(ip, port) else [])

    def test_duplicates_and_order_preserved(self, universe):
        port = universe.ports_in_use()[0]
        responders = universe.ips_on_port(port)[:5]
        ips = responders + responders + [0, 1]
        assert universe.syn_ack_many(ips, port) == responders + responders

    def test_empty_batch(self, universe):
        assert universe.syn_ack_many([], 80) == []


class TestGroupPairs:
    def test_partitions_pairs_exactly(self, universe):
        pairs = _mixed_targets(universe, count=300)
        batches = group_pairs(pairs, 16)
        flattened = [pair for batch in batches for pair in batch.pairs()]
        assert sorted(flattened) == sorted(pairs)

    def test_batches_share_port_and_subnet(self):
        pairs = [(10, 80), (11, 80), (70000, 80), (10, 443)]
        batches = group_pairs(pairs, 16)
        assert len(batches) == 3
        for batch in batches:
            assert all(subnet_key(ip, 16) == batch.subnet for ip in batch.ips)

    def test_first_seen_order(self):
        pairs = [(70000, 80), (10, 443), (11, 80), (70001, 80)]
        batches = group_pairs(pairs, 16)
        assert [(b.port, tuple(b.ips)) for b in batches] == [
            (80, (70000, 70001)), (443, (10,)), (80, (11,)),
        ]

    def test_prefix_zero_collapses_to_per_port_batches(self):
        pairs = [(10, 80), (2**31, 80), (10, 443)]
        batches = group_pairs(pairs, 0)
        assert {(b.port, len(b)) for b in batches} == {(80, 2), (443, 1)}

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            group_pairs([(1, 80)], 33)


class TestBatchedLayers:
    def test_zmap_batches_match_pairs(self, universe):
        pairs = _mixed_targets(universe)
        batches = group_pairs(pairs, 16)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        hits_pairwise = pipeline_a.zmap.scan_pairs(pairs)
        hits_batched = pipeline_b.zmap.scan_pair_batches(batches)
        assert sorted(hits_pairwise) == sorted(hits_batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zmap_batch_rejects_invalid_port(self, universe):
        pipeline = ScanPipeline(universe)
        batch = ProbeBatch(port=0, subnet=subnet_key(1, 16), ips=(1, 2))
        with pytest.raises(ValueError):
            pipeline.zmap.scan_pair_batches([batch])

    def test_lzr_batch_matches_fingerprint_many(self, universe):
        pairs = _mixed_targets(universe)
        hits = ScanPipeline(universe).zmap.scan_pairs(pairs)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        many = pipeline_a.lzr.fingerprint_many(hits, category=ScanCategory.PREDICTION)
        batch = pipeline_b.lzr.fingerprint_batch(hits, category=ScanCategory.PREDICTION)
        assert many == batch
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zgrab_batch_matches_grab_many(self, universe):
        pairs = _mixed_targets(universe)
        fresh = ScanPipeline(universe)
        fingerprints = fresh.lzr.fingerprint_many(fresh.zmap.scan_pairs(pairs))
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        many = pipeline_a.zgrab.grab_many(fingerprints,
                                          category=ScanCategory.PREDICTION)
        batch = pipeline_b.zgrab.grab_batch(fingerprints,
                                            category=ScanCategory.PREDICTION)
        assert many == batch
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses


class TestBatchedPipeline:
    @pytest.mark.parametrize("prefix_len", [0, 16, 24])
    def test_batched_scan_pairs_equivalent(self, universe, prefix_len):
        pairs = _mixed_targets(universe)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs)
        batched = pipeline_b.scan_pairs(pairs, batch_prefix_len=prefix_len)
        assert _observation_key(pairwise) == _observation_key(batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_scan_pair_batches_accepts_pregrouped_batches(self, universe):
        pairs = _mixed_targets(universe, count=200)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs)
        batched = pipeline_b.scan_pair_batches(group_pairs(pairs, 16))
        assert _observation_key(pairwise) == _observation_key(batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes

    def test_filter_toggle_respected(self, universe):
        pairs = _mixed_targets(universe)
        unfiltered = ScanPipeline(universe).scan_pairs(pairs, apply_filter=False,
                                                       batch_prefix_len=16)
        filtered = ScanPipeline(universe).scan_pairs(pairs, batch_prefix_len=16)
        assert len(filtered) <= len(unfiltered)


class TestColumnarLayers:
    """Columnar scanner stages vs their per-object oracles."""

    def test_zmap_columns_match_pair_batches(self, universe):
        pairs = _mixed_targets(universe)
        batches = group_pairs(pairs, 16)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        hits = pipeline_a.zmap.scan_pair_batches(batches)
        ips, ports = pipeline_b.zmap.scan_pair_batch_columns(batches)
        assert list(zip(ips, ports)) == hits
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zmap_columns_reject_invalid_port(self, universe):
        pipeline = ScanPipeline(universe)
        batch = ProbeBatch(port=70000, subnet=subnet_key(1, 16), ips=(1,))
        with pytest.raises(ValueError):
            pipeline.zmap.scan_pair_batch_columns([batch])

    def test_lzr_columns_match_fingerprint_batch(self, universe):
        pairs = _mixed_targets(universe)
        hits = ScanPipeline(universe).zmap.scan_pairs(pairs)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        objects = pipeline_a.lzr.fingerprint_batch(hits,
                                                   category=ScanCategory.PREDICTION)
        columns = pipeline_b.lzr.fingerprint_batch_columns(
            [ip for ip, _ in hits], [port for _, port in hits],
            category=ScanCategory.PREDICTION)
        assert len(columns) == len(objects)
        decode = columns.statuses.decode
        for i, result in enumerate(objects):
            assert (columns.ips[i], columns.ports[i]) == (result.ip, result.port)
            assert decode(columns.status[i]) == result.protocol
            assert columns.ttls[i] == result.ttl
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_zgrab_columns_match_grab_batch(self, universe):
        pairs = _mixed_targets(universe)
        fresh = ScanPipeline(universe)
        hits = fresh.zmap.scan_pairs(pairs)
        fingerprints = fresh.lzr.fingerprint_many(hits)
        columns = fresh.lzr.fingerprint_batch_columns(
            [ip for ip, _ in hits], [port for _, port in hits])
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        objects = pipeline_a.zgrab.grab_batch(fingerprints,
                                              category=ScanCategory.PREDICTION)
        batch = pipeline_b.zgrab.grab_batch_columns(columns,
                                                    category=ScanCategory.PREDICTION)
        assert batch.materialize() == objects
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses

    def test_columnar_pipeline_matches_pairwise(self, universe):
        pairs = _mixed_targets(universe)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs, apply_filter=False)
        batch = pipeline_b.scan_pair_batches_columnar(group_pairs(pairs, 16))
        assert _observation_key(batch.materialize()) == _observation_key(pairwise)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes
        assert pipeline_a.ledger.responses == pipeline_b.ledger.responses


class TestObservationBatch:
    @pytest.fixture()
    def batch(self, universe):
        pairs = _mixed_targets(universe, count=400)
        return ScanPipeline(universe).scan_pair_batches_columnar(
            group_pairs(pairs, 16))

    def test_lazy_rows_match_materialize(self, batch):
        assert len(batch) > 0
        materialized = batch.materialize()
        assert len(materialized) == len(batch)
        for i in (0, len(batch) // 2, len(batch) - 1):
            assert batch.row(i) == materialized[i]

    def test_pairs_match_rows(self, batch):
        assert batch.pairs() == [(obs.ip, obs.port)
                                 for obs in batch.iter_rows()]

    def test_banner_ids_decode_to_row_features(self, batch, universe):
        for i in range(0, len(batch), max(1, len(batch) // 16)):
            assert batch.row(i).app_features == batch.banner_features(i)
            if batch.banner_ids[i] >= 0:
                assert batch.banner_features(i) is \
                    universe.banners.features(batch.banner_ids[i])

    def test_shared_banner_mappings_are_read_only(self, batch):
        observation = batch.row(0)
        with pytest.raises(TypeError):
            observation.app_features["protocol"] = "tampered"

    def test_ground_truth_banners_share_one_interned_id(self, universe):
        # Every real-service hit resolves to the id interned at index-build
        # time: hitting the same service twice must not mint a new id.
        interned_before = len(universe.banners)
        pairs = list(universe.real_service_pairs())[:50]
        pipeline = ScanPipeline(universe)
        pipeline.scan_pair_batches_columnar(group_pairs(pairs * 2, 16))
        assert len(universe.banners) == interned_before

    def test_incident_pseudo_pages_never_grow_the_interner(self, universe):
        # Incident-style pseudo pages are unique per (ip, port); repeated
        # columnar scans must carry them batch-locally, not pin one interned
        # entry per target forever (the static page may intern one id once).
        incident_hosts = [host for host in universe.hosts.values()
                          if host.pseudo_port_range is not None
                          and host.pseudo_incident_style]
        assert incident_hosts
        pipeline = ScanPipeline(universe)
        sizes = []
        for round_index in range(3):
            pairs = [(host.ip, host.pseudo_port_range[0] + round_index * 20 + k)
                     for host in incident_hosts for k in range(20)]
            batch = pipeline.scan_pair_batches_columnar(group_pairs(pairs, 16))
            assert len(batch.local_banners) == len(batch) > 0
            assert all(banner_id < 0 for banner_id in batch.banner_ids)
            sizes.append(len(universe.banners))
        assert sizes[0] == sizes[1] == sizes[2]

    def test_status_ids_stable_across_batches(self, universe):
        pairs = list(universe.real_service_pairs())[:40]
        pipeline = ScanPipeline(universe)
        first = pipeline.scan_pair_batches_columnar(group_pairs(pairs[:20], 16))
        second = pipeline.scan_pair_batches_columnar(group_pairs(pairs[20:], 16))
        assert first.statuses is second.statuses


class TestColumnarFilter:
    def test_filter_batch_matches_filter_on_materialized(self, universe):
        # Include pseudo hosts' port ranges so both filter rules can fire.
        pairs = _mixed_targets(universe)
        for host in universe.hosts.values():
            if host.pseudo_port_range is not None:
                lo, _ = host.pseudo_port_range
                pairs.extend((host.ip, lo + offset) for offset in range(12))
        pipeline = ScanPipeline(universe)
        batch = pipeline.scan_pair_batches_columnar(group_pairs(pairs, 16))
        assert pipeline.pseudo_filter.filter_batch(batch) == \
            pipeline.pseudo_filter.filter(batch.materialize())

    def test_filter_batch_drops_pseudo_hosts(self, universe):
        pseudo_hosts = [host for host in universe.hosts.values()
                        if host.pseudo_port_range is not None]
        assert pseudo_hosts
        host = pseudo_hosts[0]
        lo, _ = host.pseudo_port_range
        pairs = [(host.ip, lo + offset) for offset in range(12)]
        pipeline = ScanPipeline(universe)
        batch = pipeline.scan_pair_batches_columnar(group_pairs(pairs, 16))
        assert len(batch) == 12
        assert pipeline.pseudo_filter.filter_batch(batch) == []

    def test_filtered_pipeline_matches_pairwise_filtered(self, universe):
        pairs = _mixed_targets(universe)
        pipeline_a, pipeline_b = ScanPipeline(universe), ScanPipeline(universe)
        pairwise = pipeline_a.scan_pairs(pairs)
        batched = pipeline_b.scan_pair_batches(group_pairs(pairs, 16))
        assert _observation_key(pairwise) == _observation_key(batched)
        assert pipeline_a.ledger.probes == pipeline_b.ledger.probes


class TestGPSEngineModes:
    """GPS end-to-end equivalence across engine modes (the acceptance check)."""

    @pytest.fixture(scope="class")
    def mode_runs(self, universe, censys_dataset, censys_split):
        results = {}
        for mode in ("fused", "legacy"):
            run_pipeline = ScanPipeline(universe)
            config = GPSConfig(seed_fraction=0.05, step_size=16,
                               port_domain=censys_dataset.port_domain,
                               use_engine=True, engine_mode=mode)
            gps = GPS(run_pipeline, config)
            seed_cost = seed_scan_cost_probes(censys_dataset, 0.05)
            results[mode] = (gps.run(seed=censys_split.seed_scan_result(),
                                     seed_cost_probes=seed_cost), run_pipeline)
        return results

    def test_priors_plans_identical(self, mode_runs):
        assert mode_runs["fused"][0].priors_plan == mode_runs["legacy"][0].priors_plan

    def test_predictions_identical(self, mode_runs):
        assert mode_runs["fused"][0].predictions == mode_runs["legacy"][0].predictions

    def test_discoveries_identical(self, mode_runs):
        assert mode_runs["fused"][0].discovered_pairs() == \
            mode_runs["legacy"][0].discovered_pairs()

    def test_bandwidth_identical(self, mode_runs):
        assert mode_runs["fused"][1].ledger.probes == \
            mode_runs["legacy"][1].ledger.probes
