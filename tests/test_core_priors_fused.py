"""Equivalence tests for the fused (engine-backed) priors planner.

The load-bearing property: :func:`repro.core.priors.build_priors_plan_with_engine`
is *defined* as producing exactly the ordered
:class:`~repro.core.priors.PriorsEntry` list of the legacy
:func:`~repro.core.priors.build_priors_plan` oracle -- on handcrafted hosts,
on randomized observation sets (hypothesis), for every step size / port
domain, and across the serial, thread and process executor backends.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FeatureConfig
from repro.core.features import HostFeatures, extract_host_features
from repro.core.model import CooccurrenceModel, build_model
from repro.core.priors import (
    build_priors_plan,
    build_priors_plan_with_engine,
    compile_priors_query,
)
from repro.engine.fused import partner_group_count
from repro.engine.parallel import ExecutorConfig
from repro.net.ipv4 import parse_ip
from repro.scanner.records import ScanObservation


def _obs(ip: int, port: int, protocol: str = "http", **features) -> ScanObservation:
    app = {"protocol": protocol}
    app.update(features)
    return ScanObservation(ip=ip, port=port, protocol=protocol, app_features=app)


def _model_and_hosts(observations):
    hosts = extract_host_features(observations, None, FeatureConfig())
    return build_model(hosts), hosts


@pytest.fixture()
def camera_fleet():
    """Multi-service camera subnets plus single- and three-service hosts."""
    observations = []
    for subnet_index in range(3):
        base = parse_ip(f"10.{subnet_index}.0.0")
        for host_index in range(4):
            ip = base + host_index + 1
            observations.append(_obs(ip, 554, protocol="rtsp"))
            observations.append(_obs(ip, 37777, http_server="camera-httpd"))
            if host_index % 2:
                observations.append(_obs(ip, 80, http_server="camera-httpd"))
    observations.append(_obs(parse_ip("10.9.0.1"), 80))
    observations.append(_obs(parse_ip("10.9.0.2"), 80))
    return observations


class TestFusedPriorsEquivalence:
    @pytest.mark.parametrize("step_size", [0, 8, 16, 24, 32])
    def test_matches_legacy_across_step_sizes(self, camera_fleet, step_size):
        model, hosts = _model_and_hosts(camera_fleet)
        expected = build_priors_plan(hosts, model, step_size)
        assert build_priors_plan_with_engine(hosts, model, step_size) == expected

    @pytest.mark.parametrize("port_domain", [None, (80,), (554, 37777), (9999,)])
    def test_matches_legacy_with_port_domain(self, camera_fleet, port_domain):
        model, hosts = _model_and_hosts(camera_fleet)
        expected = build_priors_plan(hosts, model, 16, port_domain)
        assert build_priors_plan_with_engine(hosts, model, 16, port_domain) == expected

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 2), ("thread", 5), ("process", 2),
    ])
    def test_matches_legacy_across_backends(self, camera_fleet, backend, workers):
        model, hosts = _model_and_hosts(camera_fleet)
        expected = build_priors_plan(hosts, model, 16)
        executor = ExecutorConfig(backend=backend, workers=workers)
        assert build_priors_plan_with_engine(hosts, model, 16,
                                             executor=executor) == expected

    def test_legacy_mode_delegates_to_oracle(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        assert build_priors_plan_with_engine(hosts, model, 16, mode="legacy") == \
            build_priors_plan(hosts, model, 16)

    def test_unknown_mode_rejected(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        with pytest.raises(ValueError):
            build_priors_plan_with_engine(hosts, model, 16, mode="bigquery")

    def test_invalid_step_size_rejected(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        with pytest.raises(ValueError):
            build_priors_plan_with_engine(hosts, model, 40)

    def test_empty_hosts(self):
        assert build_priors_plan_with_engine({}, CooccurrenceModel(), 16) == []

    def test_host_without_services_contributes_nothing(self):
        hosts = {1: HostFeatures(ip=1)}
        assert build_priors_plan_with_engine(hosts, CooccurrenceModel(), 16) == []

    def test_foreign_model_with_unknown_predictors(self, camera_fleet):
        # A model trained on different observations: most predictors miss,
        # exercising the zero-support path on both implementations.
        model, _ = _model_and_hosts([_obs(500, 22, protocol="ssh"),
                                     _obs(500, 2222, protocol="ssh"),
                                     _obs(501, 22, protocol="ssh")])
        _, hosts = _model_and_hosts(camera_fleet)
        expected = build_priors_plan(hosts, model, 16)
        assert build_priors_plan_with_engine(hosts, model, 16) == expected


class TestCompiledPlan:
    def test_small_hosts_skip_value_encoding(self, camera_fleet):
        # One- and two-service hosts need no predictor evaluation, so only
        # 3+-service hosts may contribute encoded values.
        observations = [obs for obs in camera_fleet]
        model, hosts = _model_and_hosts(observations)
        plan = compile_priors_query(hosts, model, 16)
        small_hosts = {h.ip for h in hosts.values() if len(h.ports) <= 2}
        for g, ip in enumerate(hosts):
            lo, hi = plan.member_starts[g], plan.member_starts[g + 1]
            encoded = plan.value_starts[hi] - plan.value_starts[lo]
            if ip in small_hosts:
                assert encoded == 0
            else:
                assert encoded > 0

    def test_plan_is_picklable_plain_data(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = compile_priors_query(hosts, model, 16)
        clone = pickle.loads(pickle.dumps(plan))
        assert partner_group_count(clone) == partner_group_count(plan)

    def test_chunked_execution_is_chunking_invariant(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        expected = build_priors_plan(hosts, model, 16)
        for workers in (1, 2, 3, 7, 50):
            executor = ExecutorConfig(backend="thread", workers=workers)
            assert build_priors_plan_with_engine(hosts, model, 16,
                                                 executor=executor) == expected


# Random observation sets: a few hosts, a few ports, shared banner values so
# predictors overlap across hosts (the regime where partner selection has
# real ties to break deterministically).
observation_sets = st.lists(
    st.tuples(st.integers(0, 9),                      # host index
              st.sampled_from([22, 80, 443, 554, 8080]),
              st.sampled_from(["http", "ssh", "rtsp"]),
              st.sampled_from(["srv-a", "srv-b", ""])),
    min_size=1, max_size=60,
)


class TestRandomizedEquivalence:
    @settings(deadline=None, max_examples=60)
    @given(observation_sets, st.sampled_from([0, 12, 16, 24, 32]),
           st.sampled_from([None, (80, 443), (22, 554, 8080)]))
    def test_fused_equals_legacy(self, rows, step_size, port_domain):
        observations = []
        seen = set()
        for host_index, port, protocol, server in rows:
            if (host_index, port) in seen:
                continue
            seen.add((host_index, port))
            # Spread hosts over several /16s with some sharing a subnet.
            ip = parse_ip("10.0.0.0") + host_index * 40000
            features = {"http_server": server} if server else {}
            observations.append(_obs(ip, port, protocol=protocol, **features))
        model, hosts = _model_and_hosts(observations)
        expected = build_priors_plan(hosts, model, step_size, port_domain)
        got = build_priors_plan_with_engine(hosts, model, step_size, port_domain)
        assert got == expected

    @settings(deadline=None, max_examples=20)
    @given(observation_sets, st.integers(1, 6),
           st.sampled_from(["serial", "thread"]))
    def test_parallel_fused_equals_legacy(self, rows, workers, backend):
        observations = []
        seen = set()
        for host_index, port, protocol, server in rows:
            if (host_index, port) in seen:
                continue
            seen.add((host_index, port))
            ip = parse_ip("10.0.0.0") + host_index * 7 + 1
            features = {"http_server": server} if server else {}
            observations.append(_obs(ip, port, protocol=protocol, **features))
        model, hosts = _model_and_hosts(observations)
        expected = build_priors_plan(hosts, model, 16)
        executor = ExecutorConfig(backend=backend, workers=workers)
        assert build_priors_plan_with_engine(hosts, model, 16,
                                             executor=executor) == expected
