"""Unit tests for the simulated ZMap, LZR and ZGrab layers."""

from __future__ import annotations

import pytest

from repro.scanner.bandwidth import BandwidthLedger
from repro.scanner.lzr import PROBES_PER_FINGERPRINT, LZRSimulator
from repro.scanner.zgrab import ZGrabSimulator
from repro.scanner.zmap import ZMAP_IP_ID_FINGERPRINT, ZMapSimulator


@pytest.fixture()
def ledger(universe):
    return BandwidthLedger(address_space_size=universe.address_space_size())


@pytest.fixture()
def zmap(universe, ledger):
    return ZMapSimulator(universe, ledger)


@pytest.fixture()
def lzr(universe, ledger):
    return LZRSimulator(universe, ledger)


@pytest.fixture()
def zgrab(universe, ledger):
    return ZGrabSimulator(universe, ledger)


class TestZMap:
    def test_fingerprint_constant(self, zmap):
        assert zmap.ip_id == ZMAP_IP_ID_FINGERPRINT == 54321

    def test_scan_prefix_charges_announced_overlap(self, universe, zmap, ledger):
        base, length = universe.topology.systems[0].prefixes[0]
        port = universe.port_registry().top_ports(1)[0]
        responders = zmap.scan_prefix(port, base, length)
        assert ledger.total_probes() == universe.announced_overlap(base, length)
        assert ledger.total_responses() == len(responders)

    def test_scan_prefix_rejects_invalid_port(self, zmap):
        with pytest.raises(ValueError):
            zmap.scan_prefix(0, 0, 16)

    def test_scan_prefix_finds_known_services(self, universe, zmap):
        port = universe.port_registry().top_ports(1)[0]
        expected = set(universe.ips_on_port(port))
        found = set()
        for system in universe.topology.systems:
            for base, length in system.prefixes:
                found.update(zmap.scan_prefix(port, base, length))
        assert expected <= found

    def test_scan_host_ports_all_ports(self, universe, zmap, ledger):
        ip, port = next(iter(universe.real_service_pairs()))
        responsive = zmap.scan_host_ports(ip)
        assert port in responsive
        assert ledger.total_probes() == 65535

    def test_scan_host_ports_subset(self, universe, zmap, ledger):
        ip, port = next(iter(universe.real_service_pairs()))
        responsive = zmap.scan_host_ports(ip, ports=[port, 1])
        assert responsive == [port] or set(responsive) == {port, 1}
        assert ledger.total_probes() == 2

    def test_scan_host_ports_dark_address(self, zmap):
        assert zmap.scan_host_ports(1, ports=[80, 443]) == []

    def test_scan_host_ports_rejects_invalid_port(self, zmap):
        with pytest.raises(ValueError):
            zmap.scan_host_ports(1, ports=[0])

    def test_scan_pairs_counts_hits(self, universe, zmap, ledger):
        pairs = list(universe.real_service_pairs())[:20]
        hits = zmap.scan_pairs(pairs + [(1, 80)])
        assert set(hits) == set(pairs)
        assert ledger.total_probes() == len(pairs) + 1

    def test_middlebox_responds_on_all_ports(self, universe, zmap):
        middlebox = next(h for h in universe.hosts.values() if h.is_middlebox)
        responsive = zmap.scan_host_ports(middlebox.ip, ports=[1, 2, 3])
        assert responsive == [1, 2, 3]


class TestLZR:
    def test_real_service_fingerprinted(self, universe, lzr, ledger):
        ip, port = next(iter(universe.real_service_pairs()))
        result = lzr.fingerprint(ip, port)
        assert result.is_real_service
        assert result.protocol == universe.lookup(ip, port).protocol
        assert ledger.total_probes() == PROBES_PER_FINGERPRINT

    def test_middlebox_yields_no_protocol(self, universe, lzr):
        middlebox = next(h for h in universe.hosts.values() if h.is_middlebox)
        result = lzr.fingerprint(middlebox.ip, 80)
        assert result.protocol is None
        assert not result.is_real_service

    def test_pseudo_service_fingerprints_as_http_but_not_real(self, universe, lzr):
        host = next(h for h in universe.hosts.values() if h.is_pseudo_host())
        lo, _ = host.pseudo_port_range
        port = lo if lo not in host.services else lo + 1
        result = lzr.fingerprint(host.ip, port)
        assert result.protocol == "http"
        assert not result.is_real_service

    def test_fingerprint_many_drops_middleboxes(self, universe, lzr):
        middlebox = next(h for h in universe.hosts.values() if h.is_middlebox)
        ip, port = next(iter(universe.real_service_pairs()))
        results = lzr.fingerprint_many([(middlebox.ip, 80), (ip, port)])
        assert [(r.ip, r.port) for r in results] == [(ip, port)]


class TestZGrab:
    def test_grab_returns_ground_truth_features(self, universe, lzr, zgrab):
        ip, port = next(iter(universe.real_service_pairs()))
        observation = zgrab.grab(lzr.fingerprint(ip, port))
        record = universe.lookup(ip, port)
        assert observation is not None
        assert observation.app_features == record.app_features
        assert observation.ttl == record.ttl

    def test_grab_skips_unfingerprinted(self, universe, lzr, zgrab):
        middlebox = next(h for h in universe.hosts.values() if h.is_middlebox)
        assert zgrab.grab(lzr.fingerprint(middlebox.ip, 80)) is None

    def test_grab_pseudo_service_produces_http_page(self, universe, lzr, zgrab):
        host = next(h for h in universe.hosts.values() if h.is_pseudo_host())
        lo, _ = host.pseudo_port_range
        port = lo if lo not in host.services else lo + 1
        observation = zgrab.grab(lzr.fingerprint(host.ip, port))
        assert observation is not None
        assert observation.protocol == "http"
        assert "http_body_hash" in observation.app_features

    def test_grab_many_matches_individual_grabs(self, universe, lzr, zgrab):
        pairs = list(universe.real_service_pairs())[:10]
        fingerprints = lzr.fingerprint_many(pairs)
        observations = zgrab.grab_many(fingerprints)
        assert sorted(obs.pair() for obs in observations) == sorted(pairs)
