"""Unit and property tests for the partitioned parallel executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.ops import group_count
from repro.engine.parallel import (
    ExecutorConfig,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    ThreadPoolExecutorBackend,
    make_executor,
    parallel_map_reduce,
    partition_rows,
    partitioned_group_count,
)
from repro.engine.table import Table


class TestExecutorConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="gpu")

    def test_non_positive_workers_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=0)

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(ExecutorConfig()), SerialExecutor)
        assert isinstance(make_executor(ExecutorConfig(backend="thread", workers=2)),
                          ThreadPoolExecutorBackend)
        assert isinstance(make_executor(ExecutorConfig(backend="process", workers=2)),
                          ProcessPoolExecutorBackend)

    def test_backends_reject_bad_worker_counts(self):
        with pytest.raises(ValueError):
            ThreadPoolExecutorBackend(0)
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(0)


class TestPartitioning:
    def test_partition_rows_covers_everything(self):
        rows = [(i % 7, i % 3) for i in range(100)]
        shards = partition_rows(rows, 4)
        assert sum(len(shard) for shard in shards) == 100
        assert len(shards) == 4

    def test_partition_rows_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            partition_rows([], 0)

    def test_same_key_lands_in_same_shard(self):
        rows = [(1, "x")] * 10 + [(2, "y")] * 10
        shards = partition_rows(rows, 3)
        for shard in shards:
            assert len({row for row in shard}) <= 2


class TestPartitionedGroupCount:
    @pytest.fixture()
    def table(self):
        rows = [(i % 5, i % 2) for i in range(200)]
        return Table.from_rows(("a", "b"), rows)

    @pytest.mark.parametrize("config", [
        ExecutorConfig(backend="serial", workers=1),
        ExecutorConfig(backend="serial", workers=4),
        ExecutorConfig(backend="thread", workers=4),
    ])
    def test_matches_serial_group_count(self, table, config):
        expected = group_count(table, ("a", "b"))
        assert partitioned_group_count(table, ("a", "b"), config) == expected

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 3)), max_size=150),
           st.integers(min_value=1, max_value=8))
    def test_equivalence_property(self, rows, workers):
        table = Table.from_rows(("a", "b"), rows)
        expected = group_count(table, ("a", "b"))
        config = ExecutorConfig(backend="thread", workers=workers)
        assert partitioned_group_count(table, ("a", "b"), config) == expected


class TestParallelMapReduce:
    def test_empty_items(self):
        result = parallel_map_reduce([], map_func=sum, reduce_func=sum,
                                     config=ExecutorConfig())
        assert result == 0

    def test_chunked_sum_matches_direct_sum(self):
        items = list(range(1000))
        result = parallel_map_reduce(
            items,
            map_func=sum,
            reduce_func=sum,
            config=ExecutorConfig(backend="thread", workers=4),
        )
        assert result == sum(items)

    def test_single_worker_is_one_chunk(self):
        chunks_seen = []

        def map_func(chunk):
            chunks_seen.append(list(chunk))
            return len(chunk)

        parallel_map_reduce([1, 2, 3], map_func=map_func, reduce_func=sum,
                            config=ExecutorConfig(backend="serial", workers=1))
        assert chunks_seen == [[1, 2, 3]]
