"""Unit and property tests for the engine's tables and relational operations."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine.ops import (
    aggregate,
    distinct_count,
    filter_rows,
    group_count,
    hash_join,
    project,
)
from repro.engine.table import Table


@pytest.fixture()
def services_table():
    return Table.from_rows(
        ("ip", "port", "protocol"),
        [
            (1, 80, "http"),
            (1, 443, "https"),
            (1, 22, "ssh"),
            (2, 80, "http"),
            (2, 8080, "http"),
            (3, 22, "ssh"),
        ],
    )


class TestTable:
    def test_from_rows_and_len(self, services_table):
        assert len(services_table) == 6
        assert services_table.names == ["ip", "port", "protocol"]

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            Table.from_rows(("a", "b"), [(1, 2), (3,)])

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(columns={"a": [1, 2], "b": [1]})

    def test_from_records_fills_missing_with_none(self):
        table = Table.from_records([{"a": 1}, {"a": 2, "b": 3}], names=("a", "b"))
        assert table.column("b") == [None, 3]

    def test_empty_table(self):
        table = Table.empty(("a", "b"))
        assert len(table) == 0
        assert list(table.iter_rows()) == []

    def test_row_and_iter_rows(self, services_table):
        assert services_table.row(0) == (1, 80, "http")
        ports = [row[0] for row in services_table.iter_rows(("port",))]
        assert ports == [80, 443, 22, 80, 8080, 22]

    def test_to_records_roundtrip(self, services_table):
        records = services_table.to_records()
        rebuilt = Table.from_records(records, names=services_table.names)
        assert rebuilt.columns == services_table.columns

    def test_head(self, services_table):
        assert len(services_table.head(2)) == 2


class TestProjectFilter:
    def test_project(self, services_table):
        projected = project(services_table, ("ip", "port"))
        assert projected.names == ["ip", "port"]
        assert len(projected) == len(services_table)

    def test_project_unknown_column(self, services_table):
        with pytest.raises(KeyError):
            project(services_table, ("nope",))

    def test_filter_rows(self, services_table):
        filtered = filter_rows(services_table, lambda r: r["protocol"] == "http")
        assert len(filtered) == 3
        assert set(filtered.column("port")) == {80, 8080}


class TestHashJoin:
    def test_self_join_produces_ordered_pairs(self, services_table):
        left = project(services_table, ("ip", "port"))
        joined = hash_join(left, left, on=("ip",),
                           left_prefix="b_", right_prefix="a_",
                           exclude_self_pairs_on=("b_port", "a_port"))
        # Host 1 has 3 services -> 6 ordered pairs; host 2 has 2 -> 2; host 3 has 1 -> 0.
        assert len(joined) == 8
        assert set(joined.names) == {"ip", "b_port", "a_port"}

    def test_join_missing_key_rejected(self, services_table):
        other = Table.from_rows(("host",), [(1,)])
        with pytest.raises(KeyError):
            hash_join(services_table, other, on=("host",))

    def test_join_with_no_matches(self):
        left = Table.from_rows(("ip", "x"), [(1, "a")])
        right = Table.from_rows(("ip", "y"), [(2, "b")])
        assert len(hash_join(left, right, on=("ip",))) == 0

    def test_exclude_columns_must_exist(self, services_table):
        left = project(services_table, ("ip", "port"))
        with pytest.raises(KeyError):
            hash_join(left, left, on=("ip",), exclude_self_pairs_on=("zz", "a_port"))


class TestAggregations:
    def test_group_count(self, services_table):
        counts = group_count(services_table, ("protocol",))
        assert counts[("http",)] == 3
        assert counts[("ssh",)] == 2

    def test_aggregate_custom_function(self, services_table):
        result = aggregate(services_table, ("protocol",), "port", max)
        assert result[("http",)] == 8080

    def test_distinct_count(self, services_table):
        result = distinct_count(services_table, ("protocol",), "ip")
        assert result[("http",)] == 2
        assert result[("ssh",)] == 2


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.integers(min_value=0, max_value=5)),
    max_size=200,
)


class TestProperties:
    @given(rows_strategy)
    def test_group_count_totals_row_count(self, rows):
        table = Table.from_rows(("a", "b"), rows)
        counts = group_count(table, ("a", "b"))
        assert sum(counts.values()) == len(rows)

    @given(rows_strategy)
    def test_join_count_matches_bruteforce(self, rows):
        table = Table.from_rows(("ip", "port"), rows)
        joined = hash_join(table, table, on=("ip",),
                           left_prefix="l_", right_prefix="r_")
        expected = sum(
            1 for left in rows for right in rows if left[0] == right[0]
        )
        assert len(joined) == expected
