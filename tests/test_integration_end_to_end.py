"""End-to-end integration tests: the paper's qualitative claims on the test universe.

These tests assert the *shape* of the paper's results rather than absolute
numbers: GPS discovers the majority of services, does so with far less
bandwidth than exhaustive scanning, is far more precise than exhaustive
probing, and its prediction order front-loads the most predictable services.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_coverage_experiment, run_precision_experiment
from repro.baselines.exhaustive import optimal_port_order_curve
from repro.core.metrics import (
    bandwidth_to_reach,
    coverage_curve,
    fraction_of_services,
    normalized_fraction_of_services,
)


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def lzr_experiment(self, universe, lzr_dataset):
        """All-port experiment, paper style: half the sampled dataset is the seed.

        The seed is treated as an available dataset (paper Section 5.1) so the
        curves characterise GPS's own scanning, as in Figure 2b.
        """
        return run_coverage_experiment(universe, lzr_dataset,
                                       seed_fraction=lzr_dataset.sample_fraction / 2,
                                       step_size=16, seed_cost_mode="available")

    def test_gps_finds_majority_of_all_port_services(self, lzr_experiment):
        """Paper §6.2: GPS finds ~92 % of services across all ports (>2 IPs/port)."""
        assert lzr_experiment.final_fraction() > 0.75

    def test_gps_beats_exhaustive_all_port_scanning_by_orders_of_magnitude(
            self, lzr_experiment):
        """Paper abstract: orders of magnitude less bandwidth than 65K full scans."""
        gps_bandwidth = lzr_experiment.gps_points[-1].full_scans
        assert gps_bandwidth * 50 < 65535

    def test_gps_beats_optimal_port_order_at_high_coverage(self, lzr_experiment):
        """Paper Fig. 2b: GPS needs less bandwidth than optimal port-order probing."""
        target = min(0.85, lzr_experiment.final_fraction() * 0.98)
        savings = lzr_experiment.savings_at(target)
        assert savings is not None and savings > 1.0

    def test_gps_more_precise_than_exhaustive(self, universe, censys_dataset):
        """Paper Fig. 3: GPS is more precise than exhaustive probing.

        The paper reports a two-orders-of-magnitude gap on the real Internet;
        the synthetic universe is several orders of magnitude denser than the
        real IPv4 space (so exhaustive probing's hit rate is inflated), which
        compresses the ratio.  The claim preserved here is the direction and a
        clear margin, not the absolute factor (see EXPERIMENTS.md).
        """
        experiment = run_precision_experiment(universe, censys_dataset,
                                              seed_fraction=0.05, step_size=20)
        advantage = experiment.precision_advantage_at(0.2)
        assert advantage is not None and advantage > 1.2

    def test_predictions_front_load_the_most_predictable_services(self, gps_run,
                                                                  censys_dataset):
        """Paper §6.3: precision decreases as GPS exhausts its predictions."""
        result, _ = gps_run
        prediction_batches = [batch for batch in result.discovery_log
                              if batch.phase == "prediction"]
        if len(prediction_batches) < 2:
            pytest.skip("run produced a single prediction batch")
        ground_truth = censys_dataset.pairs()
        first_half = prediction_batches[: len(prediction_batches) // 2]
        second_half = prediction_batches[len(prediction_batches) // 2:]

        def hits(batches):
            return sum(len(set(batch.pairs) & ground_truth) for batch in batches)

        assert hits(first_half) >= hits(second_half)

    def test_normalized_metric_weighs_uncommon_ports(self, gps_run, censys_dataset):
        """Equation 2 penalises missing uncommon ports more than Equation 1."""
        result, _ = gps_run
        found = result.discovered_pairs()
        truth = censys_dataset.pairs()
        assert normalized_fraction_of_services(found, truth) \
            <= fraction_of_services(found, truth)

    def test_seed_alone_explains_little_of_the_coverage(self, gps_run, censys_dataset):
        """The priors + prediction phases, not the seed, provide the coverage."""
        result, _ = gps_run
        truth = censys_dataset.pairs()
        seed_found = {obs.pair() for obs in result.seed_observations} & truth
        total_found = result.discovered_pairs() & truth
        assert len(seed_found) < 0.25 * len(total_found)

    def test_discovery_log_replays_to_the_same_totals(self, gps_run, censys_dataset,
                                                      universe):
        """The coverage curve's final point equals the direct set computation."""
        result, _ = gps_run
        truth = censys_dataset.pairs()
        points = coverage_curve(result.log_as_tuples(), truth,
                                universe.address_space_size())
        assert points[-1].fraction == pytest.approx(
            fraction_of_services(result.discovered_pairs(), truth))

    def test_optimal_port_order_is_a_lower_bound_for_exhaustive(self, censys_dataset):
        """Optimal ordering reaches any coverage no later than any other ordering."""
        optimal = optimal_port_order_curve(censys_dataset)
        arbitrary_order = sorted(censys_dataset.port_domain)
        from repro.baselines.exhaustive import _curve_from_port_order
        arbitrary = _curve_from_port_order(censys_dataset, arbitrary_order,
                                           censys_dataset.address_space_size)
        for target in (0.3, 0.6, 0.9):
            optimal_bandwidth = bandwidth_to_reach(optimal, target)
            arbitrary_bandwidth = bandwidth_to_reach(arbitrary, target)
            if optimal_bandwidth is not None and arbitrary_bandwidth is not None:
                assert optimal_bandwidth <= arbitrary_bandwidth
