"""Tests for the CLI and the known-host prediction mode (paper Section 7)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.scanner.pipeline import ScanPipeline


class TestKnownHostPrediction:
    @pytest.fixture()
    def gps(self, universe, censys_dataset):
        pipeline = ScanPipeline(universe)
        return GPS(pipeline, GPSConfig(seed_fraction=0.05, step_size=16,
                                       port_domain=censys_dataset.port_domain))

    def test_predicts_remaining_services_of_known_hosts(self, gps, universe,
                                                        censys_split):
        # Known hosts: test-half hosts, each revealed through one service.
        by_host = {}
        for obs in censys_split.test_observations:
            by_host.setdefault(obs.ip, obs)
        known = list(by_host.values())[:150]

        result = gps.predict_for_known_hosts(censys_split.seed_scan_result(), known)
        assert result.predictions
        # Predictions target only the supplied hosts.
        known_ips = {obs.ip for obs in known}
        assert all(prediction.ip in known_ips for prediction in result.predictions)
        # The scan confirms a substantial share of them.
        confirmed = {obs.pair() for obs in result.prediction_observations}
        truth = set(universe.real_service_pairs())
        assert confirmed
        assert len(confirmed & truth) >= 0.5 * len(confirmed)

    def test_no_priors_bandwidth_spent(self, universe, censys_dataset, censys_split):
        from repro.scanner.bandwidth import ScanCategory
        pipeline = ScanPipeline(universe)
        gps = GPS(pipeline, GPSConfig(seed_fraction=0.05, step_size=16,
                                      port_domain=censys_dataset.port_domain))
        known = censys_split.test_observations[:50]
        gps.predict_for_known_hosts(censys_split.seed_scan_result(), known)
        assert pipeline.ledger.total_probes(ScanCategory.PRIORS) == 0
        assert pipeline.ledger.total_probes(ScanCategory.PREDICTION) > 0

    def test_plan_only_mode_sends_no_probes(self, universe, censys_dataset,
                                            censys_split):
        pipeline = ScanPipeline(universe)
        gps = GPS(pipeline, GPSConfig(seed_fraction=0.05, step_size=16,
                                      port_domain=censys_dataset.port_domain))
        known = censys_split.test_observations[:50]
        result = gps.predict_for_known_hosts(censys_split.seed_scan_result(), known,
                                             scan=False)
        assert result.predictions
        assert not result.prediction_observations
        assert pipeline.ledger.total_probes() == 0

    def test_known_pairs_not_repredicted(self, gps, censys_split):
        known = censys_split.test_observations[:50]
        result = gps.predict_for_known_hosts(censys_split.seed_scan_result(), known)
        known_pairs = {obs.pair() for obs in known}
        assert not (known_pairs & {p.pair() for p in result.predictions})


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--scale", "galactic"])

    def test_quickstart_command(self, capsys):
        exit_code = main(["quickstart", "--scale", "small", "--seed", "3",
                          "--seed-fraction", "0.05"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "fraction of services found" in output
        assert "bandwidth (100% scans)" in output

    def test_coverage_command_censys(self, capsys):
        exit_code = main(["coverage", "--scale", "small", "--seed", "3",
                          "--dataset", "censys"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "savings vs optimal order" in output
        assert "final fraction of services" in output

    def test_coverage_command_lzr(self, capsys):
        exit_code = main(["coverage", "--scale", "small", "--seed", "3",
                          "--dataset", "lzr"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "lzr" in output

    def test_compare_xgboost_command(self, capsys):
        exit_code = main(["compare-xgboost", "--scale", "small", "--seed", "3",
                          "--ports", "4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "average prior-bandwidth ratio" in output

    def test_churn_command(self, capsys):
        exit_code = main(["churn", "--scale", "small", "--seed", "3", "--days", "10"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "services that disappeared" in output
