"""Tests for the fused streaming query layer and dictionary encoding.

The load-bearing property: :func:`repro.engine.fused.join_group_count` (and
its partitioned form) is *defined* as equivalent to ``hash_join`` followed by
``group_count``, so every test here compares the fused result against the
materializing formulation on the same inputs -- handcrafted, randomized via
hypothesis, and across all three executor backends.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.encoding import DictionaryEncoder, stable_hash
from repro.engine.fused import compile_join_plan, join_group_count, packing_base
from repro.engine.ops import group_count, hash_join
from repro.engine.parallel import (
    ExecutorConfig,
    partition_rows,
    partitioned_join_group_count,
)
from repro.engine.table import Table


class TestDictionaryEncoder:
    def test_ids_are_dense_and_stable(self):
        encoder = DictionaryEncoder()
        assert encoder.encode("a") == 0
        assert encoder.encode(("P", 80)) == 1
        assert encoder.encode("a") == 0
        assert len(encoder) == 2

    def test_roundtrip(self):
        encoder = DictionaryEncoder()
        values = [("P", 80), ("PA", 443, "k", "v"), 7, "x", ("P", 80)]
        ids = encoder.encode_column(values)
        assert [encoder.decode(i) for i in ids] == values
        assert ids[0] == ids[4]

    def test_decode_tuple(self):
        encoder = DictionaryEncoder()
        ids = (encoder.encode("a"), encoder.encode("b"))
        assert encoder.decode_tuple(ids) == ("a", "b")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            DictionaryEncoder().decode(3)

    def test_equal_values_share_ids_across_columns(self):
        # One encoder = one id space: join keys encoded from either side of a
        # join must still compare equal.
        encoder = DictionaryEncoder()
        left = encoder.encode_column([1, 2, 3])
        right = encoder.encode_column([3, 2, 9])
        assert left[2] == right[0]
        assert left[1] == right[1]


class TestStableHash:
    def test_ints_hash_to_themselves(self):
        assert stable_hash(5) == 5
        assert stable_hash(0) == 0

    def test_str_bearing_tuples_are_deterministic_across_hash_seeds(self):
        # The builtin hash of a str-bearing tuple changes with
        # PYTHONHASHSEED; stable_hash must not.  Regression test for
        # bit-reproducible partitioning: compute shard assignments in two
        # subprocesses with different hash seeds and require identical
        # output.
        script = (
            "from repro.engine.encoding import stable_hash\n"
            "from repro.engine.parallel import partition_rows\n"
            "rows = [(p, 'proto-%d' % (p % 3)) for p in range(40)]\n"
            "shards = partition_rows(rows, 4)\n"
            "print([stable_hash(r) for r in rows])\n"
            "print([[tuple(r) for r in s] for s in shards])\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            result = subprocess.run([sys.executable, "-c", script], env=env,
                                    capture_output=True, text=True, check=True)
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]

    def test_hash_consistent_with_equality_for_numeric_types(self):
        # 1 == True == 1.0, so like the builtin hash they must shard alike;
        # equal tuples must hash equal even when element reprs differ.
        assert stable_hash(1) == stable_hash(True) == stable_hash(1.0)
        assert stable_hash((1, "x")) == stable_hash((True, "x")) == \
            stable_hash((1.0, "x"))
        shards = partition_rows([(1,), (True,), (1.0,)], 4)
        assert sum(1 for shard in shards if shard) == 1

    def test_partition_rows_still_covers_and_groups(self):
        rows = [(i % 7, "s%d" % (i % 3)) for i in range(100)]
        shards = partition_rows(rows, 4)
        assert sum(len(shard) for shard in shards) == 100
        # Same key always lands in the same shard.
        location = {}
        for shard_id, shard in enumerate(shards):
            for row in shard:
                assert location.setdefault(row, shard_id) == shard_id


def _reference(left, right, on, keys, excl):
    joined = hash_join(left, right, on=on, left_prefix="b_", right_prefix="a_",
                       exclude_self_pairs_on=excl)
    return group_count(joined, keys)


class TestJoinGroupCount:
    @pytest.fixture()
    def features(self):
        rows = [
            (1, 80, ("P", 80)), (1, 80, ("PA", 80, "k", "v")), (1, 443, ("P", 443)),
            (2, 80, ("P", 80)), (2, 22, ("P", 22)),
            (3, 8080, ("P", 8080)),
        ]
        return Table.from_rows(("ip", "port", "predictor"), rows)

    @pytest.fixture()
    def ports(self):
        rows = [(1, 80), (1, 443), (2, 80), (2, 22), (3, 8080)]
        return Table.from_rows(("ip", "port"), rows)

    def test_matches_materialized_join_on_model_query(self, features, ports):
        expected = _reference(features, ports, ("ip",), ("b_predictor", "a_port"),
                              ("b_port", "a_port"))
        got = join_group_count(features, ports, on=("ip",),
                               keys=("b_predictor", "a_port"),
                               left_prefix="b_", right_prefix="a_",
                               exclude_self_pairs_on=("b_port", "a_port"))
        assert dict(got) == dict(expected)

    def test_without_exclusion(self, features, ports):
        expected = _reference(features, ports, ("ip",), ("b_predictor", "a_port"), None)
        got = join_group_count(features, ports, on=("ip",),
                               keys=("b_predictor", "a_port"),
                               left_prefix="b_", right_prefix="a_")
        assert dict(got) == dict(expected)

    def test_group_key_may_include_join_column(self, features, ports):
        keys = ("ip", "b_predictor", "a_port")
        expected = _reference(features, ports, ("ip",), keys, ("b_port", "a_port"))
        got = join_group_count(features, ports, on=("ip",), keys=keys,
                               left_prefix="b_", right_prefix="a_",
                               exclude_self_pairs_on=("b_port", "a_port"))
        assert dict(got) == dict(expected)

    def test_unknown_group_column_raises(self, features, ports):
        with pytest.raises(KeyError):
            join_group_count(features, ports, on=("ip",), keys=("nope",),
                             left_prefix="b_", right_prefix="a_")

    def test_unknown_exclusion_column_raises(self, features, ports):
        with pytest.raises(KeyError):
            join_group_count(features, ports, on=("ip",), keys=("a_port",),
                             left_prefix="b_", right_prefix="a_",
                             exclude_self_pairs_on=("zz", "a_port"))

    def test_empty_inputs(self):
        empty = Table.empty(("ip", "port"))
        got = join_group_count(empty, empty, on=("ip",), keys=("l_port", "r_port"))
        assert dict(got) == {}

    def test_packing_declined_for_negative_right_values(self):
        left = Table.from_rows(("ip", "v"), [(1, 10), (2, 20)])
        right = Table.from_rows(("ip", "w"), [(1, -5), (2, 3)])
        plan = compile_join_plan(left, right, ("ip",), ("l_v", "r_w"))
        assert packing_base(plan, left.columns, right.columns) is None
        expected = group_count(hash_join(left, right, on=("ip",)), ("l_v", "r_w"))
        got = join_group_count(left, right, on=("ip",), keys=("l_v", "r_w"))
        assert dict(got) == dict(expected)

    def test_packing_declined_for_non_int_columns(self):
        left = Table.from_rows(("ip", "v"), [(1, "a"), (2, "b")])
        right = Table.from_rows(("ip", "w"), [(1, 5), (2, 3)])
        plan = compile_join_plan(left, right, ("ip",), ("l_v", "r_w"))
        assert packing_base(plan, left.columns, right.columns) is None
        expected = group_count(hash_join(left, right, on=("ip",)), ("l_v", "r_w"))
        assert dict(join_group_count(left, right, on=("ip",),
                                     keys=("l_v", "r_w"))) == dict(expected)

    def test_packing_applies_to_int_pair_keys(self):
        left = Table.from_rows(("ip", "v"), [(1, -7), (1, 4), (2, 4)])
        right = Table.from_rows(("ip", "w"), [(1, 5), (1, 0), (2, 3)])
        plan = compile_join_plan(left, right, ("ip",), ("l_v", "r_w"))
        assert packing_base(plan, left.columns, right.columns) == 6
        expected = group_count(hash_join(left, right, on=("ip",)), ("l_v", "r_w"))
        got = join_group_count(left, right, on=("ip",), keys=("l_v", "r_w"))
        assert dict(got) == dict(expected)


rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(1, 5),
              st.sampled_from(["http", "ssh", "rtsp"])),
    max_size=60,
)
right_rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(1, 5)), max_size=60,
)


class TestEquivalenceProperties:
    @settings(deadline=None, max_examples=50)
    @given(rows_strategy, right_rows_strategy,
           st.sampled_from([None, ("b_port", "a_port")]),
           st.sampled_from([("b_predictor", "a_port"), ("b_port",),
                            ("a_port", "b_predictor"), ("ip", "a_port")]))
    def test_fused_equals_materialized(self, left_rows, right_rows, excl, keys):
        left = Table.from_rows(("ip", "port", "predictor"), left_rows)
        right = Table.from_rows(("ip", "port"), right_rows)
        expected = _reference(left, right, ("ip",), keys, excl)
        got = join_group_count(left, right, on=("ip",), keys=keys,
                               left_prefix="b_", right_prefix="a_",
                               exclude_self_pairs_on=excl)
        assert dict(got) == dict(expected)

    @settings(deadline=None, max_examples=25)
    @given(rows_strategy, right_rows_strategy, st.integers(1, 6),
           st.sampled_from(["serial", "thread"]))
    def test_partitioned_fused_equals_materialized(self, left_rows, right_rows,
                                                   workers, backend):
        left = Table.from_rows(("ip", "port", "predictor"), left_rows)
        right = Table.from_rows(("ip", "port"), right_rows)
        expected = _reference(left, right, ("ip",), ("b_predictor", "a_port"),
                              ("b_port", "a_port"))
        config = ExecutorConfig(backend=backend, workers=workers)
        got = partitioned_join_group_count(
            left, right, on=("ip",), keys=("b_predictor", "a_port"), config=config,
            left_prefix="b_", right_prefix="a_",
            exclude_self_pairs_on=("b_port", "a_port"))
        assert dict(got) == dict(expected)

    def test_partitioned_fused_process_backend(self):
        # Process pools are too slow to spin up per hypothesis example; one
        # representative fixed case checks the encoded-column path end to end.
        left_rows = [(ip % 5, 1 + ip % 4, ("P", ip % 3, "s%d" % (ip % 2)))
                     for ip in range(60)]
        right_rows = [(ip % 5, 1 + ip % 6) for ip in range(40)]
        left = Table.from_rows(("ip", "port", "predictor"), left_rows)
        right = Table.from_rows(("ip", "port"), right_rows)
        expected = _reference(left, right, ("ip",), ("b_predictor", "a_port"),
                              ("b_port", "a_port"))
        config = ExecutorConfig(backend="process", workers=2)
        got = partitioned_join_group_count(
            left, right, on=("ip",), keys=("b_predictor", "a_port"), config=config,
            left_prefix="b_", right_prefix="a_",
            exclude_self_pairs_on=("b_port", "a_port"))
        assert dict(got) == dict(expected)
