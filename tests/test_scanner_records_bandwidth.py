"""Unit tests for scan records and bandwidth accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.scanner.bandwidth import BITS_PER_PROBE, BandwidthLedger, ScanCategory
from repro.scanner.records import ScanObservation, observations_by_host, unique_pairs


def _obs(ip: int, port: int, protocol: str = "http") -> ScanObservation:
    return ScanObservation(ip=ip, port=port, protocol=protocol,
                           app_features={"protocol": protocol})


class TestScanObservation:
    def test_pair_and_feature(self):
        obs = ScanObservation(ip=7, port=80, protocol="http",
                              app_features={"http_server": "nginx"})
        assert obs.pair() == (7, 80)
        assert obs.feature("http_server") == "nginx"
        assert obs.feature("missing", "d") == "d"

    def test_observations_by_host_groups_and_sorts(self):
        grouped = observations_by_host([_obs(1, 443), _obs(2, 80), _obs(1, 80)])
        assert set(grouped) == {1, 2}
        assert [o.port for o in grouped[1]] == [80, 443]

    def test_unique_pairs_dedupes(self):
        pairs = unique_pairs([_obs(1, 80), _obs(1, 80), _obs(2, 22)])
        assert pairs == [(1, 80), (2, 22)]


class TestBandwidthLedger:
    def test_rejects_non_positive_space(self):
        with pytest.raises(ValueError):
            BandwidthLedger(address_space_size=0)

    def test_record_and_totals(self):
        ledger = BandwidthLedger(address_space_size=1000)
        ledger.record(ScanCategory.SEED, probes=500, responses=5)
        ledger.record(ScanCategory.PREDICTION, probes=100, responses=80)
        assert ledger.total_probes() == 600
        assert ledger.total_probes(ScanCategory.SEED) == 500
        assert ledger.total_responses() == 85
        assert ledger.full_scans() == pytest.approx(0.6)
        assert ledger.full_scans(ScanCategory.PREDICTION) == pytest.approx(0.1)

    def test_precision(self):
        ledger = BandwidthLedger(address_space_size=10)
        assert ledger.precision() == 0.0
        ledger.record(ScanCategory.PRIORS, probes=100, responses=25)
        assert ledger.precision() == pytest.approx(0.25)

    def test_rejects_negative_counts(self):
        ledger = BandwidthLedger(address_space_size=10)
        with pytest.raises(ValueError):
            ledger.record(ScanCategory.SEED, probes=-1)

    def test_rejects_more_responses_than_probes(self):
        ledger = BandwidthLedger(address_space_size=10)
        with pytest.raises(ValueError):
            ledger.record(ScanCategory.SEED, probes=1, responses=2)

    def test_wall_time_model(self):
        ledger = BandwidthLedger(address_space_size=10)
        ledger.record(ScanCategory.SEED, probes=1000)
        assert ledger.wall_time_seconds(rate_bits_per_second=1000 * BITS_PER_PROBE) \
            == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ledger.wall_time_seconds(rate_bits_per_second=0)

    def test_snapshot_contains_category_breakdown(self):
        ledger = BandwidthLedger(address_space_size=10)
        ledger.record(ScanCategory.SEED, probes=10, responses=1)
        snapshot = ledger.snapshot()
        assert snapshot["total_probes"] == 10.0
        assert "full_scans_seed" in snapshot

    def test_merge_requires_same_space(self):
        a = BandwidthLedger(address_space_size=10)
        b = BandwidthLedger(address_space_size=20)
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_sums_categories(self):
        a = BandwidthLedger(address_space_size=10)
        b = BandwidthLedger(address_space_size=10)
        a.record(ScanCategory.SEED, probes=5, responses=1)
        b.record(ScanCategory.SEED, probes=7, responses=2)
        merged = a.merged_with(b)
        assert merged.total_probes(ScanCategory.SEED) == 12
        assert merged.total_responses(ScanCategory.SEED) == 3

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                              st.integers(min_value=0, max_value=10_000)),
                    max_size=30))
    def test_totals_match_sum_of_records(self, records):
        ledger = BandwidthLedger(address_space_size=1234)
        expected_probes = 0
        expected_responses = 0
        for probes, responses in records:
            responses = min(probes, responses)
            ledger.record(ScanCategory.OTHER, probes=probes, responses=responses)
            expected_probes += probes
            expected_responses += responses
        assert ledger.total_probes() == expected_probes
        assert ledger.total_responses() == expected_responses
        assert ledger.full_scans() == pytest.approx(expected_probes / 1234)
