"""Chaos tests for the scanner path: seeded probe loss, retries, accounting.

The contract under test is the one the paper's bandwidth results depend on:
a seeded :class:`~repro.engine.faults.FaultPlan` with a non-zero
``probe_loss_rate`` must leave every scan shape's *results* bit-identical to
the lossless run (the loss model bounds consecutive losses below the retry
budget), while the :class:`~repro.scanner.bandwidth.BandwidthLedger` shows
exactly the retry overhead -- retransmits are charged as real bandwidth,
responses are never double-counted, and a loss rate of zero is byte-identical
to not configuring a fault plan at all.
"""

from __future__ import annotations

import pytest

from repro.engine.faults import FaultPlan, ProbeLossModel
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory
from repro.scanner.pipeline import ScanPipeline

#: Loss rate used throughout: high enough that every scan shape sees drops at
#: the test universe's scale, low enough that bounded retries stay cheap.
LOSS = FaultPlan(seed=7, probe_loss_rate=0.35)


def _lossless(universe):
    return ScanPipeline(universe)


def _lossy(universe, plan=LOSS):
    return ScanPipeline(universe, fault_plan=plan)


class TestLossRetryEquivalence:
    """Every scan shape's results are invariant under bounded seeded loss."""

    def test_seed_scan_results_identical_under_loss(self, universe):
        ports = universe.port_registry().top_ports(8)
        clean = _lossless(universe).seed_scan(0.01, seed=3, ports=ports)
        lossy = _lossy(universe).seed_scan(0.01, seed=3, ports=ports)
        assert lossy.sampled_ips == clean.sampled_ips
        assert ([o.pair() for o in lossy.observations]
                == [o.pair() for o in clean.observations])
        assert lossy.removed_pseudo_services == clean.removed_pseudo_services

    def test_prefix_scan_results_identical_under_loss(self, universe):
        port = universe.port_registry().top_ports(1)[0]
        base, length = universe.topology.systems[0].prefixes[0]
        clean = _lossless(universe).scan_prefix(port, (base, length))
        lossy = _lossy(universe).scan_prefix(port, (base, length))
        assert [o.pair() for o in lossy] == [o.pair() for o in clean]

    def test_pair_scan_results_identical_under_loss(self, universe):
        pairs = sorted(universe.real_service_pairs())[:120]
        clean = _lossless(universe).scan_pairs(pairs)
        lossy = _lossy(universe).scan_pairs(pairs)
        assert [o.pair() for o in lossy] == [o.pair() for o in clean]

    def test_batched_pair_scan_results_identical_under_loss(self, universe):
        pairs = sorted(universe.real_service_pairs())[:120]
        clean = _lossless(universe).scan_pairs(pairs, batch_prefix_len=24)
        lossy = _lossy(universe).scan_pairs(pairs, batch_prefix_len=24)
        assert [o.pair() for o in lossy] == [o.pair() for o in clean]

    def test_loss_charges_retransmits_not_responses(self, universe):
        """Loss costs bandwidth (retransmits charged into the probe totals)
        but never responses: the retry layers deduplicate observations."""
        pairs = sorted(universe.real_service_pairs())[:120]
        clean_pipeline = _lossless(universe)
        lossy_pipeline = _lossy(universe)
        clean_pipeline.scan_pairs(pairs)
        lossy_pipeline.scan_pairs(pairs)
        clean_ledger, lossy_ledger = clean_pipeline.ledger, lossy_pipeline.ledger
        assert lossy_ledger.total_retransmits() > 0
        assert clean_ledger.total_retransmits() == 0
        assert lossy_ledger.total_responses() == clean_ledger.total_responses()
        assert (lossy_ledger.total_probes()
                == clean_ledger.total_probes()
                + lossy_ledger.total_retransmits())


class TestLossRateZeroRegression:
    """A zero-loss fault plan is byte-identical to no fault plan at all.

    These pins are the regression guard the satellite asks for: threading a
    (lossless) FaultPlan through the pipeline must not change a single
    coverage or ledger number.
    """

    def test_zero_loss_plan_has_no_loss_model(self):
        assert FaultPlan(probe_loss_rate=0.0).loss_model() is None
        assert LOSS.loss_model() is not None

    def test_zero_loss_pipeline_pins_ledger_and_coverage(self, universe):
        ports = universe.port_registry().top_ports(6)
        plain = _lossless(universe)
        gated = _lossy(universe, FaultPlan(seed=99, probe_loss_rate=0.0))
        assert gated.zmap.loss is None and gated.zmap.max_retries == 0
        plain_seed = plain.seed_scan(0.01, seed=5, ports=ports)
        gated_seed = gated.seed_scan(0.01, seed=5, ports=ports)
        assert ([o.pair() for o in gated_seed.observations]
                == [o.pair() for o in plain_seed.observations])
        assert gated.ledger.snapshot() == plain.ledger.snapshot()
        assert gated.ledger.total_retransmits() == 0


class TestLedgerRetransmitAccounting:
    def test_retransmits_accumulate_and_snapshot(self):
        ledger = BandwidthLedger(address_space_size=100)
        ledger.record(ScanCategory.PREDICTION, probes=50, responses=10,
                      retransmits=5)
        ledger.record(ScanCategory.PREDICTION, probes=20, responses=2,
                      retransmits=3)
        ledger.record(ScanCategory.SEED, probes=30, responses=1)
        assert ledger.total_retransmits() == 8
        assert ledger.total_retransmits(ScanCategory.PREDICTION) == 8
        assert ledger.total_retransmits(ScanCategory.SEED) == 0
        assert ledger.snapshot()["total_retransmits"] == 8.0

    def test_retransmits_survive_merge(self):
        left = BandwidthLedger(address_space_size=100)
        right = BandwidthLedger(address_space_size=100)
        left.record(ScanCategory.PRIORS, probes=10, responses=1, retransmits=4)
        right.record(ScanCategory.PRIORS, probes=6, responses=2, retransmits=1)
        merged = left.merged_with(right)
        assert merged.total_retransmits(ScanCategory.PRIORS) == 5
        assert merged.total_probes(ScanCategory.PRIORS) == 16

    def test_retransmit_validation(self):
        ledger = BandwidthLedger(address_space_size=100)
        with pytest.raises(ValueError):
            ledger.record(ScanCategory.SEED, probes=2, retransmits=3)
        with pytest.raises(ValueError):
            ledger.record(ScanCategory.SEED, probes=2, retransmits=-1)


class TestFaultPlanValidation:
    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(probe_loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(probe_loss_rate=-0.1)

    def test_retry_budget_must_cover_consecutive_losses(self):
        with pytest.raises(ValueError):
            FaultPlan(probe_loss_rate=0.2, max_consecutive_losses=3,
                      max_probe_retries=2)
        # Lossless plans may carry any budget: nothing ever retries.
        FaultPlan(probe_loss_rate=0.0, max_consecutive_losses=3,
                  max_probe_retries=0)

    def test_duration_and_bound_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(max_consecutive_losses=0)
        with pytest.raises(ValueError):
            FaultPlan(retry_backoff_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(slow_seconds=-0.5)

    def test_scanner_only_plan_does_not_touch_runtime(self):
        assert not LOSS.touches_runtime()
        assert FaultPlan(crash_task="model_pairs").touches_runtime()


class TestProbeLossModel:
    def test_decisions_are_deterministic(self):
        first = ProbeLossModel(seed=3, loss_rate=0.5)
        second = ProbeLossModel(seed=3, loss_rate=0.5)
        draws = [(ip, port, attempt)
                 for ip in range(40) for port in (22, 443)
                 for attempt in range(3)]
        assert ([first.lost("zmap", *d) for d in draws]
                == [second.lost("zmap", *d) for d in draws])

    def test_consecutive_losses_are_bounded(self):
        model = ProbeLossModel(seed=1, loss_rate=0.9, max_consecutive_losses=2)
        for ip in range(200):
            assert not model.lost("zmap", ip, 80, attempt=2)

    def test_layers_draw_independently(self):
        model = ProbeLossModel(seed=1, loss_rate=0.5)
        zmap_draws = [model.lost("zmap", ip, 80, 0) for ip in range(200)]
        lzr_draws = [model.lost("lzr", ip, 80, 0) for ip in range(200)]
        assert zmap_draws != lzr_draws

    def test_empirical_rate_near_nominal(self):
        model = ProbeLossModel(seed=2, loss_rate=0.3)
        drops = sum(model.lost("zmap", ip, 443, 0) for ip in range(4000))
        assert 0.25 < drops / 4000 < 0.35
