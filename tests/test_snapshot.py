"""Tests for the versioned snapshot format and its runtime integration.

The persistence layer must be invisible: everything loaded from a snapshot
is bit-identical to what a fresh build would have produced -- across column
backends, across executors, and across crash/resize chaos.  Covers the
round-trip property (hypothesis-driven shapes plus the shared-fixture
artifacts), the typed corrupt-snapshot failure modes (truncation, checksum
mismatch, future format versions -- never a silent partial load), the
mmap-backed shard loading path (zero bytes through worker queues, elastic
resize as a pure placement remap, disk-backed crash recovery), and the
serving provenance surfaces (``GET /models``, ``/stats``).
"""

from __future__ import annotations

import json
import os
import tempfile
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.features import extract_host_features_columns
from repro.core.model import build_model_with_engine
from repro.core.predictions import build_prediction_index_with_engine
from repro.core.priors import build_priors_plan_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.columns import numpy_available
from repro.engine.faults import FaultPlan
from repro.engine.runtime import RUNTIME_EXECUTORS, EngineRuntime
from repro.engine.snapshot import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    open_snapshot,
    save_snapshot,
)
from repro.scanner.records import ObservationBatch, ScanObservation
from repro.serving.registry import PreparedModel

BACKENDS = ("stdlib", "numpy")

protocols = st.sampled_from(["http", "ssh", "tls", "ftp", "unknown"])
banner_features = st.dictionaries(
    st.sampled_from(["title", "server", "banner", "cert_subject"]),
    st.text(max_size=8), max_size=3)
observations_strategy = st.lists(
    st.builds(
        ScanObservation,
        ip=st.integers(min_value=0, max_value=2**32 - 1),
        port=st.integers(min_value=1, max_value=65535),
        protocol=protocols,
        app_features=banner_features,
        ttl=st.integers(min_value=0, max_value=255),
    ),
    max_size=30,
)


@pytest.fixture(scope="module")
def artifacts(universe, censys_split):
    """Columnar host features + fused-built Table 2 artifacts (the oracle)."""
    batch = ObservationBatch.from_observations(censys_split.seed_observations)
    host_features = extract_host_features_columns(
        batch, universe.topology.asn_db, FeatureConfig())
    model = build_model_with_engine(host_features, mode="fused")
    priors = build_priors_plan_with_engine(host_features, model, 16,
                                           mode="fused")
    index = build_prediction_index_with_engine(host_features, model,
                                               mode="fused")
    return batch, host_features, model, priors, index


@pytest.fixture(scope="module")
def saved(tmp_path_factory, artifacts):
    """One full snapshot (seed + artifacts + 3 shards) on disk."""
    batch, host_features, model, priors, index = artifacts
    directory = str(tmp_path_factory.mktemp("snapshot"))
    save_snapshot(directory, observations=batch, host_features=host_features,
                  model=model, priors_plan=priors, index=index,
                  shard_count=3, step_size=16)
    return directory


def _save_minimal(directory: str) -> str:
    """A tiny but complete snapshot for corruption drills."""
    batch = ObservationBatch.from_observations([
        ScanObservation(ip=10, port=80, protocol="http",
                        app_features={"title": "a"}, ttl=64),
        ScanObservation(ip=11, port=443, protocol="tls",
                        app_features={}, ttl=64),
    ])
    save_snapshot(directory, observations=batch)
    return directory


class TestRoundTrip:
    def test_model_bit_identical(self, saved, artifacts):
        _, _, model, _, _ = artifacts
        loaded = open_snapshot(saved).model()
        assert loaded.cooccurrence == model.cooccurrence
        assert loaded.denominators == model.denominators
        # Insertion order matters to downstream iteration: pin it too.
        assert list(loaded.cooccurrence) == list(model.cooccurrence)
        assert list(loaded.denominators) == list(model.denominators)

    def test_priors_plan_bit_identical(self, saved, artifacts):
        _, _, _, priors, _ = artifacts
        assert open_snapshot(saved).priors_plan() == priors

    def test_prediction_index_bit_identical(self, saved, artifacts):
        _, _, _, _, index = artifacts
        assert open_snapshot(saved).prediction_index().entries() == \
            index.entries()

    def test_observation_batch_round_trips(self, saved, artifacts):
        batch, _, _, _, _ = artifacts
        loaded = open_snapshot(saved).observation_batch()
        assert loaded.materialize() == batch.materialize()
        assert loaded.ips.tolist() == batch.ips.tolist()
        assert loaded.status.tolist() == batch.status.tolist()
        assert loaded.banner_ids.tolist() == batch.banner_ids.tolist()

    def test_host_features_round_trip(self, saved, artifacts):
        _, host_features, _, _, _ = artifacts
        loaded = open_snapshot(saved).host_feature_columns()
        for column in ("ips", "member_starts", "ports", "value_starts",
                       "value_ids"):
            assert getattr(loaded, column).tolist() == \
                getattr(host_features, column).tolist()
        assert loaded.encoder.values() == host_features.encoder.values()

    def test_open_without_verify_still_checks_sizes(self, saved):
        snapshot = open_snapshot(saved, verify=False)
        assert snapshot.version == FORMAT_VERSION
        assert snapshot.has_section("model")

    @pytest.mark.parametrize("executor", tuple(RUNTIME_EXECUTORS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_and_executors_round_trip(self, tmp_path, artifacts,
                                               executor, backend):
        """build -> snapshot -> load is bit-identical on every engine path."""
        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy backend not installed")
        _, host_features, model, priors, index = artifacts
        with EngineRuntime(executor=executor, num_workers=2,
                           shard_count=3) as runtime:
            dataset = ResidentHostGroups(runtime, host_features, 16)
            built_model = build_model_with_engine(
                host_features, mode="fused", dataset=dataset,
                column_backend=backend)
            built_priors = build_priors_plan_with_engine(
                host_features, built_model, 16, mode="fused", dataset=dataset)
            built_index = build_prediction_index_with_engine(
                host_features, built_model, mode="fused", dataset=dataset)
            dataset.release()
        directory = str(tmp_path / f"{executor}-{backend}")
        save_snapshot(directory, host_features=host_features,
                      model=built_model, priors_plan=built_priors,
                      index=built_index, shard_count=3, step_size=16)
        snapshot = open_snapshot(directory)
        loaded_model = snapshot.model()
        assert loaded_model.cooccurrence == model.cooccurrence
        assert loaded_model.denominators == model.denominators
        assert snapshot.priors_plan() == priors
        assert snapshot.prediction_index().entries() == index.entries()

    @settings(max_examples=12, deadline=None)
    @given(rows=observations_strategy)
    def test_round_trip_property(self, universe, rows):
        """Arbitrary seed shapes: seed columns and all three Table 2
        artifacts survive save -> load bit-identically."""
        batch = ObservationBatch.from_observations(rows)
        host_features = extract_host_features_columns(
            batch, universe.topology.asn_db, FeatureConfig())
        model = build_model_with_engine(host_features, mode="fused")
        priors = build_priors_plan_with_engine(host_features, model, 16,
                                               mode="fused")
        index = build_prediction_index_with_engine(host_features, model,
                                                   mode="fused")
        with tempfile.TemporaryDirectory() as directory:
            save_snapshot(directory, observations=batch,
                          host_features=host_features, model=model,
                          priors_plan=priors, index=index)
            snapshot = open_snapshot(directory)
            assert snapshot.observation_batch().materialize() == \
                batch.materialize()
            loaded_model = snapshot.model()
            assert loaded_model.cooccurrence == model.cooccurrence
            assert loaded_model.denominators == model.denominators
            assert snapshot.priors_plan() == priors
            assert snapshot.prediction_index().entries() == index.entries()


class TestCorruptSnapshots:
    """Every corruption mode fails loudly with a typed error."""

    def test_truncated_file_raises_integrity_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        victim = tmp_path / "observations.ips.bin"
        victim.write_bytes(victim.read_bytes()[:-3])
        with pytest.raises(SnapshotIntegrityError, match="truncated"):
            open_snapshot(directory)
        # Size validation is structural: even verify=False refuses.
        with pytest.raises(SnapshotIntegrityError):
            open_snapshot(directory, verify=False)

    def test_checksum_mismatch_raises_integrity_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        victim = tmp_path / "observations.ports.bin"
        payload = bytearray(victim.read_bytes())
        payload[0] ^= 0xFF
        victim.write_bytes(bytes(payload))
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            open_snapshot(directory)

    def test_future_format_version_raises_version_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotVersionError, match="version"):
            open_snapshot(directory)

    def test_missing_manifest_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            open_snapshot(str(tmp_path))

    def test_unparseable_manifest_raises_snapshot_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="JSON"):
            open_snapshot(directory)

    def test_foreign_format_raises_snapshot_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError):
            open_snapshot(directory)

    def test_missing_column_file_raises_snapshot_error(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        os.unlink(tmp_path / "observations.ttls.bin")
        with pytest.raises(SnapshotError, match="missing"):
            open_snapshot(directory)

    def test_typed_errors_share_one_base(self):
        assert issubclass(SnapshotIntegrityError, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotError)


class TestRuntimeShardLoading:
    """mmap shard references: zero queue bytes, disk-backed recovery,
    resize as a placement remap."""

    def test_snapshot_load_ships_zero_shard_bytes(self, saved, artifacts):
        _, host_features, model, priors, index = artifacts
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=3) as runtime:
            snapshot = open_snapshot(saved)
            dataset = ResidentHostGroups.from_snapshot(runtime, snapshot)
            assert runtime.recovery_stats.shard_bytes_queued == 0
            built = build_model_with_engine(host_features, mode="fused",
                                            dataset=dataset)
            assert built.cooccurrence == model.cooccurrence
            assert built.denominators == model.denominators
            dataset.release()

    def test_from_snapshot_requires_matching_shard_count(self, saved):
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=5) as runtime:
            with pytest.raises(SnapshotError, match="shard"):
                ResidentHostGroups.from_snapshot(runtime, open_snapshot(saved))

    def test_from_snapshot_requires_shard_sections(self, tmp_path):
        directory = _save_minimal(str(tmp_path))
        with EngineRuntime(executor="serial", shard_count=1) as runtime:
            with pytest.raises(SnapshotError, match="shard"):
                ResidentHostGroups.from_snapshot(runtime,
                                                 open_snapshot(directory))

    def test_mid_load_crash_recovers_from_disk(self, saved, artifacts,
                                               monkeypatch):
        """A worker dying mid-snapshot-load heals surgically by re-opening
        shard files -- still zero bytes through the queues."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        _, host_features, model, _, _ = artifacts
        plan = FaultPlan(crash_task="load", crash_workers=(0,))
        with EngineRuntime(executor="pool", num_workers=2, shard_count=3,
                           fault_plan=plan) as runtime:
            snapshot = open_snapshot(saved)
            dataset = ResidentHostGroups.from_snapshot(runtime, snapshot)
            stats = runtime.recovery_stats
            assert stats.crashes_detected == 1 and stats.respawns == 1
            assert stats.reloaded_shards >= 1
            assert stats.shard_bytes_queued == 0
            built = build_model_with_engine(host_features, mode="fused",
                                            dataset=dataset)
            assert built.cooccurrence == model.cooccurrence
            assert built.denominators == model.denominators
            assert not runtime.broken
            dataset.release()

    def test_resize_after_snapshot_load_ships_zero_bytes(self, saved,
                                                         artifacts):
        """Growing and shrinking the pool migrates shards as file handles:
        RecoveryStats pins that not one shard byte crossed a queue."""
        _, host_features, model, priors, index = artifacts
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=3) as runtime:
            snapshot = open_snapshot(saved)
            dataset = ResidentHostGroups.from_snapshot(runtime, snapshot)
            runtime.resize(3)
            runtime.resize(1)
            stats = runtime.recovery_stats
            assert stats.resizes == 2
            assert stats.migrated_shards > 0
            assert stats.shard_bytes_queued == 0
            assert runtime.num_workers == 1
            built = build_model_with_engine(host_features, mode="fused",
                                            dataset=dataset)
            assert built.cooccurrence == model.cooccurrence
            assert built.denominators == model.denominators
            built_priors = build_priors_plan_with_engine(
                host_features, built, 16, mode="fused", dataset=dataset)
            assert built_priors == priors
            built_index = build_prediction_index_with_engine(
                host_features, built, mode="fused", dataset=dataset)
            assert built_index.entries() == index.entries()
            dataset.release()


class TestServingProvenance:
    """Warm restarts are distinguishable from rebuilds on every surface."""

    def test_prepared_model_from_snapshot(self, saved, pipeline, artifacts):
        _, _, model, priors, index = artifacts
        config = GPSConfig(use_engine=True, executor="serial", shard_count=3)
        with EngineRuntime(executor="serial", shard_count=3) as runtime:
            prepared = PreparedModel.from_snapshot(
                "warm", pipeline, saved, config, runtime)
            info = prepared.info()
            assert info.source == "snapshot"
            assert info.snapshot_version == FORMAT_VERSION
            assert info.loaded_at is not None
            assert info.resident_shards
            assert prepared.model.cooccurrence == model.cooccurrence
            assert prepared.priors_plan == priors
            assert prepared.index.entries() == index.entries()
            prepared.release()

    def test_http_surfaces_expose_provenance(self, saved, universe):
        from repro.scanner.pipeline import ScanPipeline
        from repro.serving.http import ServiceHost, make_http_server
        from repro.serving.service import ServingConfig

        host = ServiceHost(ServingConfig(executor="serial", shard_count=3))
        server = None
        try:
            model_pipeline = ScanPipeline(universe)
            info = host.call(host.service.load_model_from_snapshot(
                "default", model_pipeline, saved,
                GPSConfig(use_engine=True, executor="serial", shard_count=3)))
            assert info.source == "snapshot"
            server = make_http_server(host, port=0)
            port = server.server_address[1]
            import threading
            threading.Thread(target=server.serve_forever, daemon=True).start()
            models = json.load(urllib.request.urlopen(
                f"http://127.0.0.1:{port}/models"))
            row = models["models"][0]
            assert row["source"] == "snapshot"
            assert row["snapshot_version"] == FORMAT_VERSION
            assert row["loaded_at"] is not None
            stats = json.load(urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats"))
            assert stats["models"] == [
                {"name": "default", "source": "snapshot",
                 "snapshot_version": FORMAT_VERSION,
                 "loaded_at": row["loaded_at"]}]
        finally:
            if server is not None:
                server.shutdown()
                server.server_close()
            host.close()

    def test_built_models_report_built_source(self, universe, censys_split):
        from repro.scanner.pipeline import ScanPipeline, SeedScanResult
        from repro.serving.registry import build_prepared_model

        model_pipeline = ScanPipeline(universe)
        seed = censys_split.seed_scan_result()
        prepared = build_prepared_model("fresh", model_pipeline, seed,
                                        GPSConfig(use_engine=True))
        info = prepared.info()
        assert info.source == "built"
        assert info.snapshot_version is None
        assert info.loaded_at is None
        prepared.release()
