"""Unit tests for ground-truth dataset builders, splitting and I/O."""

from __future__ import annotations

import pytest

from repro.datasets.builders import build_censys_like, build_full_dataset, build_lzr_like
from repro.datasets.io import (
    load_observations_jsonl,
    observation_from_dict,
    observation_to_dict,
    save_observations_jsonl,
)
from repro.datasets.split import seed_scan_cost_probes, split_seed_test
from repro.scanner.records import ScanObservation


class TestBuilders:
    def test_full_dataset_matches_universe(self, universe):
        dataset = build_full_dataset(universe)
        assert dataset.service_count() == universe.service_count()
        assert dataset.pairs() == set(universe.real_service_pairs())
        assert dataset.sample_fraction == 1.0

    def test_censys_like_covers_top_ports_only(self, universe, censys_dataset):
        registry = universe.port_registry()
        top_ports = set(registry.top_ports(len(censys_dataset.port_domain)))
        assert set(censys_dataset.port_domain) == top_ports
        assert all(port in top_ports for _, port in censys_dataset.pairs())

    def test_censys_like_is_100_percent_within_domain(self, universe, censys_dataset):
        domain = set(censys_dataset.port_domain)
        expected = {(ip, port) for ip, port in universe.real_service_pairs()
                    if port in domain}
        assert censys_dataset.pairs() == expected

    def test_censys_like_rejects_bad_top_ports(self, universe):
        with pytest.raises(ValueError):
            build_censys_like(universe, top_ports=0)

    def test_lzr_like_sample_and_port_filter(self, universe, lzr_dataset):
        # Ports kept must have at least three responsive addresses in the sample.
        registry = lzr_dataset.port_registry()
        assert all(count >= 3 for count in registry.counts.values())
        assert 0.0 < lzr_dataset.sample_fraction <= 0.25
        assert lzr_dataset.service_count() < universe.service_count()

    def test_lzr_like_rejects_bad_fraction(self, universe):
        with pytest.raises(ValueError):
            build_lzr_like(universe, sample_fraction=0.0)

    def test_restricted_to_ports(self, censys_dataset):
        ports = list(censys_dataset.port_domain)[:5]
        restricted = censys_dataset.restricted_to_ports(ports)
        assert set(restricted.port_domain) == set(ports)
        assert all(port in set(ports) for _, port in restricted.pairs())

    def test_filtered_min_responsive_ips(self, censys_dataset):
        filtered = censys_dataset.filtered_min_responsive_ips(5)
        registry = filtered.port_registry()
        assert all(count >= 5 for count in registry.counts.values())

    def test_dataset_accessors(self, censys_dataset):
        assert censys_dataset.ips() == sorted(set(censys_dataset.ips()))
        assert censys_dataset.port_registry().total_services() == \
            len(censys_dataset.pairs())


class TestSplit:
    def test_split_partitions_by_address(self, censys_dataset):
        split = split_seed_test(censys_dataset, seed_fraction=0.1, seed=3)
        seed_ips = {obs.ip for obs in split.seed_observations}
        test_ips = {obs.ip for obs in split.test_observations}
        assert not seed_ips & test_ips
        assert len(split.seed_observations) + len(split.test_observations) == \
            censys_dataset.service_count()

    def test_split_fraction_controls_size(self, censys_dataset):
        small = split_seed_test(censys_dataset, seed_fraction=0.02, seed=3)
        large = split_seed_test(censys_dataset, seed_fraction=0.3, seed=3)
        assert len(small.seed_observations) < len(large.seed_observations)

    def test_split_rejects_fraction_beyond_dataset_coverage(self, lzr_dataset):
        with pytest.raises(ValueError):
            split_seed_test(lzr_dataset, seed_fraction=lzr_dataset.sample_fraction * 2)

    def test_split_is_deterministic(self, censys_dataset):
        first = split_seed_test(censys_dataset, seed_fraction=0.1, seed=9)
        second = split_seed_test(censys_dataset, seed_fraction=0.1, seed=9)
        assert first.seed_ips == second.seed_ips

    def test_seed_scan_result_wrapper(self, censys_dataset):
        split = split_seed_test(censys_dataset, seed_fraction=0.1, seed=3)
        seed_result = split.seed_scan_result()
        assert len(seed_result.observations) == len(split.seed_observations)
        assert seed_result.ports_scanned == censys_dataset.port_domain

    def test_seed_scan_cost(self, censys_dataset, lzr_dataset):
        censys_cost = seed_scan_cost_probes(censys_dataset, 0.01)
        expected = int(round(0.01 * censys_dataset.address_space_size
                             * len(censys_dataset.port_domain)))
        assert censys_cost == expected
        lzr_cost = seed_scan_cost_probes(lzr_dataset, 0.01)
        assert lzr_cost == int(round(0.01 * lzr_dataset.address_space_size * 65535))
        with pytest.raises(ValueError):
            seed_scan_cost_probes(censys_dataset, 0.0)


class TestIO:
    def test_roundtrip_via_dicts(self):
        obs = ScanObservation(ip=7, port=80, protocol="http",
                              app_features={"http_server": "nginx"}, ttl=128)
        assert observation_from_dict(observation_to_dict(obs)) == obs

    def test_jsonl_roundtrip(self, tmp_path, censys_split):
        path = tmp_path / "seed.jsonl"
        sample = censys_split.seed_observations[:50]
        written = save_observations_jsonl(sample, path)
        assert written == len(sample)
        loaded = load_observations_jsonl(path)
        assert [obs.pair() for obs in loaded] == [obs.pair() for obs in sample]
        assert loaded[0].app_features == dict(sample[0].app_features)

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError):
            observation_from_dict({"ip": 1})
        with pytest.raises(ValueError):
            observation_from_dict({"ip": 1, "port": 99999, "protocol": "http"})
        with pytest.raises(ValueError):
            observation_from_dict({"ip": 1, "port": 80, "protocol": "http",
                                   "app_features": "not-a-dict"})

    def test_malformed_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ip": 1, "port": 80, "protocol": "http"}\nnot json\n')
        with pytest.raises(ValueError):
            load_observations_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('\n{"ip": 1, "port": 80, "protocol": "http"}\n\n')
        assert len(load_observations_jsonl(path)) == 1
