"""Unit tests for the device catalogue and banner synthesis."""

from __future__ import annotations

import pytest

from repro.internet.banners import APP_FEATURE_KEYS, BannerFactory
from repro.internet.profiles import (
    DeviceProfile,
    PortBundle,
    default_profiles,
    profiles_by_name,
)


class TestPortBundle:
    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            PortBundle(port=0, protocol="http")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            PortBundle(port=80, protocol="http", probability=1.5)


class TestDeviceProfile:
    def test_profile_requires_bundles(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", vendor="v", device_class="iot", bundles=())

    def test_profile_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", vendor="v", device_class="iot",
                          bundles=(PortBundle(80, "http"),),
                          network_concentration=2.0)

    def test_profile_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", vendor="v", device_class="iot",
                          bundles=(PortBundle(80, "http"),), weight=0.0)

    def test_ports_helper(self):
        profile = DeviceProfile(name="x", vendor="v", device_class="iot",
                                bundles=(PortBundle(80, "http"), PortBundle(22, "ssh")))
        assert profile.ports() == [80, 22]


class TestDefaultCatalogue:
    def test_names_are_unique(self):
        profiles = default_profiles()
        assert len({p.name for p in profiles}) == len(profiles)

    def test_profiles_by_name_indexes_catalogue(self):
        index = profiles_by_name()
        assert "home_router_av" in index
        assert index["isp_freebox"].network_concentration == 1.0

    def test_profiles_by_name_rejects_duplicates(self):
        profile = default_profiles()[0]
        with pytest.raises(ValueError):
            profiles_by_name([profile, profile])

    def test_catalogue_includes_paper_motivated_devices(self):
        index = profiles_by_name()
        # Freebox-style single-network device and the 23->8082 telnet example.
        assert index["isp_freebox"].preferred_as_count == 1
        telnet_ports = index["telnet_modem_2323"].ports()
        assert 23 in telnet_ports and 8082 in telnet_ports

    def test_catalogue_has_long_tail_sources(self):
        profiles = default_profiles()
        assert any(b.as_specific for p in profiles for b in p.bundles)
        assert any(b.random_port for p in profiles for b in p.bundles)


class TestBannerFactory:
    @pytest.fixture()
    def factory(self):
        return BannerFactory()

    @pytest.fixture()
    def profile(self):
        return profiles_by_name()["web_hosting"]

    def test_rejects_invalid_unique_fraction(self):
        with pytest.raises(ValueError):
            BannerFactory(unique_body_fraction=1.5)

    def test_features_include_protocol(self, factory, profile):
        features = factory.features_for(profile, "http", 0, ip=1234)
        assert features["protocol"] == "http"

    def test_http_features_present(self, factory, profile):
        features = factory.features_for(profile, "http", 0, ip=1234)
        assert {"http_html_title", "http_server", "http_header"} <= set(features)

    def test_https_includes_tls_and_http(self, factory, profile):
        features = factory.features_for(profile, "https", 0, ip=1234)
        assert "tls_cert_org" in features and "http_server" in features

    def test_fleet_level_values_shared_across_hosts(self, factory, profile):
        a = factory.features_for(profile, "http", 0, ip=1)
        b = factory.features_for(profile, "http", 0, ip=2)
        assert a["http_server"] == b["http_server"]
        assert a["http_html_title"] == b["http_html_title"]

    def test_host_level_values_differ_across_hosts(self, factory, profile):
        a = factory.features_for(profile, "ssh", 0, ip=1)
        b = factory.features_for(profile, "ssh", 0, ip=2)
        assert a["ssh_host_key"] != b["ssh_host_key"]
        assert a["ssh_banner"] == b["ssh_banner"]

    def test_tls_cert_hash_unique_per_host(self, factory, profile):
        a = factory.features_for(profile, "https", 0, ip=1)
        b = factory.features_for(profile, "https", 0, ip=2)
        assert a["tls_cert_hash"] != b["tls_cert_hash"]
        assert a["tls_cert_org"] == b["tls_cert_org"]

    def test_variants_produce_different_content(self, factory, profile):
        a = factory.features_for(profile, "http", 0, ip=1)
        b = factory.features_for(profile, "http", 1, ip=1)
        assert a["http_html_title"] != b["http_html_title"]

    def test_only_known_feature_keys_emitted(self, factory, profile):
        for protocol in ("http", "https", "ssh", "telnet", "cwmp", "vnc", "ftp",
                         "smtp", "imap", "pop3", "pptp", "mysql", "memcached",
                         "mssql", "ipmi", "rtsp", "dns", "unknown-proto"):
            features = factory.features_for(profile, protocol, 0, ip=9)
            assert set(features) <= set(APP_FEATURE_KEYS)

    def test_determinism(self, factory, profile):
        assert (factory.features_for(profile, "https", 1, ip=77)
                == factory.features_for(profile, "https", 1, ip=77))

    def test_pseudo_static_shares_body_across_hosts(self, factory):
        a = factory.pseudo_service_features(1, incident_style=False, port=80)
        b = factory.pseudo_service_features(2, incident_style=False, port=8080)
        assert a["http_body_hash"] == b["http_body_hash"]

    def test_pseudo_incident_varies_per_port(self, factory):
        a = factory.pseudo_service_features(1, incident_style=True, port=80)
        b = factory.pseudo_service_features(1, incident_style=True, port=81)
        assert a["http_body_hash"] != b["http_body_hash"]
