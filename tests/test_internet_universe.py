"""Unit and property tests for the synthetic universe generator."""

from __future__ import annotations

import pytest

from repro.internet.profiles import profiles_by_name
from repro.internet.topology import TopologyConfig
from repro.internet.universe import Universe, UniverseConfig, generate_universe
from repro.net.ipv4 import ip_in_prefix


class TestUniverseConfig:
    @pytest.mark.parametrize("kwargs", [
        {"host_count": 0},
        {"pseudo_host_fraction": 1.5},
        {"middlebox_fraction": -0.1},
        {"pseudo_port_span": 0},
        {"subnet_cluster_len": 8},
        {"cluster_probability": 2.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            UniverseConfig(**kwargs)


class TestGeneration:
    def test_host_count_close_to_requested(self, universe):
        described = universe.describe()
        # Real hosts plus pseudo hosts plus middleboxes.
        assert described["hosts"] >= 1200

    def test_every_real_host_has_a_service(self, universe):
        for host in universe.hosts.values():
            if not host.is_pseudo_host() and not host.is_middlebox:
                assert host.services

    def test_service_records_consistent_with_host(self, universe):
        for host in list(universe.hosts.values())[:300]:
            for port, record in host.services.items():
                assert record.ip == host.ip
                assert record.port == port
                assert 1 <= port <= 65535
                assert record.app_features.get("protocol") == record.protocol

    def test_hosts_reside_in_their_as(self, universe):
        db = universe.topology.asn_db
        for ip, host in list(universe.hosts.items())[:300]:
            assert db.asn_of(ip) == host.asn

    def test_generation_is_deterministic(self):
        config = UniverseConfig(host_count=300, seed=9,
                                topology=TopologyConfig(as_count=4))
        first = generate_universe(config)
        second = generate_universe(config)
        assert set(first.real_service_pairs()) == set(second.real_service_pairs())

    def test_different_seeds_differ(self):
        base = dict(host_count=300, topology=TopologyConfig(as_count=4))
        first = generate_universe(UniverseConfig(seed=1, **base))
        second = generate_universe(UniverseConfig(seed=2, **base))
        assert set(first.real_service_pairs()) != set(second.real_service_pairs())

    def test_pseudo_hosts_have_wide_port_ranges(self, universe):
        pseudo = [h for h in universe.hosts.values() if h.is_pseudo_host()]
        assert pseudo, "universe should contain pseudo-service hosts"
        for host in pseudo:
            lo, hi = host.pseudo_port_range
            assert hi - lo + 1 >= 1000

    def test_middleboxes_exist_and_have_no_services(self, universe):
        middleboxes = [h for h in universe.hosts.values() if h.is_middlebox]
        assert middleboxes
        assert all(not host.services for host in middleboxes)

    def test_port_forwarded_services_have_differing_ttl(self):
        profiles = profiles_by_name()
        config = UniverseConfig(
            host_count=300, seed=3,
            topology=TopologyConfig(as_count=4),
            profiles=(profiles["random_forwarder"],),
            pseudo_host_fraction=0.0, middlebox_fraction=0.0,
        )
        universe = generate_universe(config)
        ttl_spreads = [
            len({record.ttl for record in host.services.values()})
            for host in universe.hosts.values() if len(host.services) >= 2
        ]
        assert any(spread > 1 for spread in ttl_spreads)

    def test_as_specific_ports_differ_across_ases(self):
        profiles = profiles_by_name()
        config = UniverseConfig(
            host_count=600, seed=5,
            topology=TopologyConfig(as_count=6),
            profiles=(profiles["ip_camera"],),
            pseudo_host_fraction=0.0, middlebox_fraction=0.0,
        )
        universe = generate_universe(config)
        # Collect the per-AS port sets; AS-specific bundles must not all map
        # to the same port across different ASes.
        ports_by_asn = {}
        for host in universe.hosts.values():
            ports_by_asn.setdefault(host.asn, set()).update(host.services)
        distinct_high_ports = set()
        for ports in ports_by_asn.values():
            distinct_high_ports.update(p for p in ports if p > 10000)
        assert len(distinct_high_ports) > len(ports_by_asn)


class TestQueries:
    def test_lookup_matches_ground_truth(self, universe):
        ip, port = next(iter(universe.real_service_pairs()))
        record = universe.lookup(ip, port)
        assert record is not None and record.port == port
        assert universe.lookup(ip, 1) is None or (ip, 1) in set(universe.real_service_pairs())

    def test_lookup_dark_address(self, universe):
        assert universe.lookup(1, 80) is None

    def test_syn_ack_consistency(self, universe):
        pairs = list(universe.real_service_pairs())[:200]
        assert all(universe.syn_ack(ip, port) for ip, port in pairs)

    def test_middlebox_syn_acks_everything(self, universe):
        middlebox = next(h for h in universe.hosts.values() if h.is_middlebox)
        assert universe.syn_ack(middlebox.ip, 1)
        assert universe.syn_ack(middlebox.ip, 65535)

    def test_pseudo_responsive_range(self, universe):
        host = next(h for h in universe.hosts.values() if h.is_pseudo_host())
        lo, hi = host.pseudo_port_range
        assert universe.is_pseudo_responsive(host.ip, lo)
        assert universe.is_pseudo_responsive(host.ip, hi)
        if lo > 1:
            assert not universe.is_pseudo_responsive(host.ip, lo - 1)

    def test_port_registry_matches_service_count(self, universe):
        registry = universe.port_registry()
        assert registry.total_services() == universe.service_count()

    def test_ips_on_port_sorted_and_real(self, universe):
        port = universe.port_registry().top_ports(1)[0]
        ips = universe.ips_on_port(port)
        assert ips == sorted(ips)
        assert all(port in universe.hosts[ip].services for ip in ips)

    def test_responders_in_prefix_subset_of_prefix(self, universe):
        port = universe.port_registry().top_ports(1)[0]
        system = universe.topology.systems[0]
        base, length = system.prefixes[0]
        responders = universe.responders_in_prefix(port, base, length)
        assert all(ip_in_prefix(ip, base, length) for ip in responders)
        expected_real = [ip for ip in universe.ips_on_port(port)
                         if ip_in_prefix(ip, base, length)]
        assert set(expected_real) <= set(responders)

    def test_announced_overlap_full_space(self, universe):
        assert universe.announced_overlap(0, 0) == universe.address_space_size()

    def test_announced_overlap_single_as_prefix(self, universe):
        base, length = universe.topology.systems[0].prefixes[0]
        assert universe.announced_overlap(base, length) == 2 ** (32 - length)

    def test_announced_overlap_outside_space(self, universe):
        assert universe.announced_overlap(200 << 24, 16) == 0

    def test_describe_keys(self, universe):
        description = universe.describe()
        assert {"hosts", "real_services", "ports_in_use", "pseudo_hosts",
                "middleboxes", "autonomous_systems", "address_space"} <= set(description)
