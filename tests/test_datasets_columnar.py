"""Columnar ground-truth datasets: batch edge cases and the object oracle.

The dataset builders now fold the universe's service records straight into
``ObservationBatch`` columns; the object-row API (``observations``) is a lazy
view and the historical object builder remains the equivalence oracle.  These
tests pin the batch's edge cases (empty, single row, slicing) and a
round-trip property: under port restriction and min-responsive filtering, a
columnar dataset and its object-backed twin stay row-for-row identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.builders import (
    GroundTruthDataset,
    _observation_from_record,
    build_full_dataset,
)
from repro.internet.banners import BannerInterner
from repro.scanner.records import ObservationBatch, ScanObservation


def _observation(ip: int = 1, port: int = 80, protocol: str = "http",
                 features=None, ttl: int = 64) -> ScanObservation:
    return ScanObservation(ip=ip, port=port, protocol=protocol,
                           app_features=features or {"protocol": protocol},
                           ttl=ttl)


class TestObservationBatchEdgeCases:
    def test_empty_batch(self):
        batch = ObservationBatch(banners=BannerInterner())
        assert len(batch) == 0
        assert batch.materialize() == []
        assert batch.pairs() == []
        assert list(batch.iter_rows()) == []

    def test_empty_batch_from_observations(self):
        batch = ObservationBatch.from_observations([])
        assert len(batch) == 0
        assert batch.materialize() == []

    def test_empty_select(self):
        batch = ObservationBatch.from_observations([_observation()])
        empty = batch.select([])
        assert len(empty) == 0
        assert empty.materialize() == []
        # The slice shares the parent's interner and status encoder.
        assert empty.banners is batch.banners
        assert empty.statuses is batch.statuses

    def test_single_row_batch(self):
        obs = _observation(ip=9, port=443, protocol="https",
                           features={"protocol": "https", "tls_cert_org": "X"},
                           ttl=128)
        batch = ObservationBatch.from_observations([obs])
        assert len(batch) == 1
        assert batch.pairs() == [(9, 443)]
        assert batch.row(0) == obs
        assert batch.materialize() == [obs]

    def test_select_reorders_and_repeats_rows(self):
        rows = [_observation(ip=i, port=80 + i) for i in range(4)]
        batch = ObservationBatch.from_observations(rows)
        picked = batch.select([3, 1, 1])
        assert picked.materialize() == [rows[3], rows[1], rows[1]]

    def test_from_observations_interns_equal_banners_once(self):
        features = {"protocol": "http", "http_server": "nginx"}
        rows = [_observation(ip=i, features=dict(features)) for i in range(5)]
        batch = ObservationBatch.from_observations(rows)
        assert len(set(batch.banner_ids)) == 1
        assert len(batch.banners) == 1

    def test_dataset_requires_some_backing(self):
        with pytest.raises(ValueError):
            GroundTruthDataset(name="empty")


class TestColumnarDatasetOracle:
    def test_builder_rows_match_object_oracle(self, universe):
        """Materialized columnar rows == what the object builder produced."""
        dataset = build_full_dataset(universe)
        oracle = [_observation_from_record(record)
                  for record in universe.real_services()]
        assert dataset.observations == oracle
        assert dataset.pairs() == {obs.pair() for obs in oracle}
        assert dataset.service_count() == len(oracle)
        assert dataset.ips() == sorted({obs.ip for obs in oracle})

    def test_derived_datasets_match_object_oracle(self, universe, censys_dataset):
        """Port restriction and the min-responsive filter are column slices
        that round-trip exactly to the object-backed implementations."""
        oracle = GroundTruthDataset(
            name=censys_dataset.name,
            observations=list(censys_dataset.observations),
            port_domain=censys_dataset.port_domain,
            sample_fraction=censys_dataset.sample_fraction,
            address_space_size=censys_dataset.address_space_size,
        )
        ports = list(censys_dataset.port_domain)[:7]
        restricted = censys_dataset.restricted_to_ports(ports)
        assert restricted.observations == \
            oracle.restricted_to_ports(ports).observations
        assert restricted.port_domain == \
            oracle.restricted_to_ports(ports).port_domain
        filtered = censys_dataset.filtered_min_responsive_ips(5)
        assert filtered.observations == \
            oracle.filtered_min_responsive_ips(5).observations
        assert filtered.port_domain == censys_dataset.port_domain

    def test_object_backed_dataset_builds_columns_lazily(self, censys_dataset):
        rows = censys_dataset.observations[:20]
        dataset = GroundTruthDataset(name="obj", observations=rows,
                                     sample_fraction=1.0, address_space_size=100)
        assert dataset.columns().materialize() == rows


#: Small observation pools so duplicate (ip, port) pairs and shared banners
#: actually occur in generated examples.
_observations_strategy = st.lists(
    st.builds(
        ScanObservation,
        ip=st.integers(0, 7),
        port=st.integers(1, 6),
        protocol=st.sampled_from(["http", "ssh"]),
        app_features=st.fixed_dictionaries(
            {"protocol": st.sampled_from(["http", "ssh"])},
            optional={"http_server": st.sampled_from(["a", "b"])},
        ),
        ttl=st.sampled_from([32, 64]),
    ),
    max_size=40,
)


class TestColumnarRoundTripProperty:
    @settings(deadline=None, max_examples=60)
    @given(observations=_observations_strategy,
           allowed=st.sets(st.integers(1, 6), max_size=4),
           minimum=st.integers(1, 4))
    def test_column_slices_round_trip_to_object_oracle(self, observations,
                                                       allowed, minimum):
        columnar = GroundTruthDataset(
            name="c", columns=ObservationBatch.from_observations(observations),
            sample_fraction=1.0, address_space_size=64,
        )
        oracle = GroundTruthDataset(
            name="c", observations=list(observations),
            sample_fraction=1.0, address_space_size=64,
        )
        assert columnar.observations == oracle.observations
        assert columnar.pairs() == oracle.pairs()

        restricted = columnar.restricted_to_ports(sorted(allowed))
        restricted_oracle = oracle.restricted_to_ports(sorted(allowed))
        assert restricted.observations == restricted_oracle.observations
        assert restricted.port_domain == restricted_oracle.port_domain

        filtered = columnar.filtered_min_responsive_ips(minimum)
        filtered_oracle = oracle.filtered_min_responsive_ips(minimum)
        assert filtered.observations == filtered_oracle.observations
        assert filtered.pairs() == filtered_oracle.pairs()

        # Chaining both derivations stays identical too.
        chained = restricted.filtered_min_responsive_ips(minimum)
        chained_oracle = restricted_oracle.filtered_min_responsive_ips(minimum)
        assert chained.observations == chained_oracle.observations


class TestStreamingJsonlLoader:
    """`load_observation_batch` folds JSONL straight into columns; the
    object loader (`load_observations_jsonl`) stays the equivalence oracle."""

    @settings(deadline=None, max_examples=40)
    @given(observations=_observations_strategy)
    def test_streamed_batch_matches_object_oracle(self, observations,
                                                  tmp_path_factory):
        from repro.datasets.io import (
            load_observation_batch,
            load_observations_jsonl,
            save_observations_jsonl,
        )

        path = tmp_path_factory.mktemp("jsonl") / "seed.jsonl"
        save_observations_jsonl(observations, path)
        oracle = load_observations_jsonl(path)
        batch = load_observation_batch(path)
        assert batch.materialize() == oracle
        assert batch.materialize() == \
            ObservationBatch.from_observations(oracle).materialize()

    def test_shared_status_encoder_aligns_ids(self, tmp_path):
        from repro.datasets.io import (
            load_observation_batch,
            save_observations_jsonl,
        )
        from repro.engine.encoding import DictionaryEncoder

        rows = [_observation(ip=1, port=80, protocol="http"),
                _observation(ip=2, port=22, protocol="ssh")]
        path = tmp_path / "seed.jsonl"
        save_observations_jsonl(rows, path)
        statuses = DictionaryEncoder()
        statuses.encode("ssh")  # pre-existing pipeline id space
        batch = load_observation_batch(path, statuses=statuses)
        assert batch.statuses is statuses
        assert batch.status.tolist() == [statuses.encode("http"),
                                         statuses.encode("ssh")]

    def test_blank_lines_are_skipped(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        path.write_text('{"ip": 1, "port": 80, "protocol": "http"}\n\n\n')
        batch = load_observation_batch(path)
        assert len(batch) == 1
        assert batch.ttls.tolist() == [64]  # default ttl, like the oracle

    def test_invalid_json_names_the_line(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        path.write_text('{"ip": 1, "port": 80, "protocol": "http"}\n{oops\n')
        with pytest.raises(ValueError, match=":2: invalid JSON"):
            load_observation_batch(path)

    def test_malformed_record_raises(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        path.write_text('{"ip": 1, "protocol": "http"}\n')
        with pytest.raises(ValueError, match="malformed observation record"):
            load_observation_batch(path)

    def test_out_of_range_port_raises(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        path.write_text('{"ip": 1, "port": 70000, "protocol": "http"}\n')
        with pytest.raises(ValueError, match="invalid port"):
            load_observation_batch(path)

    def test_non_mapping_features_raise(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        path.write_text('{"ip": 1, "port": 80, "protocol": "http", '
                        '"app_features": [1, 2]}\n')
        with pytest.raises(ValueError, match="app_features"):
            load_observation_batch(path)

    def test_equal_banners_intern_once(self, tmp_path):
        from repro.datasets.io import load_observation_batch

        path = tmp_path / "seed.jsonl"
        row = ('{"ip": %d, "port": 80, "protocol": "http", '
               '"app_features": {"title": "same"}}')
        path.write_text("\n".join(row % ip for ip in (1, 2, 3)) + "\n")
        batch = load_observation_batch(path)
        assert len(set(batch.banner_ids.tolist())) == 1
