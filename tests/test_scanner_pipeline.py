"""Integration tests for the end-to-end scan pipeline."""

from __future__ import annotations

import pytest

from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline


class TestSampling:
    def test_sample_fraction_bounds(self, pipeline):
        import random
        with pytest.raises(ValueError):
            pipeline.sample_addresses(0.0, random.Random(0))
        with pytest.raises(ValueError):
            pipeline.sample_addresses(1.5, random.Random(0))

    def test_sample_size_and_membership(self, universe, pipeline):
        import random
        sample = pipeline.sample_addresses(0.01, random.Random(0))
        expected = int(round(universe.address_space_size() * 0.01))
        assert len(sample) == expected
        assert len(set(sample)) == len(sample)
        assert all(universe.topology.asn_db.lookup(ip) is not None for ip in sample[:50])


class TestSeedScan:
    def test_seed_scan_charges_all_port_probes(self, universe, pipeline):
        result = pipeline.seed_scan(sample_fraction=0.002, seed=1)
        sampled = len(result.sampled_ips)
        assert pipeline.ledger.total_probes(ScanCategory.SEED) >= sampled * 65535
        # Every observation corresponds to a real or pseudo responder.
        for obs in result.observations[:50]:
            assert (universe.lookup(obs.ip, obs.port) is not None
                    or universe.is_pseudo_responsive(obs.ip, obs.port))

    def test_seed_scan_port_subset(self, universe, pipeline):
        ports = universe.port_registry().top_ports(5)
        result = pipeline.seed_scan(sample_fraction=0.002, seed=2, ports=ports)
        assert all(obs.port in set(ports) for obs in result.observations)
        sampled = len(result.sampled_ips)
        assert pipeline.ledger.total_probes(ScanCategory.SEED) >= sampled * len(ports)

    def test_seed_scan_filter_toggle(self, universe):
        unfiltered = ScanPipeline(universe).seed_scan(0.01, seed=3, apply_filter=False)
        filtered = ScanPipeline(universe).seed_scan(0.01, seed=3, apply_filter=True)
        assert len(filtered.observations) <= len(unfiltered.observations)
        assert filtered.removed_pseudo_services >= 0

    def test_seed_scan_deterministic_given_seed(self, universe):
        first = ScanPipeline(universe).seed_scan(0.005, seed=4)
        second = ScanPipeline(universe).seed_scan(0.005, seed=4)
        assert ([o.pair() for o in first.observations]
                == [o.pair() for o in second.observations])


class TestPrefixAndPairScans:
    def test_scan_prefix_returns_real_services(self, universe, pipeline):
        port = universe.port_registry().top_ports(1)[0]
        system = universe.topology.systems[0]
        base, length = system.prefixes[0]
        observations = pipeline.scan_prefix(port, (base, length))
        expected = {ip for ip in universe.ips_on_port(port)
                    if universe.topology.asn_db.asn_of(ip) == system.asn}
        assert expected <= {obs.ip for obs in observations} | set()
        assert all(obs.port == port for obs in observations)

    def test_scan_prefix_accepts_subnet_key(self, universe, pipeline):
        from repro.net.ipv4 import subnet_key
        port = universe.port_registry().top_ports(1)[0]
        base, length = universe.topology.systems[0].prefixes[0]
        by_tuple = pipeline.scan_prefix(port, (base, length))
        by_key = pipeline.scan_prefix(port, subnet_key(base, length))
        assert {o.pair() for o in by_tuple} == {o.pair() for o in by_key}

    def test_scan_pairs_only_returns_probed_targets(self, universe, pipeline):
        pairs = list(universe.real_service_pairs())[:30] + [(1, 80), (2, 443)]
        observations = pipeline.scan_pairs(pairs)
        assert {obs.pair() for obs in observations} <= set(pairs)
        # One SYN per pair plus the LZR/ZGrab handshake packets for responders.
        probes = pipeline.ledger.total_probes(ScanCategory.PREDICTION)
        assert len(pairs) <= probes <= len(pairs) * 7

    def test_exhaustive_port_scan_costs_one_full_scan(self, universe):
        fresh = ScanPipeline(universe)
        port = universe.port_registry().top_ports(1)[0]
        observations = fresh.exhaustive_port_scan(port)
        zmap_probes = fresh.ledger.total_probes(ScanCategory.EXHAUSTIVE)
        # ZMap cost is exactly the announced space; LZR/ZGrab handshakes on the
        # responders add a small overhead on top.
        assert zmap_probes >= universe.address_space_size()
        assert zmap_probes <= universe.address_space_size() * 1.2
        assert set(universe.ips_on_port(port)) <= {obs.ip for obs in observations}

    def test_ledger_accumulates_across_calls(self, universe, pipeline):
        port = universe.port_registry().top_ports(1)[0]
        base, length = universe.topology.systems[0].prefixes[0]
        pipeline.scan_prefix(port, (base, length))
        first = pipeline.ledger.total_probes()
        pipeline.scan_pairs(list(universe.real_service_pairs())[:10])
        assert pipeline.ledger.total_probes() > first
