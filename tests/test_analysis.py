"""Tests for the analysis/experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SMALL_SCALE,
    feature_dimensionality,
    format_curve,
    format_table,
    make_censys_dataset,
    make_lzr_dataset,
    make_universe,
    most_predictive_feature_types,
    most_predictive_feature_types_from_run,
    network_feature_predictiveness,
    run_churn_measurement,
    run_coverage_experiment,
    run_ideal_conditions_study,
    run_performance_breakdown,
    run_precision_experiment,
    run_seed_size_sweep,
    run_step_size_sweep,
    run_xgboost_comparison,
)
from repro.analysis.coverage import coverage_summary_rows
from repro.analysis.reporting import format_ratio
from repro.analysis.scenarios import ExperimentScale, run_gps_on_dataset
from repro.engine.parallel import ExecutorConfig
from tests.conftest import TEST_SCALE


class TestScenarios:
    def test_scales_build_consistent_universes(self):
        universe = make_universe(TEST_SCALE, seed=1)
        assert universe.describe()["autonomous_systems"] == TEST_SCALE.as_count

    def test_make_datasets(self, universe, censys_dataset, lzr_dataset):
        assert len(censys_dataset.port_domain) <= TEST_SCALE.censys_top_ports
        assert lzr_dataset.sample_fraction <= TEST_SCALE.lzr_sample_fraction * 1.1

    def test_run_gps_on_dataset_returns_consistent_triple(self, universe, censys_dataset):
        run, pipeline, split = run_gps_on_dataset(universe, censys_dataset,
                                                  seed_fraction=0.05)
        assert run.discovered_pairs()
        assert pipeline.ledger.total_probes() > 0
        assert split.seed_observations

    def test_small_scale_is_defined_sensibly(self):
        assert SMALL_SCALE.host_count < 10_000
        assert isinstance(SMALL_SCALE, ExperimentScale)


class TestCoverageExperiments:
    @pytest.fixture(scope="class")
    def experiment(self, universe, censys_dataset):
        return run_coverage_experiment(universe, censys_dataset, seed_fraction=0.05,
                                       step_size=16)

    def test_gps_curve_nonempty_and_monotonic(self, experiment):
        fractions = [point.fraction for point in experiment.gps_points]
        assert fractions == sorted(fractions)
        assert experiment.final_fraction() > 0.3

    def test_reference_curves_present(self, experiment):
        assert experiment.optimal_points[-1].fraction == pytest.approx(1.0)
        assert experiment.oracle_points[-1].fraction == pytest.approx(1.0)

    def test_savings_and_bandwidth_queries(self, experiment):
        half = experiment.gps_bandwidth_at(0.3)
        assert half is not None and half > 0
        savings = experiment.savings_at(0.3)
        assert savings is None or savings > 0

    def test_summary_rows_render(self, experiment):
        rows = coverage_summary_rows(experiment, targets=(0.3, 0.99))
        assert len(rows) == 2
        assert rows[0][0] == "30%"

    def test_step_size_sweep_tradeoff(self, universe, censys_dataset):
        results = run_step_size_sweep(universe, censys_dataset, seed_fraction=0.05,
                                      step_sizes=(12, 20))
        assert set(results) == {12, 20}
        # A smaller step size (larger prefix) costs more bandwidth overall.
        assert (results[12].gps_points[-1].full_scans
                > results[20].gps_points[-1].full_scans)

    def test_seed_size_sweep_monotone_in_seed_cost(self, universe, censys_dataset):
        results = run_seed_size_sweep(universe, censys_dataset,
                                      seed_fractions=(0.02, 0.08), step_size=16)
        assert results[0.08].gps_points[0].full_scans \
            > results[0.02].gps_points[0].full_scans


class TestPrecisionExperiment:
    def test_precision_experiment_shapes(self, universe, censys_dataset):
        experiment = run_precision_experiment(universe, censys_dataset,
                                              seed_fraction=0.05, step_size=20)
        assert experiment.gps_all and experiment.exhaustive_all
        advantage = experiment.precision_advantage_at(0.2)
        assert advantage is None or advantage > 1.0


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, universe, censys_dataset):
        ports = censys_dataset.port_registry().top_ports(6)
        return run_xgboost_comparison(universe, censys_dataset, ports=ports,
                                      seed_fraction=0.05, step_size=16)

    def test_per_port_entries(self, comparison):
        assert len(comparison.ports) == 6
        for entry in comparison.ports:
            assert entry.gps_prior_full_scans >= 0
            assert entry.xgb_prior_full_scans >= 0
            assert 0.0 <= entry.gps_coverage <= 1.0
            assert 0.0 <= entry.xgb_coverage <= 1.0

    def test_normalized_curves_present(self, comparison):
        assert comparison.gps_normalized_curve
        assert comparison.xgb_normalized_curve

    def test_aggregate_helpers(self, comparison):
        assert comparison.ports_where_gps_cheaper() >= 0
        average = comparison.average_prior_savings()
        assert average is None or average > 0


class TestFeatureAnalysis:
    def test_table1_rows(self, censys_dataset, universe):
        rows = feature_dimensionality(censys_dataset, universe)
        labels = [label for label, _ in rows]
        assert "Protocol" in labels and "IP's ASN" in labels
        assert len(rows) == 25
        counts = dict(rows)
        # Host-unique features have far higher dimensionality than fleet ones.
        assert counts["TLS Cert: Hash"] > counts["TLS Cert: Organization"]

    def test_table3_from_seed_attribution(self, censys_dataset, universe, censys_split):
        shares = most_predictive_feature_types(censys_dataset, universe,
                                               censys_split.seed_observations, top=5)
        assert shares
        assert abs(sum(share.service_share for share in
                       most_predictive_feature_types(censys_dataset, universe,
                                                     censys_split.seed_observations,
                                                     top=1000)) - 1.0) < 1e-6

    def test_table3_from_run_attribution(self, gps_run, censys_dataset):
        result, _ = gps_run
        shares = most_predictive_feature_types_from_run(result, censys_dataset, top=5)
        assert shares
        assert all(0.0 <= share.normalized_share <= 1.0 for share in shares)
        assert shares[0].label().startswith("(Port")

    def test_table4_network_features(self, lzr_dataset, universe):
        shares = network_feature_predictiveness(lzr_dataset, universe)
        assert shares
        kinds = {share.feature_type[1] for share in shares}
        assert kinds <= {"asn", "subnet16", "subnet17", "subnet18", "subnet19",
                         "subnet20", "subnet21", "subnet22", "subnet23"}


class TestPerformanceAndLimits:
    def test_performance_breakdown_rows(self, universe, censys_dataset):
        breakdown = run_performance_breakdown(
            universe, censys_dataset, seed_fraction=0.05, step_size=16,
            executor=ExecutorConfig(backend="thread", workers=2))
        names = [row.name for row in breakdown.rows]
        assert any("seed scan" in name for name in names)
        assert any("PFS" in name for name in names)
        assert any("PRS" in name for name in names)
        assert breakdown.total_wall_seconds() > 0
        assert breakdown.total_full_scans() > 0
        assert breakdown.total_compute_seconds_single_core() > 0
        assert breakdown.speedup() is None or breakdown.speedup() > 0

    def test_ideal_conditions_study(self, censys_dataset):
        study = run_ideal_conditions_study(censys_dataset,
                                           seed_fraction_of_dataset=0.9)
        assert study.points
        assert 0.0 < study.achievable_normalized <= 1.0
        assert study.exhaustive_full_scans == len(censys_dataset.port_domain)

    def test_ideal_conditions_validates_fraction(self, censys_dataset):
        with pytest.raises(ValueError):
            run_ideal_conditions_study(censys_dataset, seed_fraction_of_dataset=1.5)

    def test_churn_measurement(self, universe):
        measurement = run_churn_measurement(universe)
        assert 0.0 < measurement.service_loss < 1.0
        assert 0.0 < measurement.normalized_service_loss < 1.0
        assert measurement.days == 10


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(("a", "bb"), [(1, 2), (30, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])

    def test_format_curve_samples_points(self, universe, censys_dataset):
        experiment = run_coverage_experiment(universe, censys_dataset,
                                             seed_fraction=0.05, step_size=16)
        text = format_curve(experiment.gps_points, label="GPS", max_rows=5)
        assert "GPS" in text
        assert len(text.splitlines()) <= 8

    def test_format_curve_empty(self):
        assert "(empty curve)" in format_curve([], label="x")

    def test_format_ratio(self):
        assert format_ratio(None) == "n/a"
        assert format_ratio(3.14159) == "3.1x"
