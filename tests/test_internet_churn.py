"""Unit tests for the churn model (Section 3 motivation)."""

from __future__ import annotations

import pytest

from repro.internet.churn import ChurnConfig, apply_churn, churn_summary
from repro.internet.topology import TopologyConfig
from repro.internet.universe import UniverseConfig, generate_universe


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(UniverseConfig(
        host_count=800, seed=13, topology=TopologyConfig(as_count=5)))


class TestChurnConfig:
    @pytest.mark.parametrize("kwargs", [
        {"service_loss_rate": -0.1},
        {"service_loss_rate": 1.5},
        {"host_readdress_rate": 2.0},
        {"new_host_rate": -1.0},
        {"days": 0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChurnConfig(**kwargs)


class TestApplyChurn:
    def test_original_universe_unchanged(self, small_universe):
        before = set(small_universe.real_service_pairs())
        apply_churn(small_universe, ChurnConfig(seed=1))
        assert set(small_universe.real_service_pairs()) == before

    def test_zero_churn_preserves_services(self, small_universe):
        config = ChurnConfig(service_loss_rate=0.0, host_readdress_rate=0.0,
                             new_host_rate=0.0, seed=2)
        after = apply_churn(small_universe, config)
        assert set(after.real_service_pairs()) == set(small_universe.real_service_pairs())

    def test_loss_rate_removes_services(self, small_universe):
        config = ChurnConfig(service_loss_rate=0.3, host_readdress_rate=0.0,
                             new_host_rate=0.0, seed=3)
        after = apply_churn(small_universe, config)
        before_count = small_universe.service_count()
        after_count = after.service_count()
        assert after_count < before_count
        # Loss should be in the ballpark of the configured rate.
        assert 0.15 <= 1 - after_count / before_count <= 0.45

    def test_readdressed_hosts_stay_in_their_as(self, small_universe):
        config = ChurnConfig(service_loss_rate=0.0, host_readdress_rate=0.5,
                             new_host_rate=0.0, seed=4)
        after = apply_churn(small_universe, config)
        for ip, host in after.hosts.items():
            assert after.topology.asn_db.asn_of(ip) == host.asn

    def test_new_hosts_added(self, small_universe):
        config = ChurnConfig(service_loss_rate=0.0, host_readdress_rate=0.0,
                             new_host_rate=0.10, seed=5)
        after = apply_churn(small_universe, config)
        assert len(after.hosts) > len(small_universe.hosts)

    def test_churn_is_deterministic(self, small_universe):
        config = ChurnConfig(seed=6)
        first = apply_churn(small_universe, config)
        second = apply_churn(small_universe, config)
        assert set(first.real_service_pairs()) == set(second.real_service_pairs())


class TestChurnSummary:
    def test_no_churn_no_loss(self, small_universe):
        summary = churn_summary(small_universe, small_universe)
        assert summary["service_loss"] == 0.0
        assert summary["normalized_service_loss"] == 0.0

    def test_loss_fractions_in_unit_interval(self, small_universe):
        after = apply_churn(small_universe, ChurnConfig(seed=7))
        summary = churn_summary(small_universe, after)
        assert 0.0 < summary["service_loss"] < 1.0
        assert 0.0 < summary["normalized_service_loss"] < 1.0

    def test_empty_before_universe(self, small_universe):
        empty = apply_churn(small_universe, ChurnConfig(
            service_loss_rate=1.0, new_host_rate=0.0, seed=8))
        summary = churn_summary(empty, small_universe)
        assert summary["service_loss"] == 0.0
