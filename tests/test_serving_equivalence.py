"""Served predictions are bit-identical to the serial one-shot oracle.

The whole value proposition of the serving layer is "same answers, no
per-invocation rebuild": whatever micro-batching, thread hand-offs and
executor backends are in play, every reply must equal the reference
``PredictiveFeatureIndex.predict`` fold over the same observations and known
pairs.  The battery interleaves N concurrent clients issuing point lookups
and bulk predictions against a service, across every runtime executor and a
skewed shard count, and compares each reply against an oracle model built on
the single-core non-engine reference path.  A hypothesis sweep varies the
evidence subsets and known-pair suppression on a shared warm service.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import GPSConfig
from repro.core.predictions import PREDICTION_BATCH_PREFIX_LEN
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import group_pairs
from repro.serving import GPSService, InProcessClient, ServingConfig
from repro.serving.registry import build_prepared_model

#: (runtime executor, worker count, shard count) grids the battery covers.
BACKENDS = (
    ("serial", 0, 0),
    ("thread", 3, 0),
    ("thread", 2, 5),   # more shards than workers: least-loaded placement
    ("pool", 2, 0),
)


@pytest.fixture(scope="module")
def loop():
    """One long-lived event loop: the service under test is loop-affine."""
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


@pytest.fixture(scope="module")
def seed(universe):
    return ScanPipeline(universe).seed_scan(0.05, seed=11)


@pytest.fixture(scope="module")
def oracle(universe, seed):
    """The serial one-shot reference model (non-engine build path)."""
    prepared = build_prepared_model("oracle", ScanPipeline(universe), seed,
                                    GPSConfig())
    assert prepared.resident is None  # truly the single-core path
    return prepared


@pytest.fixture(scope="module")
def warm_service(loop, universe, seed):
    """A serial-backend service kept warm across the property sweep."""
    service = GPSService(ServingConfig(executor="serial",
                                       request_timeout_s=60.0))
    loop.run_until_complete(service.load_model(
        "default", ScanPipeline(universe), seed,
        GPSConfig(use_engine=True, executor="serial")))
    yield service
    loop.run_until_complete(service.close())


def _host_groups(seed, count):
    by_ip = {}
    for obs in seed.observations:
        by_ip.setdefault(obs.ip, []).append(obs)
    return [tuple(rows) for _, rows in sorted(by_ip.items())[:count]]


class TestConcurrentEquivalence:
    @pytest.mark.parametrize("executor,workers,shards", BACKENDS,
                             ids=("serial", "thread3", "thread2-shard5", "pool2"))
    def test_interleaved_clients_match_oracle(self, universe, seed, oracle,
                                              executor, workers, shards):
        """N concurrent clients, interleaved point/bulk, every executor."""
        config = ServingConfig(executor=executor, num_workers=workers,
                               shard_count=shards, max_batch=8,
                               batch_window_s=0.005, request_timeout_s=60.0)
        gps_config = GPSConfig(use_engine=True, executor=executor,
                               num_workers=workers, shard_count=shards)
        groups = _host_groups(seed, 12)

        async def one_client(client, offset):
            """Interleave lookups and a bulk fold over a rotated host slice."""
            rotated = groups[offset:] + groups[:offset]
            replies = []
            for rows in rotated[:6]:
                known = frozenset(obs.pair() for obs in rows[:1])
                reply = await client.lookup("default", rows, known_pairs=known)
                replies.append(("lookup", rows, known, reply))
            flat = tuple(obs for rows in rotated[:4] for obs in rows)
            bulk = await client.bulk_predict("default", flat)
            replies.append(("bulk", flat, frozenset(), bulk))
            return replies

        async def scenario():
            async with GPSService(config) as service:
                await service.load_model("default", ScanPipeline(universe),
                                         seed, gps_config)
                client = InProcessClient(service)
                outcomes = await asyncio.gather(
                    *[one_client(client, offset) for offset in range(8)])
                assert service.stats.max_coalesced > 1  # coalescing happened
                return outcomes

        for replies in asyncio.run(scenario()):
            for kind, rows, known, reply in replies:
                expected = oracle.predict(rows, known_pairs=set(known))
                assert tuple(expected) == reply.predictions, \
                    f"{kind} diverged from the serial oracle"
                if kind == "bulk":
                    assert reply.batches == tuple(group_pairs(
                        (p.pair() for p in expected),
                        PREDICTION_BATCH_PREFIX_LEN))

    def test_scan_job_stream_matches_oracle_plan(self, universe, seed, oracle):
        """A scan job probes exactly the oracle's predictions, in order."""
        async def scenario():
            async with GPSService(ServingConfig(executor="serial")) as service:
                await service.load_model(
                    "default", ScanPipeline(universe), seed,
                    GPSConfig(use_engine=True, executor="serial"))
                client = InProcessClient(service)
                updates = []
                async for update in client.scan("default", batch_size=40,
                                                timeout_s=60.0):
                    updates.append(update)
                return updates

        updates = asyncio.run(scenario())
        expected = oracle.predict(seed.observations,
                                  known_pairs=oracle.seed_pairs())
        assert [u.seq for u in updates] == list(range(len(updates)))
        assert sum(u.pairs_probed for u in updates) == len(expected)
        assert updates[-1].final
        assert all(not u.final for u in updates[:-1])
        # Probe counts only ever grow, and every increment charges them.
        probes = [u.cumulative_probes for u in updates]
        assert probes == sorted(probes)


class TestPropertyEquivalence:
    """Hypothesis sweep: arbitrary evidence slices and suppression sets."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_lookup_matches_oracle_on_any_evidence(self, loop, seed, oracle,
                                                   warm_service, data):
        groups = _host_groups(seed, 20)
        rows = data.draw(st.sampled_from(groups))
        take = data.draw(st.integers(min_value=1, max_value=len(rows)))
        evidence = rows[:take]
        suppress = data.draw(st.sets(
            st.sampled_from([obs.pair() for obs in rows]), max_size=3))

        client = InProcessClient(warm_service)
        reply = loop.run_until_complete(
            client.lookup("default", evidence, known_pairs=suppress))
        expected = oracle.predict(evidence, known_pairs=set(suppress))
        assert tuple(expected) == reply.predictions
