"""The stdlib HTTP adapter and the ``serve`` CLI surface.

A real localhost round-trip (ephemeral port, threaded server) over every
endpoint: the JSON payloads must carry exactly what the in-process service
returns, typed errors must map to their HTTP status codes, and the scan
stream must arrive as NDJSON lines.  The CLI tests only exercise the parser
wiring -- ``serve`` blocks forever by design, so its handler is covered via
the adapter it delegates to.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import build_parser
from repro.core.config import GPSConfig
from repro.net.ipv4 import format_ip
from repro.scanner.pipeline import ScanPipeline
from repro.serving import ServingConfig
from repro.serving.http import ServiceHost, make_http_server


@pytest.fixture(scope="module")
def seed(universe):
    return ScanPipeline(universe).seed_scan(0.05, seed=31)


@pytest.fixture(scope="module")
def server(universe, seed):
    """One warm host + bound HTTP server shared by the whole module."""
    host = ServiceHost(ServingConfig(executor="serial", request_timeout_s=60.0))
    host.call(host.service.load_model(
        "default", ScanPipeline(universe), seed,
        GPSConfig(use_engine=True, executor="serial")))
    httpd = make_http_server(host)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}", host, seed
    httpd.shutdown()
    httpd.server_close()
    host.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.load(resp)


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    return urllib.request.urlopen(request, timeout=60)


class TestEndpoints:
    def test_healthz_and_models(self, server):
        base, _, _ = server
        status, body = _get(base + "/healthz")
        assert status == 200
        assert body == {"status": "ok", "models": ["default"]}
        status, body = _get(base + "/models")
        assert status == 200
        (row,) = body["models"]
        assert row["name"] == "default"
        assert row["seed_services"] > 0 and row["resident_shards"] is True

    def test_lookup_matches_in_process_reply(self, server):
        base, host, seed = server
        ip = seed.observations[0].ip
        expected = host.call(host.service.lookup_ip("default", ip))
        status, body = _get(f"{base}/lookup?model=default&ip={format_ip(ip)}")
        assert status == 200
        assert body["model"] == "default"
        assert body["predictions"] == [
            {"ip": format_ip(p.ip), "port": p.port,
             "probability": p.probability, "predictor": list(p.predictor)}
            for p in expected.predictions]

    def test_lookup_accepts_integer_addresses(self, server):
        base, _, seed = server
        ip = seed.observations[0].ip
        _, dotted = _get(f"{base}/lookup?model=default&ip={format_ip(ip)}")
        _, raw = _get(f"{base}/lookup?model=default&ip={ip}")
        assert dotted == raw

    def test_predict_bulk(self, server):
        base, _, seed = server
        ips = sorted({obs.ip for obs in seed.observations})[:5]
        with _post(base + "/predict",
                   {"model": "default",
                    "ips": [format_ip(ip) for ip in ips]}) as resp:
            assert resp.status == 200
            body = json.load(resp)
        assert body["model"] == "default"
        assert isinstance(body["predictions"], list)
        assert body["batches"] >= 0

    def test_scan_streams_ndjson(self, server):
        base, _, _ = server
        with _post(base + "/scan",
                   {"model": "default", "batch_size": 50}) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            rows = [json.loads(line) for line in resp if line.strip()]
        assert rows, "scan stream produced no updates"
        assert rows[-1]["final"] is True
        assert [row["seq"] for row in rows] == list(range(len(rows)))
        for row in rows:
            assert set(row) == {"job_id", "seq", "pairs_probed", "discovered",
                                "cumulative_probes", "final"}

    def test_stats_counts_served_requests(self, server):
        base, _, _ = server
        status, body = _get(base + "/stats")
        assert status == 200
        assert body["admitted"] >= 1
        assert body["shed"] == 0


class TestErrorMapping:
    def test_unknown_model_is_404(self, server):
        base, _, seed = server
        ip = format_ip(seed.observations[0].ip)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/lookup?model=nope&ip={ip}")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"] == "model_not_found"

    def test_bad_address_is_400(self, server):
        base, _, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/lookup?model=default&ip=not-an-ip")
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["error"] == "invalid_request"

    def test_missing_ip_is_400(self, server):
        base, _, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/lookup?model=default")
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, server):
        base, _, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/nope")
        assert excinfo.value.code == 404

    def test_predict_rejects_non_json_body(self, server):
        base, _, _ = server
        request = urllib.request.Request(
            base + "/predict", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_predict_rejects_unknown_addresses(self, server):
        base, _, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/predict", {"model": "default", "ips": ["0.0.0.1"]})
        assert excinfo.value.code == 400


class TestServeCli:
    def test_parser_accepts_serve(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9999", "--executor", "thread",
             "--workers", "2"])
        assert args.command == "serve"
        assert args.port == 9999 and args.address == "127.0.0.1"
        assert args.executor == "thread" and args.workers == 2
        assert callable(args.func)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8080
        assert args.seed_fraction == 0.05
        assert args.executor is None  # falls back to serial in the handler
