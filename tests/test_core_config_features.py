"""Unit tests for GPS configuration and feature extraction."""

from __future__ import annotations

import pytest

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.features import (
    describe_predictor,
    extract_host_features,
    network_feature_values,
    predictor_family,
    predictor_tuples_for_observation,
)
from repro.net.asn import AsnDatabase, AsnRecord
from repro.net.ipv4 import parse_ip, subnet_key
from repro.scanner.records import ScanObservation


@pytest.fixture()
def asn_db():
    return AsnDatabase([AsnRecord(base=parse_ip("10.1.0.0"), prefix_len=16,
                                  asn=65001, name="TestNet")])


def _obs(ip: int, port: int, **features) -> ScanObservation:
    app = {"protocol": "http"}
    app.update(features)
    return ScanObservation(ip=ip, port=port, protocol=app["protocol"], app_features=app)


class TestConfigs:
    def test_feature_config_rejects_unknown_network_kind(self):
        with pytest.raises(ValueError):
            FeatureConfig(network_feature_kinds=("subnet99",))

    def test_feature_config_requires_some_family(self):
        with pytest.raises(ValueError):
            FeatureConfig(include_transport_only=False, include_app=False,
                          include_network=False, include_app_network=False)

    def test_transport_only_ablation(self):
        ablated = FeatureConfig().transport_only()
        assert ablated.include_transport_only
        assert not ablated.include_app
        assert ablated.app_feature_keys == ()

    @pytest.mark.parametrize("kwargs", [
        {"seed_fraction": 0.0},
        {"seed_fraction": 1.5},
        {"step_size": 40},
        {"probability_cutoff": -1},
        {"max_full_scans": 0},
        {"prediction_batch_size": 0},
        {"port_domain": (0,)},
        {"engine_mode": "vectorized"},
    ])
    def test_gps_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            GPSConfig(**kwargs)

    def test_port_allowed(self):
        config = GPSConfig(port_domain=(80, 443))
        assert config.port_allowed(80)
        assert not config.port_allowed(22)
        assert GPSConfig().port_allowed(12345)


class TestNetworkFeatures:
    def test_asn_and_subnet(self, asn_db):
        ip = parse_ip("10.1.2.3")
        values = network_feature_values(ip, asn_db, ("asn", "subnet16", "subnet20"))
        assert ("asn", 65001) in values
        assert ("subnet16", subnet_key(ip, 16)) in values
        assert ("subnet20", subnet_key(ip, 20)) in values

    def test_unknown_asn_skipped(self, asn_db):
        values = network_feature_values(parse_ip("192.168.0.1"), asn_db,
                                        ("asn", "subnet16"))
        assert all(kind != "asn" for kind, _ in values)

    def test_missing_asn_db(self):
        assert network_feature_values(1, None, ("asn",)) == []

    def test_unknown_kind_rejected(self, asn_db):
        with pytest.raises(ValueError):
            network_feature_values(1, asn_db, ("bogus",))


class TestPredictorTuples:
    def test_all_four_families_emitted(self, asn_db):
        obs = _obs(parse_ip("10.1.2.3"), 80, http_server="nginx")
        net = network_feature_values(obs.ip, asn_db, ("asn",))
        tuples = predictor_tuples_for_observation(obs, net, FeatureConfig())
        families = {predictor_family(t) for t in tuples}
        assert families == {"P", "PA", "PN", "PAN"}

    def test_tuples_embed_port(self, asn_db):
        obs = _obs(parse_ip("10.1.2.3"), 8080, http_server="nginx")
        net = network_feature_values(obs.ip, asn_db, ("asn",))
        tuples = predictor_tuples_for_observation(obs, net, FeatureConfig())
        assert all(t[1] == 8080 for t in tuples)

    def test_empty_feature_values_ignored(self, asn_db):
        obs = ScanObservation(ip=parse_ip("10.1.2.3"), port=80, protocol="http",
                              app_features={"protocol": "http", "http_server": ""})
        tuples = predictor_tuples_for_observation(obs, [], FeatureConfig())
        assert ("PA", 80, "http_server", "") not in tuples

    def test_family_toggles(self, asn_db):
        obs = _obs(parse_ip("10.1.2.3"), 80, http_server="nginx")
        net = network_feature_values(obs.ip, asn_db, ("asn",))
        config = FeatureConfig(include_app=False, include_app_network=False)
        tuples = predictor_tuples_for_observation(obs, net, config)
        assert {predictor_family(t) for t in tuples} == {"P", "PN"}

    def test_describe_predictor_renderings(self):
        assert describe_predictor(("P", 80)) == "(Port 80)"
        assert "ssh_banner" in describe_predictor(("PA", 22, "ssh_banner", "x"))
        assert "asn" in describe_predictor(("PN", 22, "asn", 65001))
        assert "asn" in describe_predictor(("PAN", 22, "k", "v", "asn", 65001))


class TestExtractHostFeatures:
    def test_grouping_by_host(self, asn_db):
        observations = [
            _obs(parse_ip("10.1.2.3"), 80, http_server="nginx"),
            _obs(parse_ip("10.1.2.3"), 443, http_server="nginx"),
            _obs(parse_ip("10.1.9.9"), 22),
        ]
        hosts = extract_host_features(observations, asn_db, FeatureConfig())
        assert set(hosts) == {parse_ip("10.1.2.3"), parse_ip("10.1.9.9")}
        assert hosts[parse_ip("10.1.2.3")].open_ports() == [80, 443]

    def test_net_values_attached_to_host(self, asn_db):
        observations = [_obs(parse_ip("10.1.2.3"), 80)]
        hosts = extract_host_features(observations, asn_db,
                                      FeatureConfig(network_feature_kinds=("asn",)))
        assert hosts[parse_ip("10.1.2.3")].net_values == [("asn", 65001)]

    def test_empty_observations(self, asn_db):
        assert extract_host_features([], asn_db, FeatureConfig()) == {}
