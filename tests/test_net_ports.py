"""Unit and property tests for repro.net.ports."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.ports import (
    MAX_PORT,
    PORT_SERVICE_NAMES,
    PortRegistry,
    XGBOOST_FIGURE4_PORTS,
    assigned_protocol,
    is_valid_port,
)


class TestAssignments:
    def test_well_known_assignments(self):
        assert assigned_protocol(80) == "http"
        assert assigned_protocol(22) == "ssh"
        assert assigned_protocol(7547) == "cwmp"

    def test_unassigned_port_is_unknown(self):
        assert assigned_protocol(49151) == "unknown"

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            assigned_protocol(0)
        with pytest.raises(ValueError):
            assigned_protocol(MAX_PORT + 1)

    def test_is_valid_port_bounds(self):
        assert is_valid_port(1)
        assert is_valid_port(MAX_PORT)
        assert not is_valid_port(0)
        assert not is_valid_port(MAX_PORT + 1)

    def test_figure4_ports_are_19_valid_ports(self):
        assert len(XGBOOST_FIGURE4_PORTS) == 19
        assert all(is_valid_port(port) for port in XGBOOST_FIGURE4_PORTS)

    def test_service_name_table_ports_valid(self):
        assert all(is_valid_port(port) for port in PORT_SERVICE_NAMES)


class TestPortRegistry:
    def test_from_ports_counts(self):
        registry = PortRegistry.from_ports([80, 80, 443, 22, 80])
        assert registry.count(80) == 3
        assert registry.count(443) == 1
        assert registry.count(9999) == 0
        assert registry.total_services() == 5

    def test_from_ports_rejects_invalid(self):
        with pytest.raises(ValueError):
            PortRegistry.from_ports([80, 0])

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            PortRegistry.from_counts({80: -1})

    def test_popularity_order_breaks_ties_by_port(self):
        registry = PortRegistry.from_counts({443: 5, 80: 5, 22: 9})
        assert registry.ports_by_popularity() == [22, 80, 443]

    def test_top_ports(self):
        registry = PortRegistry.from_counts({80: 10, 443: 5, 22: 1})
        assert registry.top_ports(2) == [80, 443]
        assert registry.top_ports(0) == []

    def test_top_ports_rejects_negative(self):
        registry = PortRegistry.from_counts({80: 1})
        with pytest.raises(ValueError):
            registry.top_ports(-1)

    def test_ports_with_min_hosts(self):
        registry = PortRegistry.from_counts({80: 10, 443: 2, 22: 3})
        assert registry.ports_with_min_hosts(3) == [22, 80]

    def test_cumulative_coverage_reaches_one(self):
        registry = PortRegistry.from_counts({80: 6, 443: 3, 22: 1})
        curve = registry.cumulative_coverage()
        assert curve[0] == (80, 0.6)
        assert curve[-1][1] == pytest.approx(1.0)

    def test_cumulative_coverage_empty_registry(self):
        registry = PortRegistry.from_counts({})
        assert registry.cumulative_coverage([80]) == [(80, 0.0)]

    @given(st.lists(st.integers(min_value=1, max_value=MAX_PORT), min_size=1, max_size=200))
    def test_cumulative_coverage_is_monotonic(self, ports):
        registry = PortRegistry.from_ports(ports)
        curve = registry.cumulative_coverage()
        fractions = [fraction for _, fraction in curve]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=1, max_value=MAX_PORT), min_size=1, max_size=200))
    def test_total_services_matches_input_length(self, ports):
        assert PortRegistry.from_ports(ports).total_services() == len(ports)
