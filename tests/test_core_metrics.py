"""Unit and property tests for the evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    bandwidth_savings,
    bandwidth_to_reach,
    coverage_curve,
    fraction_of_services,
    normalized_fraction_of_services,
    per_port_counts,
    precision_curve,
)

pair_strategy = st.tuples(st.integers(1, 50), st.sampled_from([22, 80, 443, 8080]))


class TestFractions:
    def test_fraction_of_services_basic(self):
        truth = {(1, 80), (2, 80), (3, 443)}
        assert fraction_of_services([(1, 80), (9, 9)], truth) == pytest.approx(1 / 3)

    def test_fraction_empty_truth(self):
        assert fraction_of_services([(1, 80)], set()) == 0.0

    def test_normalized_weights_ports_equally(self):
        truth = {(i, 80) for i in range(10)} | {(100, 2323)}
        found = {(i, 80) for i in range(10)}
        # All of port 80 found, none of 2323: normalized = mean(1.0, 0.0).
        assert normalized_fraction_of_services(found, truth) == pytest.approx(0.5)
        assert fraction_of_services(found, truth) == pytest.approx(10 / 11)

    def test_per_port_counts(self):
        counts = per_port_counts([(1, 80), (2, 80), (3, 443)])
        assert counts == {80: 2, 443: 1}

    @given(st.sets(pair_strategy, max_size=80), st.sets(pair_strategy, max_size=80))
    def test_fraction_bounds(self, found, truth):
        assert 0.0 <= fraction_of_services(found, truth) <= 1.0
        assert 0.0 <= normalized_fraction_of_services(found, truth) <= 1.0

    @given(st.sets(pair_strategy, min_size=1, max_size=80))
    def test_perfect_recall_is_one(self, truth):
        assert fraction_of_services(truth, truth) == pytest.approx(1.0)
        assert normalized_fraction_of_services(truth, truth) == pytest.approx(1.0)


class TestCoverageCurve:
    def test_rejects_bad_address_space(self):
        with pytest.raises(ValueError):
            coverage_curve([], set(), 0)

    def test_curve_accumulates(self):
        truth = {(1, 80), (2, 80), (3, 443), (4, 2323)}
        log = [
            (100, [(1, 80)]),
            (200, [(2, 80), (3, 443)]),
            (300, [(9, 9)]),          # not in ground truth
            (400, [(1, 80)]),          # duplicate discovery
        ]
        points = coverage_curve(log, truth, address_space_size=100)
        assert [p.found for p in points] == [1, 3, 3, 3]
        assert points[-1].full_scans == pytest.approx(4.0)
        assert points[1].fraction == pytest.approx(0.75)
        assert points[1].normalized_fraction == pytest.approx((1.0 + 1.0 + 0.0) / 3)

    def test_precision_is_found_per_probe(self):
        truth = {(1, 80)}
        points = coverage_curve([(10, [(1, 80)])], truth, address_space_size=10)
        assert points[0].precision == pytest.approx(0.1)

    @given(st.lists(st.tuples(st.integers(1, 1000),
                              st.lists(pair_strategy, max_size=5)), max_size=20))
    def test_curve_monotonic_in_found(self, raw_log):
        # Make probe counts cumulative and strictly positive.
        log = []
        cumulative = 0
        for probes, pairs in raw_log:
            cumulative += probes
            log.append((cumulative, pairs))
        truth = {pair for _, pairs in log for pair in pairs}
        points = coverage_curve(log, truth, address_space_size=1000)
        found = [p.found for p in points]
        assert found == sorted(found)
        if points and truth:
            assert points[-1].fraction == pytest.approx(1.0)


class TestCurveQueries:
    def _points(self):
        truth = {(i, 80) for i in range(10)}
        log = [(100 * (i + 1), [(i, 80)]) for i in range(10)]
        return coverage_curve(log, truth, address_space_size=100)

    def test_precision_curve_axes(self):
        points = self._points()
        series = precision_curve(points)
        assert series[0][0] == pytest.approx(0.1)
        normalized_series = precision_curve(points, normalized=True)
        assert normalized_series[-1][0] == pytest.approx(1.0)

    def test_bandwidth_to_reach(self):
        points = self._points()
        assert bandwidth_to_reach(points, 0.5) == pytest.approx(5.0)
        assert bandwidth_to_reach(points, 1.0) == pytest.approx(10.0)
        assert bandwidth_to_reach(points, 0.0) == pytest.approx(1.0)

    def test_bandwidth_to_reach_unreachable(self):
        points = self._points()[:3]
        assert bandwidth_to_reach(points, 0.9) is None

    def test_bandwidth_to_reach_validates_target(self):
        with pytest.raises(ValueError):
            bandwidth_to_reach(self._points(), 1.5)

    def test_bandwidth_savings_ratio(self):
        gps = self._points()
        baseline = coverage_curve(
            [(1000 * (i + 1), [(i, 80)]) for i in range(10)],
            {(i, 80) for i in range(10)}, address_space_size=100)
        assert bandwidth_savings(gps, baseline, 0.5) == pytest.approx(10.0)

    def test_bandwidth_savings_undefined_when_unreachable(self):
        gps = self._points()[:2]
        baseline = self._points()
        assert bandwidth_savings(gps, baseline, 0.9) is None
