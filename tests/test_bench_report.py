"""The bench-regression gate: ``benchmarks/bench_report.py``.

CI runs the report with ``--check`` after every benchmark matrix; these
tests prove the gate actually bites -- a seeded floor regression in a
results directory fails the check -- without breaking the committed
baselines.  The committed BENCH_*.json files themselves must pass the
check: they are the floors the next change is judged against.
"""

from __future__ import annotations

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_report", REPO_ROOT / "benchmarks" / "bench_report.py")
bench_report = importlib.util.module_from_spec(_spec)
# dataclasses resolves string annotations through sys.modules, so the
# module must be registered before its body executes.
sys.modules["bench_report"] = bench_report
_spec.loader.exec_module(bench_report)


@pytest.fixture()
def results_dir(tmp_path):
    """A scratch copy of the committed BENCH files, safe to doctor."""
    target = tmp_path / "results"
    target.mkdir()
    for path in REPO_ROOT.glob("BENCH_*.json"):
        shutil.copy(path, target / path.name)
    return target


def _doctor(directory: Path, name: str, mutate) -> None:
    path = directory / name
    document = json.loads(path.read_text())
    mutate(document)
    path.write_text(json.dumps(document))


def _run(results_dir: Path, *extra: str) -> int:
    return bench_report.main([
        "--results-dir", str(results_dir),
        "--baseline-dir", str(REPO_ROOT), *extra])


def test_committed_baselines_pass_the_check(capsys):
    """The committed BENCH files must clear their own floors."""
    assert _run(REPO_ROOT, "--check") == 0
    out = capsys.readouterr().out
    assert "REGRESSED" not in out


def test_seeded_static_floor_regression_fails(results_dir, capsys):
    """Dropping a headline ratio below its static floor fails --check."""
    _doctor(results_dir, "BENCH_engine.json",
            lambda d: d.__setitem__("fused_serial_speedup", 2.0))
    assert _run(results_dir, "--check") == 1
    captured = capsys.readouterr()
    assert "FLOOR REGRESSION" in captured.err
    assert "fused model build vs legacy" in captured.err


def test_seeded_recorded_floor_regression_fails(results_dir):
    """A metric judged against its JSON-recorded floor regresses too."""
    _doctor(results_dir, "BENCH_dataset.json",
            lambda d: d["model_fold"].__setitem__(
                "speedup", d["model_fold"]["floor"] - 0.1))
    assert _run(results_dir, "--check") == 1


def test_without_check_regressions_warn_but_pass(results_dir):
    """The report job renders on every build; only --check gates."""
    _doctor(results_dir, "BENCH_engine.json",
            lambda d: d.__setitem__("fused_serial_speedup", 2.0))
    assert _run(results_dir) == 0


def test_gated_metric_never_fails_when_not_asserted(results_dir):
    """thread_fold below floor with floor_asserted false must not gate
    (single-core machines record the number without asserting it)."""

    def mutate(document):
        document["thread_fold"]["speedup"] = 0.5
        document["thread_fold"]["floor_asserted"] = False

    _doctor(results_dir, "BENCH_engine.json", mutate)
    assert _run(results_dir, "--check") == 0


def test_gated_metric_fails_when_asserted(results_dir):
    """...but the same number on a multi-core leg fails the check."""

    def mutate(document):
        document["thread_fold"]["speedup"] = 0.5
        document["thread_fold"]["floor_asserted"] = True

    _doctor(results_dir, "BENCH_engine.json", mutate)
    assert _run(results_dir, "--check") == 1


def test_missing_section_reports_missing_without_failing(results_dir, capsys):
    """numpy-gated sections legitimately vanish on legs without a wheel."""
    _doctor(results_dir, "BENCH_dataset.json",
            lambda d: d.pop("model_fold"))
    assert _run(results_dir, "--check") == 0
    assert "missing" in capsys.readouterr().out


def test_best_leg_wins_across_matrix_copies(results_dir, tmp_path):
    """With one slow leg and one passing leg, the check passes: a noisy
    shared runner must not fail a speedup a sibling leg demonstrated."""
    slow_leg = results_dir / "leg-slow"
    slow_leg.mkdir()
    shutil.copy(results_dir / "BENCH_engine.json",
                slow_leg / "BENCH_engine.json")
    _doctor(slow_leg, "BENCH_engine.json",
            lambda d: d.__setitem__("fused_serial_speedup", 1.1))
    assert _run(results_dir, "--check") == 0


def test_step_summary_written_when_env_set(results_dir, monkeypatch, tmp_path):
    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert _run(results_dir) == 0
    text = summary.read_text()
    assert "Benchmark regression report" in text
    assert "| benchmark | speedup | floor |" in text


def test_empty_results_directory_is_an_error(tmp_path):
    assert _run(tmp_path / "nothing-here") == 2
