"""Tests for the persistent execution runtime and the sharding layer.

Covers the explicit pool lifecycle (reuse across consecutive plan
executions, idempotent close, worker crash surfacing a clean error, spawn
start method), the stable-hash sharding invariants, and bit-identical
results -- model, priors plan and prediction index -- across the serial,
thread and pool executors on both the stateless-dispatch and
resident-dataset paths.
"""

from __future__ import annotations

import logging
from collections import Counter

import pytest

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.features import extract_host_features
from repro.core.gps import GPS
from repro.core.model import build_model, build_model_with_engine
from repro.core.predictions import (
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import build_priors_plan, build_priors_plan_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.engine.faults import FaultPlan
from repro.engine.parallel import ExecutorConfig, partitioned_group_count
from repro.engine.runtime import (
    RUNTIME_EXECUTORS,
    EngineRuntime,
    PoolExecutor,
    WorkerCrashError,
    WorkerTaskError,
    WorkerTimeoutError,
    _payload_rows,
    default_worker_count,
    lpt_placement,
)
from repro.engine.shard import (
    merge_ordered,
    shard_assignments,
    shard_columns,
    shard_group_columns,
)
from repro.engine.table import Table
from repro.scanner.pipeline import ScanPipeline

BACKENDS = tuple(RUNTIME_EXECUTORS)


@pytest.fixture(scope="module")
def seed_inputs(universe, censys_split):
    """Host features + oracle model/priors/index for the equivalence tests."""
    host_features = extract_host_features(censys_split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    model = build_model(host_features)
    priors = build_priors_plan(host_features, model, 16)
    index = PredictiveFeatureIndex.from_seed(host_features, model)
    return host_features, model, priors, index


class TestRuntimeConstruction:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            EngineRuntime(executor="gpu")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            EngineRuntime(num_workers=-1)

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            EngineRuntime(shard_count=-1)

    def test_defaults(self):
        runtime = EngineRuntime(executor="pool")
        assert runtime.num_workers == default_worker_count()
        assert runtime.shard_count == runtime.num_workers
        assert not runtime.closed
        runtime.close()

    def test_shards_can_outnumber_workers(self):
        with EngineRuntime(executor="pool", num_workers=2, shard_count=5) as runtime:
            runtime.load_shards("k", [{"value_ids": [s]} for s in range(5)])
            merged = Counter()
            for counts in runtime.execute("model_denominators", "k"):
                merged.update(counts)
            assert merged == Counter(range(5))


class TestPoolLifecycle:
    def test_workers_reused_across_executions(self):
        """Consecutive plan executions run on the same worker processes."""
        with EngineRuntime(executor="pool", num_workers=2) as runtime:
            runtime.load_shards("k", [{}, {}])
            first = [pid for pid, _ in runtime.execute("_probe", "k")]
            for _ in range(3):
                again = [pid for pid, _ in runtime.execute("_probe", "k")]
                assert again == first

    def test_close_is_idempotent_and_final(self):
        runtime = EngineRuntime(executor="pool", num_workers=2)
        runtime.map_stateless("count_rows", [[1, 2]])
        runtime.close()
        runtime.close()
        assert runtime.closed
        with pytest.raises(RuntimeError):
            runtime.map_stateless("count_rows", [[1]])

    def test_close_without_start_is_safe(self):
        runtime = EngineRuntime(executor="pool", num_workers=2)
        runtime.close()
        assert runtime.closed

    def test_context_manager_closes(self):
        with EngineRuntime(executor="pool", num_workers=2) as runtime:
            runtime.map_stateless("count_rows", [[1]])
        assert runtime.closed

    def test_worker_crash_surfaces_clear_error(self, monkeypatch):
        """A dying worker raises WorkerCrashError instead of hanging."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        runtime = EngineRuntime(executor="pool", num_workers=2)
        with pytest.raises(WorkerCrashError, match="died"):
            runtime.map_stateless("_crash", [None, None])
        assert runtime.broken
        # The pool is torn down; further use fails fast, close stays clean.
        with pytest.raises(WorkerCrashError):
            runtime.map_stateless("count_rows", [[1]])
        runtime.close()
        runtime.close()

    def test_crash_drill_is_gated(self, monkeypatch):
        """Without the opt-in, the crash task is an ordinary task error."""
        monkeypatch.delenv("REPRO_RUNTIME_CRASH_TEST", raising=False)
        with EngineRuntime(executor="pool", num_workers=1) as runtime:
            with pytest.raises(WorkerTaskError, match="crash drill"):
                runtime.map_stateless("_crash", [None])
            assert not runtime.broken

    def test_task_error_does_not_break_the_pool(self):
        """A raising task surfaces an error but leaves the workers usable."""
        with EngineRuntime(executor="pool", num_workers=2) as runtime:
            with pytest.raises(WorkerTaskError):
                # "run" against a key that was never loaded raises worker-side.
                runtime.execute("model_denominators", "missing-key")
            assert not runtime.broken
            out = runtime.map_stateless("count_rows", [[1, 1]])
            assert out[0] == Counter({1: 2})

    def test_spawn_start_method(self):
        """Workers use the spawn start method (3.10-3.12 compatible)."""
        executor = PoolExecutor(workers=1)
        assert executor._context.get_start_method() == "spawn"
        executor.close()

    def test_unknown_task_rejected_without_dispatch(self):
        with EngineRuntime(executor="pool", num_workers=1) as runtime:
            with pytest.raises(KeyError):
                runtime.execute("no_such_task", "k")
            with pytest.raises(KeyError):
                runtime.map_stateless("no_such_task", [None])

    def test_shard_payload_count_enforced(self):
        with EngineRuntime(executor="serial", shard_count=2) as runtime:
            with pytest.raises(ValueError):
                runtime.load_shards("k", [{}])
            runtime.load_shards("k", [{}, {}])
            with pytest.raises(ValueError):
                runtime.execute("_probe", "k", args_per_shard=[None])

    def test_unload_releases_resident_data(self):
        with EngineRuntime(executor="pool", num_workers=1) as runtime:
            runtime.load_shards("k", [{"value_ids": [1]}])
            runtime.execute("model_denominators", "k")
            runtime.unload("k")
            with pytest.raises(RuntimeError):
                runtime.execute("model_denominators", "k")


def _denominator_fold(runtime, key):
    merged = Counter()
    for counts in runtime.execute("model_denominators", key):
        merged.update(counts)
    return merged


class TestSelfHealing:
    """Supervision: every crash timing window recovers in place, surgically."""

    def test_worker_killed_while_idle_recovers_on_next_dispatch(self):
        """Death with zero outstanding tasks: the next execution heals it."""
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=2) as runtime:
            runtime.load_shards("k", [{"value_ids": [0]}, {"value_ids": [1]}])
            before = [pid for pid, _ in runtime.execute("_probe", "k")]
            backend = runtime._backend
            victim = backend._placements["k"][0]
            process = backend._processes[victim]
            process.kill()
            process.join()
            assert _denominator_fold(runtime, "k") == Counter({0: 1, 1: 1})
            stats = runtime.recovery_stats
            assert stats.crashes_detected == 1 and stats.respawns == 1
            assert stats.reloaded_shards == 1
            after = [pid for pid, _ in runtime.execute("_probe", "k")]
            # The victim's shard answers from a fresh process, the
            # survivor's from the same one -- no full pool rebuild.
            assert after[0] != before[0]
            assert after[1] == before[1]
            assert not runtime.broken

    def test_crash_during_load_shards_recovers(self, monkeypatch):
        """Death mid-load: the coordinator copy re-ships the lost shards."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        plan = FaultPlan(crash_task="load", crash_workers=(0,))
        with EngineRuntime(executor="pool", num_workers=2, shard_count=4,
                           fault_plan=plan) as runtime:
            runtime.load_shards("k", [{"value_ids": [s]} for s in range(4)])
            stats = runtime.recovery_stats
            assert stats.crashes_detected == 1 and stats.respawns == 1
            assert _denominator_fold(runtime, "k") == Counter(range(4))
            assert not runtime.broken

    def test_two_workers_dying_in_one_execution(self, monkeypatch):
        """Both workers die mid-dispatch; both respawn, results intact."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        plan = FaultPlan(crash_task="model_denominators", crash_workers=(0, 1))
        with EngineRuntime(executor="pool", num_workers=2, shard_count=4,
                           fault_plan=plan) as runtime:
            runtime.load_shards("k", [{"value_ids": [s]} for s in range(4)])
            assert _denominator_fold(runtime, "k") == Counter(range(4))
            stats = runtime.recovery_stats
            assert stats.crashes_detected == 2 and stats.respawns == 2
            # Each worker owned two of the four equal shards.
            assert stats.reloaded_shards == 4
            assert not runtime.broken

    def test_recovery_is_bit_identical_and_surgical(self, seed_inputs,
                                                    monkeypatch):
        """A seeded crash mid-model-build: all three Table 2 builds stay
        bit-identical to the serial oracles, and only the dead worker's
        shards are re-loaded (the survivor keeps its process and shards)."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        host_features, model, priors, index = seed_inputs
        plan = FaultPlan(crash_task="model_pairs", crash_workers=(1,))
        with EngineRuntime(executor="pool", num_workers=2, shard_count=5,
                           fault_plan=plan) as runtime:
            dataset = ResidentHostGroups(runtime, host_features, 16)
            before = [pid for pid, _ in runtime.execute("_probe", dataset.key)]
            placement = runtime._backend._placements[dataset.key]
            built = build_model_with_engine(host_features, dataset=dataset)
            assert built.denominators == model.denominators
            assert {k: v for k, v in built.cooccurrence.items() if v} == \
                {k: v for k, v in model.cooccurrence.items() if v}
            assert build_priors_plan_with_engine(host_features, built, 16,
                                                 dataset=dataset) == priors
            rebuilt = build_prediction_index_with_engine(host_features, built,
                                                         dataset=dataset)
            assert rebuilt.entries() == index.entries()
            stats = dataset.recovery_stats
            assert stats.crashes_detected == 1 and stats.respawns == 1
            # Surgical recovery: exactly the dead worker's shards were
            # re-shipped, nothing else (the model sides had not broadcast
            # yet when the crash fired, so no broadcast reload either).
            assert stats.reloaded_shards == placement.count(1)
            assert stats.reloaded_broadcasts == 0
            after = [pid for pid, _ in runtime.execute("_probe", dataset.key)]
            for shard_idx, worker in enumerate(placement):
                assert (after[shard_idx] == before[shard_idx]) == (worker != 1)
            dataset.release()

    def test_exit_after_crash_is_idempotent(self, monkeypatch):
        """__exit__ after an unrecovered crash closes cleanly, repeatedly."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        with pytest.raises(WorkerCrashError, match="died"):
            with EngineRuntime(executor="pool", num_workers=2,
                               max_task_retries=0) as runtime:
                runtime.map_stateless("_crash", [None, None])
        assert runtime.closed
        runtime.close()
        with pytest.raises(RuntimeError):
            runtime.map_stateless("count_rows", [[1]])

    def test_zero_retries_restores_fail_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        runtime = EngineRuntime(executor="pool", num_workers=2,
                                max_task_retries=0)
        with pytest.raises(WorkerCrashError, match="recovery budget"):
            runtime.map_stateless("_crash", [None, None])
        assert runtime.recovery_stats.respawns == 0
        runtime.close()

    def test_task_deadline_flags_wedged_worker(self):
        """A live worker that swallows its reply trips the task deadline."""
        plan = FaultPlan(drop_reply_task="_probe", drop_reply_workers=(0,))
        with EngineRuntime(executor="pool", num_workers=2,
                           task_deadline_s=0.3, fault_plan=plan) as runtime:
            with pytest.raises(WorkerTimeoutError, match="process dump"):
                runtime.map_stateless("_probe", [None, None])
            assert runtime.broken

    def test_execution_deadline_bounds_a_dispatch(self):
        plan = FaultPlan(slow_task="count_rows", slow_workers=(0,),
                         slow_seconds=30.0)
        with EngineRuntime(executor="pool", num_workers=2,
                           execution_deadline_s=0.3,
                           fault_plan=plan) as runtime:
            with pytest.raises(WorkerTimeoutError, match="deadline"):
                runtime.map_stateless("count_rows", [[1], [2]])
            assert runtime.broken

    def test_injected_task_error_does_not_break_the_pool(self):
        plan = FaultPlan(error_task="count_rows", error_workers=(1,))
        with EngineRuntime(executor="pool", num_workers=2,
                           fault_plan=plan) as runtime:
            with pytest.raises(WorkerTaskError, match="injected fault"):
                runtime.map_stateless("count_rows", [[1], [2]])
            assert not runtime.broken
            # The planned occurrence has passed; the next dispatch is clean.
            assert runtime.map_stateless("count_rows", [[1], [2]]) == \
                [Counter({1: 1}), Counter({2: 1})]

    def test_fault_crash_requires_env_gate(self, monkeypatch):
        """A crash plan without the opt-in is an ordinary task error."""
        monkeypatch.delenv("REPRO_RUNTIME_CRASH_TEST", raising=False)
        plan = FaultPlan(crash_task="count_rows")
        with EngineRuntime(executor="pool", num_workers=1,
                           fault_plan=plan) as runtime:
            with pytest.raises(WorkerTaskError,
                               match="REPRO_RUNTIME_CRASH_TEST"):
                runtime.map_stateless("count_rows", [[1]])
            assert not runtime.broken

    def test_supervision_events_are_logged(self, monkeypatch, caplog):
        """Recovery narrates itself on the runtime logger, off by default."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        plan = FaultPlan(crash_task="count_rows")
        with caplog.at_level(logging.INFO, logger="repro.engine.runtime"):
            with EngineRuntime(executor="pool", num_workers=1,
                               fault_plan=plan) as runtime:
                assert runtime.map_stateless("count_rows", [[1]]) == \
                    [Counter({1: 1})]
        text = "\n".join(record.getMessage() for record in caplog.records)
        for kind in ("worker_crash", "respawn", "redispatch", "retry_backoff"):
            assert f"kind='{kind}'" in text

    def test_runtime_validates_supervision_knobs(self):
        with pytest.raises(ValueError):
            EngineRuntime(max_task_retries=-1)
        with pytest.raises(ValueError):
            EngineRuntime(task_deadline_s=0)
        with pytest.raises(ValueError):
            EngineRuntime(execution_deadline_s=-1.0)
        with pytest.raises(TypeError):
            EngineRuntime(fault_plan="chaos")

    def test_in_process_backends_report_zero_stats(self):
        with EngineRuntime(executor="serial") as runtime:
            runtime.map_stateless("count_rows", [[1]])
            assert runtime.recovery_stats.respawns == 0


class TestShardingLayer:
    def test_assignments_are_hashseed_independent(self):
        # Integers stable-hash to themselves: the layout is fully determined.
        assert shard_assignments([0, 1, 2, 3, 4], 3) == [0, 1, 2, 0, 1]
        assert shard_assignments(["a", "b", "a"], 4)[0] == \
            shard_assignments(["a", "b", "a"], 4)[2]

    def test_single_shard_takes_everything(self):
        assert shard_assignments([5, "x", (1, 2)], 1) == [0, 0, 0]

    def test_shard_columns_partitions_and_aligns(self):
        columns = {"k": [3, 1, 4, 1, 5], "v": ["a", "b", "c", "d", "e"]}
        sharded = shard_columns(columns, "k", 2)
        rows = [(k, v) for shard in sharded.shards
                for k, v in zip(shard["k"], shard["v"])]
        assert sorted(rows) == sorted(zip(columns["k"], columns["v"]))
        # Equal keys land in the same shard (the duplicate key 1 co-locates).
        ones = [s for s in sharded.shards if 1 in s["k"]]
        assert len(ones) == 1 and ones[0]["k"].count(1) == 2

    def test_shard_columns_rejects_misaligned(self):
        with pytest.raises(ValueError):
            shard_columns({"k": [1, 2], "v": [1]}, "k", 2)

    def test_shard_group_columns_rebuilds_local_offsets(self):
        sharded = shard_group_columns(
            assign_keys=[10, 11, 12],
            group_keys=[7, 7, 8],
            member_starts=[0, 2, 3, 5],
            labels=[80, 443, 22, 25, 53],
            value_starts=[0, 1, 2, 3, 4, 5],
            value_ids=[9, 8, 7, 6, 5],
            shard_count=2,
        )
        seen_groups = []
        for shard in sharded.shards:
            assert shard["member_starts"][0] == 0
            assert shard["value_starts"][0] == 0
            assert shard["member_starts"][-1] == len(shard["labels"])
            assert shard["value_starts"][-1] == len(shard["value_ids"])
            assert shard["group_order"] == sorted(shard["group_order"])
            seen_groups.extend(shard["group_order"])
        assert sorted(seen_groups) == [0, 1, 2]
        # Every (group, labels, values) triple survives sharding intact.
        recovered = {}
        for shard in sharded.shards:
            for local, original in enumerate(shard["group_order"]):
                m_lo = shard["member_starts"][local]
                m_hi = shard["member_starts"][local + 1]
                members = []
                for m in range(m_lo, m_hi):
                    v_lo, v_hi = shard["value_starts"][m], shard["value_starts"][m + 1]
                    members.append((shard["labels"][m],
                                    tuple(shard["value_ids"][v_lo:v_hi])))
                recovered[original] = (shard["group_keys"][local], tuple(members))
        assert recovered == {
            0: (7, ((80, (9,)), (443, (8,)))),
            1: (7, ((22, (7,)),)),
            2: (8, ((25, (6,)), (53, (5,)))),
        }

    def test_merge_ordered_restores_global_order(self):
        assert merge_ordered([[(3, "d"), (0, "a")], [(2, "c")], [(1, "b")]]) == \
            ["a", "b", "c", "d"]


class TestLptPlacement:
    def test_balanced_layout_is_round_robin(self):
        """Equal sizes reduce to the historical shard % workers layout."""
        assert lpt_placement([5, 5, 5, 5], 2) == [0, 1, 0, 1]
        assert lpt_placement([1, 1, 1], 3) == [0, 1, 2]

    def test_skewed_shards_spread_across_workers(self):
        # One giant shard: it gets a worker to itself, the rest share.
        placement = lpt_placement([100, 1, 1, 1], 2)
        assert placement[0] == 0
        assert placement[1:] == [1, 1, 1]

    def test_deterministic_and_tie_broken_to_lowest_worker(self):
        sizes = [3, 3, 2, 2, 1]
        assert lpt_placement(sizes, 3) == lpt_placement(sizes, 3)
        # Largest-first with load ties resolved to the lowest worker id.
        assert lpt_placement(sizes, 3) == [0, 1, 2, 2, 0]

    def test_empty_and_invalid(self):
        assert lpt_placement([], 4) == []
        with pytest.raises(ValueError):
            lpt_placement([1], 0)

    def test_payload_rows_counts_list_columns(self):
        payload = {"labels": [1, 2, 3], "value_ids": (4, 5), "group_order": [0],
                   "_derived": "not-a-column"}
        assert _payload_rows(payload) == 6

    def test_pool_routes_shards_by_placement(self):
        """The worker holding a shard is the one LPT assigned it to."""
        payloads = [{"value_ids": list(range(100))}, {"value_ids": [1]},
                    {"value_ids": [2]}, {"value_ids": [3]}]
        placement = lpt_placement([_payload_rows(p) for p in payloads], 2)
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=4) as runtime:
            runtime.load_shards("k", payloads)
            pids = [pid for pid, _ in runtime.execute("_probe", "k")]
            # Shards placed on the same worker answer from the same process,
            # shards placed on different workers from different processes.
            for a in range(4):
                for b in range(4):
                    same = placement[a] == placement[b]
                    assert (pids[a] == pids[b]) == same
            # The heavy shard's worker serves no other shard.
            heavy = placement[0]
            assert placement.count(heavy) == 1

    def test_skewed_resident_results_unchanged(self, seed_inputs):
        """Skewed shard counts (placement != shard % workers) stay
        bit-identical to the serial oracles."""
        host_features, model, priors, index = seed_inputs
        with EngineRuntime(executor="pool", num_workers=2,
                           shard_count=5) as runtime:
            dataset = ResidentHostGroups(runtime, host_features, 16)
            built = build_model_with_engine(host_features, dataset=dataset)
            assert built.denominators == model.denominators
            assert build_priors_plan_with_engine(host_features, built, 16,
                                                 dataset=dataset) == priors
            rebuilt = build_prediction_index_with_engine(host_features, built,
                                                         dataset=dataset)
            assert rebuilt.entries() == index.entries()
            dataset.release()


class TestStatelessRuntimeDispatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partitioned_group_count_matches(self, backend):
        table = Table.from_rows(("a", "b"), [(i % 5, i % 3) for i in range(120)])
        expected = partitioned_group_count(table, ("a", "b"), ExecutorConfig())
        with EngineRuntime(executor=backend, num_workers=2) as runtime:
            assert partitioned_group_count(table, ("a", "b"),
                                           runtime=runtime) == expected

    def test_config_and_runtime_are_exclusive(self):
        table = Table.from_rows(("a",), [(1,)])
        with pytest.raises(ValueError):
            partitioned_group_count(table, ("a",))
        with EngineRuntime() as runtime:
            with pytest.raises(ValueError):
                partitioned_group_count(table, ("a",), ExecutorConfig(),
                                        runtime=runtime)


class TestRuntimeEquivalence:
    """All three engine builds, bit-identical on every backend and path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stateless_paths_match_oracles(self, seed_inputs, backend):
        host_features, model, priors, index = seed_inputs
        with EngineRuntime(executor=backend, num_workers=2) as runtime:
            built = build_model_with_engine(host_features, runtime=runtime)
            assert built.denominators == model.denominators
            assert {k: v for k, v in built.cooccurrence.items() if v} == \
                {k: v for k, v in model.cooccurrence.items() if v}
            assert build_priors_plan_with_engine(host_features, model, 16,
                                                 runtime=runtime) == priors
            rebuilt = build_prediction_index_with_engine(host_features, model,
                                                         runtime=runtime)
            assert rebuilt.entries() == index.entries()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shard_count", [1, 3])
    def test_resident_dataset_matches_oracles(self, seed_inputs, backend,
                                              shard_count):
        host_features, model, priors, index = seed_inputs
        with EngineRuntime(executor=backend, num_workers=2,
                           shard_count=shard_count) as runtime:
            dataset = ResidentHostGroups(runtime, host_features, 16)
            built = build_model_with_engine(host_features, dataset=dataset)
            assert built.denominators == model.denominators
            assert {k: v for k, v in built.cooccurrence.items() if v} == \
                {k: v for k, v in model.cooccurrence.items() if v}
            assert build_priors_plan_with_engine(host_features, built, 16,
                                                 dataset=dataset) == priors
            rebuilt = build_prediction_index_with_engine(host_features, built,
                                                         dataset=dataset)
            assert rebuilt.entries() == index.entries()
            # Consecutive builds reuse the resident shards (the pool path
            # additionally reuses the worker-side derived join payload).
            again = build_model_with_engine(host_features, dataset=dataset)
            assert again.denominators == built.denominators
            dataset.release()
            dataset.release()  # idempotent
            with pytest.raises(RuntimeError):
                dataset.model_counts()

    def test_resident_dataset_step_size_is_checked(self, seed_inputs):
        host_features, model, _, _ = seed_inputs
        with EngineRuntime() as runtime:
            dataset = ResidentHostGroups(runtime, host_features, 16)
            with pytest.raises(ValueError):
                build_priors_plan_with_engine(host_features, model, 20,
                                              dataset=dataset)

    def test_runtime_rejects_legacy_mode(self, seed_inputs):
        host_features, model, _, _ = seed_inputs
        with EngineRuntime() as runtime:
            with pytest.raises(ValueError):
                build_model_with_engine(host_features, mode="legacy",
                                        runtime=runtime)
            with pytest.raises(ValueError):
                build_priors_plan_with_engine(host_features, model, 16,
                                              mode="legacy", runtime=runtime)
            with pytest.raises(ValueError):
                build_prediction_index_with_engine(host_features, model,
                                                   mode="legacy", runtime=runtime)


class TestGPSRuntimeIntegration:
    def test_config_validates_executor_names(self):
        with pytest.raises(ValueError):
            GPSConfig(executor="gpu")
        with pytest.raises(TypeError):
            GPSConfig(executor=42)
        with pytest.raises(ValueError):
            GPSConfig(num_workers=-1)
        with pytest.raises(ValueError):
            GPSConfig(shard_count=-2)

    def test_config_rejects_inert_runtime_executors(self):
        """A runtime executor that would silently do nothing must not validate."""
        with pytest.raises(ValueError, match="use_engine"):
            GPSConfig(executor="pool")
        with pytest.raises(ValueError, match="fused"):
            GPSConfig(use_engine=True, engine_mode="legacy", executor="pool")
        assert GPSConfig(use_engine=True, executor="pool").executor == "pool"

    def test_config_validates_supervision_knobs(self):
        with pytest.raises(ValueError):
            GPSConfig(max_task_retries=-1)
        with pytest.raises(ValueError):
            GPSConfig(task_deadline_s=0.0)
        with pytest.raises(ValueError):
            GPSConfig(execution_deadline_s=-2.0)
        with pytest.raises(TypeError):
            GPSConfig(fault_plan=object())
        plan = FaultPlan(probe_loss_rate=0.1)
        assert GPSConfig(fault_plan=plan).fault_plan is plan

    def test_config_knobs_reach_the_runtime(self, universe):
        plan = FaultPlan(seed=5)
        config = GPSConfig(use_engine=True, executor="pool", num_workers=2,
                           max_task_retries=4, task_deadline_s=30.0,
                           execution_deadline_s=120.0, fault_plan=plan)
        with GPS(ScanPipeline(universe), config) as gps:
            runtime = gps.runtime()
            assert runtime.max_task_retries == 4
            assert runtime.task_deadline_s == 30.0
            assert runtime.execution_deadline_s == 120.0
            assert runtime.fault_plan is plan

    def test_end_to_end_run_survives_seeded_crash(self, universe,
                                                  censys_dataset, censys_split,
                                                  monkeypatch):
        """A FaultPlan killing one worker mid-model-build leaves the whole
        GPS run bit-identical to the per-call engine reference."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")

        def run(**extra):
            pipeline = ScanPipeline(universe)
            config = GPSConfig(seed_fraction=0.05, step_size=16,
                               port_domain=censys_dataset.port_domain,
                               use_engine=True, **extra)
            with GPS(pipeline, config) as gps:
                return gps.run(seed=censys_split.seed_scan_result(),
                               seed_cost_probes=0)

        reference = run()
        plan = FaultPlan(crash_task="model_pairs", crash_workers=(1,))
        chaotic = run(executor="pool", num_workers=2, shard_count=3,
                      fault_plan=plan)
        assert chaotic.priors_plan == reference.priors_plan
        assert [p.pair() for p in chaotic.predictions] == \
            [p.pair() for p in reference.predictions]
        assert chaotic.discovered_pairs() == reference.discovered_pairs()
        assert chaotic.model.denominators == reference.model.denominators

    def test_broken_runtime_is_recreated(self, universe, monkeypatch):
        """After a worker crash, the next runtime() call yields a fresh pool."""
        monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
        config = GPSConfig(use_engine=True, executor="pool", num_workers=2)
        with GPS(ScanPipeline(universe), config) as gps:
            first = gps.runtime()
            with pytest.raises(WorkerCrashError):
                first.map_stateless("_crash", [None, None])
            assert first.broken
            second = gps.runtime()
            assert second is not first and not second.broken
            assert second.map_stateless("count_rows", [[1]]) == [Counter({1: 1})]

    def test_no_runtime_for_per_call_executors(self, universe):
        gps = GPS(ScanPipeline(universe), GPSConfig())
        assert gps.runtime() is None
        gps.close()  # safe no-op

    def test_gps_owns_one_runtime_and_closes_it(self, universe):
        config = GPSConfig(use_engine=True, executor="pool", num_workers=2)
        with GPS(ScanPipeline(universe), config) as gps:
            runtime = gps.runtime()
            assert runtime is not None and not runtime.closed
            assert gps.runtime() is runtime
        assert runtime.closed

    def test_end_to_end_run_matches_per_call_engine(self, universe,
                                                    censys_dataset, censys_split):
        def run(config):
            pipeline = ScanPipeline(universe)
            with GPS(pipeline, config) as gps:
                return gps.run(seed=censys_split.seed_scan_result(),
                               seed_cost_probes=0)

        reference = run(GPSConfig(seed_fraction=0.05, step_size=16,
                                  port_domain=censys_dataset.port_domain,
                                  use_engine=True))
        pooled = run(GPSConfig(seed_fraction=0.05, step_size=16,
                               port_domain=censys_dataset.port_domain,
                               use_engine=True, executor="pool",
                               num_workers=2, shard_count=3))
        assert pooled.priors_plan == reference.priors_plan
        assert [p.pair() for p in pooled.predictions] == \
            [p.pair() for p in reference.predictions]
        assert pooled.discovered_pairs() == reference.discovered_pairs()
        assert pooled.model.denominators == reference.model.denominators

    def test_known_host_prediction_on_runtime(self, universe, censys_dataset,
                                              censys_split):
        """predict_for_known_hosts builds model + index off the resident shards."""
        known = censys_split.test_observations[:50]

        def run(config):
            pipeline = ScanPipeline(universe)
            with GPS(pipeline, config) as gps:
                return gps.predict_for_known_hosts(
                    censys_split.seed_scan_result(), known, scan=False)

        reference = run(GPSConfig(seed_fraction=0.05, step_size=16,
                                  port_domain=censys_dataset.port_domain))
        pooled = run(GPSConfig(seed_fraction=0.05, step_size=16,
                               port_domain=censys_dataset.port_domain,
                               use_engine=True, executor="pool", num_workers=2))
        assert [p.pair() for p in pooled.predictions] == \
            [p.pair() for p in reference.predictions]
