"""Unit tests for priors-scan planning and remaining-service prediction."""

from __future__ import annotations

import pytest

from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model
from repro.core.predictions import PredictiveFeature, PredictiveFeatureIndex
from repro.core.priors import build_priors_plan, plan_bandwidth
from repro.net.ipv4 import parse_ip, subnet_key
from repro.scanner.records import ScanObservation


def _obs(ip: int, port: int, protocol: str = "http", **features) -> ScanObservation:
    app = {"protocol": protocol}
    app.update(features)
    return ScanObservation(ip=ip, port=port, protocol=protocol, app_features=app)


@pytest.fixture()
def camera_fleet():
    """Three /16s of camera-like hosts plus a couple of one-off hosts."""
    observations = []
    for subnet_index in range(3):
        base = parse_ip(f"10.{subnet_index}.0.0")
        for host_index in range(4):
            ip = base + host_index + 1
            observations.append(_obs(ip, 554, protocol="rtsp"))
            observations.append(_obs(ip, 37777, http_server="camera-httpd"))
    observations.append(_obs(parse_ip("10.9.0.1"), 80))  # single-service host
    observations.append(_obs(parse_ip("10.9.0.2"), 80))
    return observations


def _model_and_hosts(observations):
    hosts = extract_host_features(observations, None, FeatureConfig())
    return build_model(hosts), hosts


class TestPriorsPlan:
    def test_invalid_step_size_rejected(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        with pytest.raises(ValueError):
            build_priors_plan(hosts, model, step_size=40)

    def test_single_service_hosts_plan_their_own_port(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=16)
        single_subnet = subnet_key(parse_ip("10.9.0.1"), 16)
        assert any(entry.port == 80 and entry.subnet == single_subnet
                   for entry in plan)

    def test_multi_service_hosts_plan_most_predictive_port(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=16)
        camera_subnet = subnet_key(parse_ip("10.0.0.0"), 16)
        camera_entries = [e for e in plan if e.subnet == camera_subnet]
        # Each camera port is the best predictor of the other, so the plan has
        # one entry per port, each covering the subnet's four target services.
        assert {entry.port for entry in camera_entries} == {554, 37777}
        assert all(entry.coverage == 4 for entry in camera_entries)

    def test_plan_sorted_by_coverage(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=16)
        coverages = [entry.coverage for entry in plan]
        assert coverages == sorted(coverages, reverse=True)

    def test_port_domain_filters_entries(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=16, port_domain=(80,))
        assert all(entry.port == 80 for entry in plan)

    def test_step_size_zero_collapses_subnets(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=0)
        assert len({entry.subnet for entry in plan}) == 1

    def test_describe_and_bandwidth_helpers(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        plan = build_priors_plan(hosts, model, step_size=16)
        assert "/16" in plan[0].describe()
        assert plan_bandwidth(plan, 65536) == len(plan) * 65536
        with pytest.raises(ValueError):
            plan_bandwidth(plan, -1)


class TestPredictiveFeatureIndex:
    def test_from_seed_covers_multi_service_hosts(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        assert len(index) > 0
        predicted_ports = {port for predictor in index.predictors()
                           for port in index.targets_for(predictor)}
        assert {554, 37777} <= predicted_ports

    def test_single_service_hosts_not_in_index(self):
        observations = [_obs(1, 80), _obs(2, 80)]
        model, hosts = _model_and_hosts(observations)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        assert len(index) == 0

    def test_cutoff_excludes_weak_patterns(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        permissive = PredictiveFeatureIndex.from_seed(hosts, model,
                                                      probability_cutoff=0.0)
        strict = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  probability_cutoff=1.1)
        assert len(strict) == 0
        assert len(permissive) >= len(strict)

    def test_port_domain_restricts_targets(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model, port_domain=(554,))
        targets = {port for predictor in index.predictors()
                   for port in index.targets_for(predictor)}
        assert targets == {554}

    def test_entries_sorted_by_probability(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        entries = PredictiveFeatureIndex.from_seed(hosts, model).entries()
        probabilities = [entry.probability for entry in entries]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_predict_new_host_from_banner(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        new_host = parse_ip("10.2.0.99")
        discovered = [_obs(new_host, 554, protocol="rtsp")]
        predictions = index.predict(discovered, None, FeatureConfig())
        assert (new_host, 37777) in {p.pair() for p in predictions}

    def test_predict_excludes_known_pairs(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        new_host = parse_ip("10.2.0.99")
        discovered = [_obs(new_host, 554, protocol="rtsp")]
        predictions = index.predict(discovered, None, FeatureConfig(),
                                    known_pairs={(new_host, 37777)})
        assert (new_host, 37777) not in {p.pair() for p in predictions}

    def test_predict_never_repredicts_source_port(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        new_host = parse_ip("10.2.0.99")
        predictions = index.predict([_obs(new_host, 554, protocol="rtsp")],
                                    None, FeatureConfig())
        assert all(p.port != 554 or p.ip != new_host for p in predictions)

    def test_predictions_ordered_by_probability(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        discovered = [_obs(parse_ip("10.2.0.99"), 554, protocol="rtsp"),
                      _obs(parse_ip("10.9.0.50"), 80)]
        predictions = index.predict(discovered, None, FeatureConfig())
        probabilities = [p.probability for p in predictions]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_duplicate_feature_entries_keep_max_probability(self):
        index = PredictiveFeatureIndex([
            PredictiveFeature(("P", 80), 443, 0.2),
            PredictiveFeature(("P", 80), 443, 0.7),
        ])
        assert index.targets_for(("P", 80))[443] == pytest.approx(0.7)

    def test_predict_batches_groups_the_prediction_list(self, camera_fleet):
        from repro.scanner.records import group_pairs

        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        discovered = [_obs(parse_ip("10.2.0.99"), 554, protocol="rtsp"),
                      _obs(parse_ip("10.9.0.50"), 80)]
        predictions = index.predict(discovered, None, FeatureConfig())
        batches = index.predict_batches(discovered, None, FeatureConfig())
        # Exactly the grouped form of the probability-ordered predictions.
        assert batches == group_pairs((p.pair() for p in predictions), 16)
        flattened = [pair for batch in batches for pair in batch.pairs()]
        assert sorted(flattened) == sorted(p.pair() for p in predictions)

    def test_predict_batches_forwards_known_pairs(self, camera_fleet):
        model, hosts = _model_and_hosts(camera_fleet)
        index = PredictiveFeatureIndex.from_seed(hosts, model)
        new_host = parse_ip("10.2.0.99")
        discovered = [_obs(new_host, 554, protocol="rtsp")]
        batches = index.predict_batches(discovered, None, FeatureConfig(),
                                        known_pairs={(new_host, 37777)})
        assert (new_host, 37777) not in [pair for batch in batches
                                         for pair in batch.pairs()]
