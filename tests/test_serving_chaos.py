"""Chaos-under-load: the serving layer on a runtime with injected faults.

The PR 6 fault plans are seeded and deterministic, so these are repeatable
experiments, not flaky stress tests.  The claims pinned here:

* a worker crash mid-build heals through the runtime's own supervision and
  the served predictions stay bit-identical to the serial oracle;
* while a faulted build is in flight, requests against already-loaded models
  keep completing (the service serves through the incident);
* wedged or slow workers surface as *typed* errors bounded by the configured
  deadlines -- the service never hangs and never leaks a generic exception;
* after a failed build the service remains usable: the next build runs on a
  fresh runtime and subsequent requests succeed.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import GPSConfig
from repro.engine.faults import FaultPlan
from repro.engine.runtime import WorkerTaskError, WorkerTimeoutError
from repro.scanner.pipeline import ScanPipeline
from repro.serving import GPSService, InProcessClient, ServingConfig
from repro.serving.registry import build_prepared_model


@pytest.fixture(scope="module")
def seed(universe):
    return ScanPipeline(universe).seed_scan(0.05, seed=23)


@pytest.fixture(scope="module")
def oracle(universe, seed):
    return build_prepared_model("oracle", ScanPipeline(universe), seed,
                                GPSConfig())


def _host_groups(seed, count):
    by_ip = {}
    for obs in seed.observations:
        by_ip.setdefault(obs.ip, []).append(obs)
    return [tuple(rows) for _, rows in sorted(by_ip.items())[:count]]


def test_worker_crash_mid_build_heals_bit_identically(universe, seed, oracle,
                                                      monkeypatch):
    """A seeded crash during the model build: supervision respawns the dead
    worker, reloads its shards, and the finished model serves predictions
    identical to the serial oracle."""
    monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
    config = ServingConfig(
        executor="pool", num_workers=2, shard_count=4,
        request_timeout_s=60.0,
        fault_plan=FaultPlan(crash_task="model_pairs", crash_workers=(0,)))

    async def scenario():
        async with GPSService(config) as service:
            client = InProcessClient(service)
            # "steady" is built on the non-engine path: it never touches the
            # runtime, so it keeps serving while the chaos build runs.
            await client.load_model("steady", ScanPipeline(universe), seed,
                                    GPSConfig())

            chaos_build = asyncio.ensure_future(client.load_model(
                "chaos", ScanPipeline(universe), seed,
                GPSConfig(use_engine=True, executor="pool",
                          num_workers=2, shard_count=4)))
            during = []
            groups = _host_groups(seed, 6)
            while not chaos_build.done():
                for rows in groups:
                    during.append((rows, await client.lookup("steady", rows)))
                await asyncio.sleep(0)
            await chaos_build

            runtime = service.runtime()
            assert runtime.recovery_stats.crashes_detected >= 1
            assert runtime.recovery_stats.respawns >= 1
            assert not runtime.broken

            after = [(rows, await client.lookup("chaos", rows))
                     for rows in groups]
            return during, after

    during, after = asyncio.run(scenario())
    assert during, "no requests completed while the chaos build ran"
    for rows, reply in during + after:
        assert tuple(oracle.predict(rows)) == reply.predictions


def test_wedged_worker_is_a_typed_error_within_deadline(universe, seed,
                                                        monkeypatch):
    """A worker that swallows its reply trips task_deadline_s: the build
    fails with WorkerTimeoutError (typed, bounded), the service survives."""
    monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
    deadline = 0.5
    config = ServingConfig(
        executor="pool", num_workers=2, task_deadline_s=deadline,
        request_timeout_s=60.0,
        fault_plan=FaultPlan(drop_reply_task="model_denominators",
                             drop_reply_workers=(0,)))

    async def scenario():
        async with GPSService(config) as service:
            client = InProcessClient(service)
            await client.load_model("steady", ScanPipeline(universe), seed,
                                    GPSConfig())
            start = time.monotonic()
            with pytest.raises(WorkerTimeoutError):
                await client.load_model(
                    "chaos", ScanPipeline(universe), seed,
                    GPSConfig(use_engine=True, executor="pool", num_workers=2))
            elapsed = time.monotonic() - start
            # Bounded: deadline plus supervision/teardown slack, not a hang.
            assert elapsed < deadline + 30.0
            # The failed build left no half-registered model behind...
            assert [i.name for i in client.models()] == ["steady"]
            # ...and the service keeps answering.
            (rows,) = _host_groups(seed, 1)
            reply = await client.lookup("steady", rows)
            assert reply.model == "steady"
            return elapsed

    asyncio.run(scenario())


def test_injected_error_fails_one_build_not_the_service(universe, seed,
                                                        oracle, monkeypatch):
    """An injected task exception fails that build with WorkerTaskError; the
    pool is not broken and the retried build serves oracle-identical
    replies."""
    monkeypatch.setenv("REPRO_RUNTIME_CRASH_TEST", "1")
    config = ServingConfig(
        executor="pool", num_workers=2, request_timeout_s=60.0,
        fault_plan=FaultPlan(error_task="model_pairs", error_workers=(1,)))
    gps_config = GPSConfig(use_engine=True, executor="pool", num_workers=2)

    async def scenario():
        async with GPSService(config) as service:
            client = InProcessClient(service)
            with pytest.raises(WorkerTaskError, match="injected fault"):
                await client.load_model("chaos", ScanPipeline(universe),
                                        seed, gps_config)
            assert not service.runtime().broken
            # The planned occurrence has fired; the retry builds cleanly on
            # the *same* warm pool (no respawn needed for a task error).
            await client.load_model("chaos", ScanPipeline(universe), seed,
                                    gps_config)
            groups = _host_groups(seed, 4)
            return [(rows, await client.lookup("chaos", rows))
                    for rows in groups]

    for rows, reply in asyncio.run(scenario()):
        assert tuple(oracle.predict(rows)) == reply.predictions
