"""Equivalence tests for the engine-backed prediction-index build.

``build_prediction_index_with_engine`` is *defined* as producing the same
:class:`~repro.core.predictions.PredictiveFeatureIndex` as the reference
``PredictiveFeatureIndex.from_seed`` -- entry for entry, probabilities
bit-identical, argmax ties broken identically -- for every executor backend.
The tests pin the tie-break ladder explicitly (probability, then support,
then smallest predictor tuple), the min-support/fallback tiers and the
cutoff, plus the bounded network-feature memo that ``predict`` keeps across
GPS rounds.
"""

from __future__ import annotations

import pytest

import repro.core.predictions as predictions_module
from repro.core.config import FeatureConfig
from repro.core.features import HostFeatures, extract_host_features
from repro.core.model import CooccurrenceModel, build_model
from repro.core.predictions import (
    NET_FEATURE_CACHE_MAX,
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
    compile_prediction_index_query,
)
from repro.datasets.split import split_seed_test
from repro.engine.fused import argmax_partner_select
from repro.engine.parallel import ExecutorConfig
from repro.scanner.records import ScanObservation

EXECUTORS = (
    None,
    ExecutorConfig(backend="serial", workers=1),
    ExecutorConfig(backend="thread", workers=3),
    ExecutorConfig(backend="process", workers=2),
)


def _host(ip, ports):
    host = HostFeatures(ip=ip)
    host.ports = {port: list(preds) for port, preds in ports.items()}
    return host


def _model(denominators, cooccurrence):
    model = CooccurrenceModel()
    model.denominators = dict(denominators)
    model.cooccurrence = {p: dict(t) for p, t in cooccurrence.items()}
    return model


def _assert_indices_equal(fused, legacy):
    assert fused.entries() == legacy.entries()
    assert fused.predictors() == legacy.predictors()
    assert len(fused) == len(legacy)


class TestFusedFromSeedEquivalence:
    """Dataset-level fused == legacy, across executors and parameters."""

    @pytest.fixture(scope="class")
    def seed_inputs(self, universe, censys_dataset):
        split = split_seed_test(censys_dataset, seed_fraction=0.1, seed=0)
        hosts = extract_host_features(split.seed_observations,
                                      universe.topology.asn_db, FeatureConfig())
        return hosts, build_model(hosts), censys_dataset.port_domain

    @pytest.mark.parametrize("executor", EXECUTORS,
                             ids=("default", "serial", "thread3", "process2"))
    def test_matches_oracle_across_backends(self, seed_inputs, executor):
        hosts, model, port_domain = seed_inputs
        legacy = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  port_domain=port_domain)
        fused = build_prediction_index_with_engine(hosts, model,
                                                   port_domain=port_domain,
                                                   executor=executor)
        _assert_indices_equal(fused, legacy)

    @pytest.mark.parametrize("min_support", (1, 2, 3))
    def test_matches_oracle_across_min_support(self, seed_inputs, min_support):
        hosts, model, _ = seed_inputs
        legacy = PredictiveFeatureIndex.from_seed(
            hosts, model, min_pattern_support=min_support)
        fused = build_prediction_index_with_engine(
            hosts, model, min_pattern_support=min_support)
        _assert_indices_equal(fused, legacy)

    def test_matches_oracle_with_cutoff(self, seed_inputs):
        hosts, model, _ = seed_inputs
        legacy = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  probability_cutoff=0.3)
        fused = build_prediction_index_with_engine(hosts, model,
                                                   probability_cutoff=0.3)
        _assert_indices_equal(fused, legacy)

    def test_legacy_mode_delegates(self, seed_inputs):
        hosts, model, port_domain = seed_inputs
        legacy = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  port_domain=port_domain)
        delegated = build_prediction_index_with_engine(
            hosts, model, port_domain=port_domain, mode="legacy")
        _assert_indices_equal(delegated, legacy)

    def test_unknown_mode_rejected(self, seed_inputs):
        hosts, model, _ = seed_inputs
        with pytest.raises(ValueError):
            build_prediction_index_with_engine(hosts, model, mode="bigquery")


class TestArgmaxTieBreaks:
    """Handcrafted tie cases: both paths must select the identical winner."""

    def _both(self, hosts, model, **kwargs):
        legacy = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  probability_cutoff=0.0,
                                                  **kwargs)
        fused = build_prediction_index_with_engine(hosts, model,
                                                   probability_cutoff=0.0,
                                                   **kwargs)
        _assert_indices_equal(fused, legacy)
        return fused, legacy

    def test_equal_prob_equal_support_smallest_tuple_wins(self):
        # Both predictors score 0.5 with support 4 for port 443; the encoder
        # sees the lexicographically *larger* tuple first, so first-seen id
        # order disagrees with tuple order on purpose.
        pred_late = ("PA", 80, "b_feature", "x")
        pred_early = ("PA", 80, "a_feature", "x")
        hosts = {1: _host(1, {80: [pred_late, pred_early], 443: []})}
        model = _model({pred_late: 4, pred_early: 4},
                       {pred_late: {443: 2}, pred_early: {443: 2}})
        fused, _ = self._both(hosts, model, min_pattern_support=1)
        assert fused.targets_for(pred_early) == {443: 0.5}
        assert fused.targets_for(pred_late) == {}

    def test_equal_prob_higher_support_wins_over_smaller_tuple(self):
        pred_small = ("PA", 80, "a_feature", "x")  # 1/2, support 2
        pred_big = ("PA", 80, "b_feature", "x")    # 2/4, support 4
        hosts = {1: _host(1, {80: [pred_small, pred_big], 443: []})}
        model = _model({pred_small: 2, pred_big: 4},
                       {pred_small: {443: 1}, pred_big: {443: 2}})
        fused, _ = self._both(hosts, model, min_pattern_support=1)
        assert fused.targets_for(pred_big) == {443: 0.5}
        assert fused.targets_for(pred_small) == {}

    def test_supported_tier_beats_stronger_unsupported_pattern(self):
        # A host-unique pattern reaches probability 1.0 but has support 1;
        # min_pattern_support=2 must prefer the weaker supported pattern.
        unique = ("PA", 80, "tls_cert_hash", "deadbeef")
        shared = ("PA", 80, "http_server", "fleet-httpd")
        hosts = {1: _host(1, {80: [unique, shared], 443: []})}
        model = _model({unique: 1, shared: 10},
                       {unique: {443: 1}, shared: {443: 1}})
        fused, _ = self._both(hosts, model, min_pattern_support=2)
        assert fused.targets_for(shared) == {443: 0.1}
        assert fused.targets_for(unique) == {}

    def test_fallback_to_unsupported_when_no_supported_pattern(self):
        unique = ("PA", 80, "tls_cert_hash", "deadbeef")
        hosts = {1: _host(1, {80: [unique], 443: []})}
        model = _model({unique: 1}, {unique: {443: 1}})
        fused, _ = self._both(hosts, model, min_pattern_support=2)
        assert fused.targets_for(unique) == {443: 1.0}

    def test_three_service_host_cross_member_argmax(self):
        # Port 22's predictor is the strongest for 443; port 80's for 8080.
        p22 = ("P", 22)
        p80 = ("P", 80)
        p443 = ("P", 443)
        hosts = {1: _host(1, {22: [p22], 80: [p80], 443: [p443]})}
        model = _model(
            {p22: 10, p80: 10, p443: 10},
            {p22: {443: 9, 80: 1}, p80: {443: 5, 22: 2}, p443: {80: 3}},
        )
        fused, _ = self._both(hosts, model, min_pattern_support=1)
        assert fused.targets_for(p22) == {443: 0.9}
        assert fused.targets_for(p443) == {80: 0.3}
        assert fused.targets_for(p80) == {22: 0.2}

    def test_port_domain_filters_targets_not_candidates(self):
        # 443 is outside the domain: no entry targets it, but the service on
        # 443 still supplies the predictor for the in-domain port 80.
        p443 = ("P", 443)
        p80 = ("P", 80)
        hosts = {1: _host(1, {443: [p443], 80: [p80]})}
        model = _model({p443: 4, p80: 4}, {p443: {80: 2}, p80: {443: 2}})
        fused, _ = self._both(hosts, model, port_domain=(80,),
                              min_pattern_support=1)
        assert fused.targets_for(p443) == {80: 0.5}
        assert fused.targets_for(p80) == {}

    def test_cutoff_applies_identically(self):
        p80 = ("P", 80)
        p443 = ("P", 443)
        hosts = {1: _host(1, {80: [p80], 443: [p443]})}
        model = _model({p80: 100, p443: 100}, {p80: {443: 1}, p443: {80: 1}})
        legacy = PredictiveFeatureIndex.from_seed(hosts, model,
                                                  probability_cutoff=0.05,
                                                  min_pattern_support=1)
        fused = build_prediction_index_with_engine(hosts, model,
                                                   probability_cutoff=0.05,
                                                   min_pattern_support=1)
        _assert_indices_equal(fused, legacy)
        assert len(fused) == 0

    def test_own_values_never_score_for_their_member(self):
        # Adversarial model: predictor F's count row contains F's own
        # member's label (impossible for real co-occurrence counts, whose
        # tuples embed their port, but the operator must match the oracle
        # for any caller-supplied model).  Without the explicit i != j
        # exclusion, host 1's own F (1/2) would beat G (1/3) for port 80.
        pred_f = ("PA", 80, "http_server", "x")
        pred_g = ("P", 22)
        hosts = {1: _host(1, {80: [pred_f], 22: [pred_g]})}
        model = _model({pred_f: 2, pred_g: 3},
                       {pred_f: {80: 1, 22: 1}, pred_g: {80: 1}})
        fused, _ = self._both(hosts, model, min_pattern_support=1)
        assert fused.targets_for(pred_g) == {80: pytest.approx(1 / 3)}
        assert fused.targets_for(pred_f) == {22: 0.5}

    def test_single_service_hosts_compile_to_no_groups(self):
        hosts = {1: _host(1, {80: [("P", 80)]}),
                 2: _host(2, {80: [("P", 80)]})}
        model = _model({("P", 80): 2}, {})
        plan, _ = compile_prediction_index_query(hosts, model)
        assert len(plan) == 0
        assert argmax_partner_select(plan) == []


class TestBoundedNetFeatureCache:
    """predictions.predict's memo must stay bounded across GPS rounds."""

    @pytest.fixture()
    def index(self):
        return PredictiveFeatureIndex([
            predictions_module.PredictiveFeature(("P", 554), 37777, 0.9),
        ])

    @staticmethod
    def _round(index, ips, config=None):
        observations = [ScanObservation(ip=ip, port=554, protocol="rtsp",
                                        app_features={"protocol": "rtsp"})
                        for ip in ips]
        return index.predict(observations, None, config or FeatureConfig())

    def test_cache_persists_between_rounds(self, index):
        self._round(index, range(10))
        assert len(index._net_cache) == 10
        self._round(index, range(10))
        assert len(index._net_cache) == 10

    def test_cache_never_exceeds_bound(self, index, monkeypatch):
        monkeypatch.setattr(predictions_module, "NET_FEATURE_CACHE_MAX", 16)
        for round_index in range(5):
            self._round(index, range(round_index * 40, round_index * 40 + 40))
            assert len(index._net_cache) <= 16

    def test_eviction_does_not_change_predictions(self, index, monkeypatch):
        ips = list(range(100))
        expected = self._round(PredictiveFeatureIndex(
            [predictions_module.PredictiveFeature(("P", 554), 37777, 0.9)]), ips)
        monkeypatch.setattr(predictions_module, "NET_FEATURE_CACHE_MAX", 8)
        for _ in range(3):
            assert self._round(index, ips) == expected
            assert len(index._net_cache) <= 8

    def test_hot_key_survives_eviction_pressure(self, index, monkeypatch):
        """True LRU: a key that keeps hitting outlives streams of cold keys."""
        monkeypatch.setattr(predictions_module, "NET_FEATURE_CACHE_MAX", 8)
        hot_ip = 10_000
        self._round(index, [hot_ip])
        cold = iter(range(1_000_000, 2_000_000))
        for _ in range(10):
            # Refresh the hot key, then shove in almost a full cache of cold
            # keys; under FIFO the hot key would age out regardless of hits,
            # under LRU the refresh keeps it resident every time.
            self._round(index, [hot_ip])
            self._round(index, [next(cold) for _ in range(7)])
            assert hot_ip in index._net_cache
            assert len(index._net_cache) <= 8

    def test_lru_evicts_stalest_not_newest(self, index, monkeypatch):
        monkeypatch.setattr(predictions_module, "NET_FEATURE_CACHE_MAX", 4)
        self._round(index, [1, 2, 3, 4])
        self._round(index, [1])          # 2 is now the least recently used
        self._round(index, [5])          # evicts 2
        assert 1 in index._net_cache
        assert 2 not in index._net_cache
        assert set(index._net_cache) == {1, 3, 4, 5}

    def test_cache_rekeys_on_feature_kind_change(self, index):
        wide = FeatureConfig(network_feature_kinds=("subnet16",))
        narrow = FeatureConfig(network_feature_kinds=("subnet23",))
        self._round(index, range(5), wide)
        first_kinds = index._net_cache_kinds
        self._round(index, range(5), narrow)
        assert index._net_cache_kinds == ("subnet23",)
        assert first_kinds != index._net_cache_kinds
        # A fresh index with the narrow config must agree (no stale reuse).
        fresh = PredictiveFeatureIndex(
            [predictions_module.PredictiveFeature(("P", 554), 37777, 0.9)])
        assert self._round(index, range(5), narrow) == \
            self._round(fresh, range(5), narrow)

    def test_default_bound_is_large(self):
        assert NET_FEATURE_CACHE_MAX >= 1024


class TestNetFeatureCacheThreadSafety:
    """The memo must survive concurrent predict() calls (the serving layer
    folds lookups on a thread pool; pre-lock, a get/move_to_end racing a
    concurrent eviction raised KeyError and could corrupt the OrderedDict)."""

    def _index(self):
        return PredictiveFeatureIndex([
            predictions_module.PredictiveFeature(("P", 554), 37777, 0.9),
        ])

    @staticmethod
    def _observations(ips):
        return [ScanObservation(ip=ip, port=554, protocol="rtsp",
                                app_features={"protocol": "rtsp"})
                for ip in ips]

    def test_concurrent_predicts_under_eviction_pressure(self, monkeypatch):
        """Hammer: many threads, overlapping keys, cache far smaller than the
        working set, so hits, inserts and evictions interleave constantly."""
        from concurrent.futures import ThreadPoolExecutor

        monkeypatch.setattr(predictions_module, "NET_FEATURE_CACHE_MAX", 8)
        index = self._index()
        config = FeatureConfig()
        # Overlapping slices: every thread shares keys with its neighbours.
        slices = [list(range(start, start + 48)) for start in range(0, 128, 16)]
        expected = {}
        for ips in slices:
            key = tuple(ips)
            if key not in expected:
                expected[key] = self._index().predict(
                    self._observations(ips), None, config)

        def hammer(ips):
            rows = []
            for _ in range(25):
                rows.append(index.predict(self._observations(ips), None, config))
            return ips, rows

        with ThreadPoolExecutor(max_workers=8) as pool:
            for ips, rows in pool.map(hammer, slices * 2):
                for row in rows:
                    assert row == expected[tuple(ips)]
        assert len(index._net_cache) <= 8

    def test_concurrent_predicts_correct_at_large_capacity(self):
        """With room for everything, concurrency must not change results or
        lose cache entries."""
        from concurrent.futures import ThreadPoolExecutor

        index = self._index()
        config = FeatureConfig()
        ips = list(range(200))
        expected = self._index().predict(self._observations(ips), None, config)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(
                lambda _: index.predict(self._observations(ips), None, config),
                range(12)))
        assert all(result == expected for result in results)
        assert len(index._net_cache) == len(ips)
