"""The telemetry subsystem: registry, tracer, event bus, and its surfaces.

Four layers of assurance, mirroring the subsystem's promises:

* the instruments themselves (exact totals under concurrent writers,
  Prometheus ``le`` bucket semantics, a pinned golden exposition document);
* the span tracer (parent/child nesting, JSON round-trip, the span budget);
* **equivalence** -- enabling telemetry changes no model, priors plan,
  prediction list or discovery log bit, and no serving reply;
* the operator surfaces (``GET /metrics`` validity, the enriched
  ``GET /stats``, ``--trace-out`` on the CLI).
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.engine.runtime import RUNTIME_EVENT_BUS, RuntimeEvent
from repro.scanner.pipeline import ScanPipeline
from repro.serving.schemas import PointLookup
from repro.serving.service import GPSService, ServingConfig
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    Tracer,
    telemetry_or_null,
)
from repro.telemetry.events import EventBus


class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Total.", endpoint="x")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        # Get-or-create: the same (name, labels) resolves the same child.
        assert registry.counter("requests_total", endpoint="x") is counter
        gauge = registry.gauge("pending")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing_total")

    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total")
        counter.inc(100)
        assert counter.value == 0
        assert registry.render_prometheus() == ""
        assert registry.as_dict() == {}

    def test_exact_totals_under_concurrent_writers(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 5000

        def writer() -> None:
            for _ in range(per_thread):
                registry.counter("hits_total", worker="w").inc()
                registry.histogram("lat_seconds", buckets=(0.5,)).observe(0.1)

        pool = [threading.Thread(target=writer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert registry.counter("hits_total", worker="w").value \
            == threads * per_thread
        histogram = registry.histogram("lat_seconds", buckets=(0.5,))
        assert histogram.count == threads * per_thread
        assert histogram.sum == pytest.approx(0.1 * threads * per_thread)


class TestHistogramBuckets:
    def test_le_semantics_and_cumulative_counts(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.05, 0.1, 0.7, 2.0, 50.0):
            histogram.observe(value)
        # ``le`` is inclusive: 0.01 lands in the 0.01 bucket, 0.1 in 0.1's.
        assert histogram.cumulative_buckets() == [
            ("0.01", 2), ("0.1", 4), ("1", 5), ("+Inf", 7)]
        assert histogram.count == 7
        assert histogram.sum == pytest.approx(52.865)

    def test_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


class TestPrometheusExposition:
    def test_golden_document(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Total requests.",
                         endpoint="lookup").inc(3)
        registry.gauge("pending", "In flight.").set(2)
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       buckets=(0.1, 1.0), endpoint="lookup")
        for value in (0.05, 0.1, 0.5, 3.0):
            histogram.observe(value)
        assert registry.render_prometheus() == (
            "# HELP latency_seconds Latency.\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{endpoint="lookup",le="0.1"} 2\n'
            'latency_seconds_bucket{endpoint="lookup",le="1"} 3\n'
            'latency_seconds_bucket{endpoint="lookup",le="+Inf"} 4\n'
            'latency_seconds_sum{endpoint="lookup"} 3.65\n'
            'latency_seconds_count{endpoint="lookup"} 4\n'
            "# HELP pending In flight.\n"
            "# TYPE pending gauge\n"
            "pending 2\n"
            "# HELP requests_total Total requests.\n"
            "# TYPE requests_total counter\n"
            'requests_total{endpoint="lookup"} 3\n'
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", task='we"ird\nname').inc()
        assert r'task="we\"ird\nname"' in registry.render_prometheus()


class TestTracer:
    def test_nesting_attrs_and_json_roundtrip(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            with tracer.span("model.build", hosts=3) as build:
                build.set("pairs", 7)
            with tracer.span("predict"):
                pass
            run.set("ok", True)
        (root,) = tracer.roots
        assert root.name == "run" and root.attrs == {"ok": True}
        assert [child.name for child in root.children] \
            == ["model.build", "predict"]
        assert root.children[0].attrs == {"hosts": 3, "pairs": 7}
        assert root.duration_s >= root.children[0].duration_s >= 0

        rebuilt = Tracer.spans_from_json(tracer.to_json())
        assert [span.name for span in rebuilt] == ["run"]
        assert rebuilt[0].children[0].attrs == {"hosts": 3, "pairs": 7}
        assert rebuilt[0].duration_s == pytest.approx(root.duration_s)

    def test_exception_annotates_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.roots[0].attrs["error"] == "RuntimeError"

    def test_span_budget_drops_past_cap(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert tracer.span_count() == 2
        assert tracer.dropped == 3
        assert len(tracer.roots) == 2

    def test_flat_events_depth(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [(e["name"], e["depth"]) for e in tracer.flat_events()] \
            == [("a", 0), ("b", 1)]


class TestTelemetryFacade:
    def test_sampling_thins_observations_only(self):
        telemetry = Telemetry(sample_every=3)
        assert sum(telemetry.sampled() for _ in range(9)) == 3
        assert NULL_TELEMETRY.sampled() is False
        assert Telemetry().sampled() is True

    def test_null_normalisation(self):
        assert telemetry_or_null(None) is NULL_TELEMETRY
        live = Telemetry()
        assert telemetry_or_null(live) is live
        with pytest.raises(ValueError):
            Telemetry(sample_every=0)


class TestEventBus:
    def test_publish_subscribe_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)  # deduplicated
        assert len(bus) == 1
        bus.publish("one")
        bus.unsubscribe(seen.append)
        bus.publish("two")
        assert seen == ["one"]

    def test_sink_exceptions_are_swallowed(self):
        bus = EventBus()
        seen = []

        def bad(_event) -> None:
            raise RuntimeError("sink bug")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.publish("evt")
        assert seen == ["evt"]

    def test_verbose_runtime_sink_prints_bus_events(self, capsys):
        """Satellite: ``--verbose-runtime`` rides the runtime event bus."""
        import argparse

        from repro.cli import _configure_runtime_events, _print_runtime_event

        args = argparse.Namespace(verbose_runtime=True)
        _configure_runtime_events(args)
        try:
            event = RuntimeEvent(kind="worker_crash", worker_id=3,
                                 detail="exit code -9")
            RUNTIME_EVENT_BUS.publish(event)
        finally:
            RUNTIME_EVENT_BUS.unsubscribe(_print_runtime_event)
        err = capsys.readouterr().err
        assert "[repro.engine.runtime]" in err
        assert "worker_crash" in err and "exit code -9" in err


class TestEquivalence:
    """Telemetry must observe, never perturb."""

    @pytest.fixture(scope="class")
    def run_pair(self, universe):
        def run_once(telemetry):
            pipeline = ScanPipeline(universe, telemetry=telemetry)
            config = GPSConfig(seed_fraction=0.05, step_size=16,
                               use_engine=True, executor="serial")
            with GPS(pipeline, config, telemetry=telemetry) as gps:
                result = gps.run()
            return result, pipeline

        return run_once(None), run_once(Telemetry())

    def test_gps_outputs_identical_with_telemetry_on(self, run_pair):
        (off, off_pipeline), (on, on_pipeline) = run_pair
        assert on.model == off.model
        assert on.priors_plan == off.priors_plan
        assert on.predictions == off.predictions
        assert on.discovered_pairs() == off.discovered_pairs()
        assert on.log_as_tuples() == off.log_as_tuples()
        assert on_pipeline.ledger == off_pipeline.ledger

    def test_telemetry_run_recorded_phases_and_counters(self, run_pair):
        _, (on, on_pipeline) = run_pair
        telemetry = on_pipeline.telemetry
        names = {event["name"]
                 for event in telemetry.tracer.flat_events()}
        assert {"gps.run", "features.extract", "model.build", "priors.build",
                "index.build", "predict"} <= names
        metrics = telemetry.metrics.as_dict()
        assert "scan_probes_total" in metrics
        assert "engine_tasks_total" in metrics
        probes = sum(sample["value"]
                     for sample in metrics["scan_probes_total"]["samples"])
        assert probes == on_pipeline.ledger.total_probes()

    def test_serving_lookup_identical_with_telemetry_on(self, universe):
        seed = ScanPipeline(universe).seed_scan(0.05, seed=31)

        def serve_once(telemetry_enabled):
            async def scenario():
                config = ServingConfig(executor="serial",
                                       telemetry_enabled=telemetry_enabled)
                async with GPSService(config) as service:
                    await service.load_model(
                        "default", ScanPipeline(universe), seed,
                        GPSConfig(use_engine=True, executor="serial"))
                    request = PointLookup(
                        model="default",
                        observations=(seed.observations[0],))
                    return await service.lookup(request)

            return asyncio.run(scenario())

        assert serve_once(False) == serve_once(True)


@pytest.fixture(scope="module")
def telemetry_server(universe):
    """A warm HTTP server whose service runs with telemetry enabled."""
    from repro.serving.http import ServiceHost, make_http_server

    seed = ScanPipeline(universe).seed_scan(0.05, seed=31)
    host = ServiceHost(ServingConfig(executor="serial",
                                     request_timeout_s=60.0,
                                     telemetry_enabled=True))
    host.call(host.service.load_model(
        "default", ScanPipeline(universe), seed,
        GPSConfig(use_engine=True, executor="serial")))
    httpd = make_http_server(host)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}", host, seed
    httpd.shutdown()
    httpd.server_close()
    host.close()


class TestHTTPSurface:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.headers, resp.read().decode()

    def test_metrics_is_valid_prometheus_text(self, telemetry_server):
        base, host, seed = telemetry_server
        from repro.net.ipv4 import format_ip

        ip = format_ip(seed.observations[0].ip)
        self._get(f"{base}/lookup?model=default&ip={ip}")
        status, headers, body = self._get(base + "/metrics")
        assert status == 200
        assert headers["Content-Type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        assert body.endswith("\n")
        assert "# TYPE serving_requests_total counter" in body
        assert 'serving_requests_total{endpoint="lookup"}' in body
        assert "# TYPE serving_request_seconds histogram" in body
        assert 'le="+Inf"' in body
        for line in body.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_and_labels, _, value = line.rpartition(" ")
                assert name_and_labels
                float(value)  # every sample value parses as a number

    def test_stats_includes_recovery_and_queue_depths(self, telemetry_server):
        base, _, _ = telemetry_server
        status, _, body = self._get(base + "/stats")
        payload = json.loads(body)
        assert status == 200
        assert payload["admitted"] >= 1
        assert payload["pending"] == 0
        assert payload["batch_queue_depth"] == 0
        assert set(payload["recovery"]) == {
            "crashes_detected", "respawns", "reloaded_shards",
            "reloaded_broadcasts", "redispatched_tasks", "retry_rounds",
            "resizes", "migrated_shards", "shard_bytes_queued"}

    def test_batch_flushes_reported_by_reason(self, telemetry_server):
        _, host, _ = telemetry_server
        exposition = host.service.telemetry.render_prometheus()
        assert 'serving_flushes_total{reason="' in exposition
        assert "serving_batch_size_bucket" in exposition


class TestCLITrace:
    def test_quickstart_trace_out_emits_phase_tree(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        exit_code = main(["quickstart", "--scale", "small", "--seed", "3",
                          "--seed-fraction", "0.05",
                          "--trace-out", str(trace_path)])
        assert exit_code == 0
        capsys.readouterr()
        document = json.loads(trace_path.read_text())
        assert document["version"] == 1
        spans = Tracer.spans_from_dict(document)
        names = [span.name for span in spans]
        assert names == ["gps.run"]
        phases = [child.name for child in spans[0].children]
        for required in ("dataset.build", "features.extract", "model.build",
                         "priors.build", "index.build"):
            assert required in phases
        assert all(child.duration_s is not None
                   for child in spans[0].children)
