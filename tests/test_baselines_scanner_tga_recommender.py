"""Unit tests for the XGBoost-style scanner, the TGAs and the recommender."""

from __future__ import annotations

import random

import pytest

from repro.baselines.recommender import (
    HybridRecommender,
    RecommenderConfig,
    evaluate_recommender,
)
from repro.baselines.tga import (
    TGAConfig,
    TargetGenerationAlgorithm,
    candidates_budget_from_dataset,
    estimate_training_acquisition_probes,
    evaluate_tga,
)
from repro.baselines.xgboost_scanner import XGBoostScanner, XGBoostScannerConfig


class TestXGBoostScanner:
    @pytest.fixture(scope="class")
    def run(self, censys_dataset, censys_split):
        scanner = XGBoostScanner(censys_dataset, XGBoostScannerConfig(max_ports=8))
        return scanner.run(censys_split)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            XGBoostScannerConfig(target_coverage=0.0)
        with pytest.raises(ValueError):
            XGBoostScannerConfig(max_ports=0)
        with pytest.raises(ValueError):
            XGBoostScannerConfig(neighborhood_prefix=4)

    def test_port_sequence_follows_popularity(self, censys_dataset):
        scanner = XGBoostScanner(censys_dataset, XGBoostScannerConfig(max_ports=5))
        assert scanner.port_sequence() == censys_dataset.port_registry().top_ports(5)

    def test_port_sequence_override(self, censys_dataset):
        scanner = XGBoostScanner(censys_dataset,
                                 XGBoostScannerConfig(ports=(443, 80), max_ports=None))
        assert scanner.port_sequence() == [443, 80]

    def test_first_port_scanned_exhaustively(self, run, censys_dataset):
        first = run.outcomes[0]
        assert first.exhaustive
        assert first.probes == censys_dataset.address_space_size
        assert first.coverage == pytest.approx(1.0)
        assert first.prior_probes == 0

    def test_later_ports_cheaper_than_exhaustive(self, run, censys_dataset):
        for outcome in run.outcomes[1:]:
            assert not outcome.exhaustive
            assert outcome.probes < censys_dataset.address_space_size

    def test_prior_probes_are_cumulative(self, run):
        priors = [outcome.prior_probes for outcome in run.outcomes]
        assert priors == sorted(priors)

    def test_discoveries_are_real_services(self, run, censys_dataset):
        assert run.discovered_pairs() <= censys_dataset.pairs()

    def test_training_is_sequential_and_timed(self, run):
        assert run.total_train_seconds > 0.0
        assert run.outcomes[0].train_seconds == 0.0

    def test_total_probes_match_outcome_sum(self, run):
        assert run.total_probes == sum(outcome.probes for outcome in run.outcomes)


class TestTGA:
    def test_model_requires_training(self):
        with pytest.raises(RuntimeError):
            TargetGenerationAlgorithm().generate(10)
        with pytest.raises(ValueError):
            TargetGenerationAlgorithm().fit([])

    def test_generated_candidates_share_learned_structure(self):
        training = [(10 << 24) + (1 << 16) + (i << 8) + 1 for i in range(50)]
        model = TargetGenerationAlgorithm(rng=random.Random(0)).fit(training)
        candidates = model.generate(100)
        assert candidates
        assert all((ip >> 24) == 10 for ip in candidates)
        assert all(((ip >> 16) & 0xFF) == 1 for ip in candidates)

    def test_generate_is_deduplicated_and_bounded(self):
        model = TargetGenerationAlgorithm(rng=random.Random(1)).fit([1, 2, 3])
        candidates = model.generate(50)
        assert len(candidates) == len(set(candidates))
        with pytest.raises(ValueError):
            model.generate(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TGAConfig(train_addresses_per_port=0)
        with pytest.raises(ValueError):
            TGAConfig(candidates_per_port=0)

    def test_candidates_budget_rule(self, censys_dataset):
        budget = candidates_budget_from_dataset(censys_dataset, multiple=10)
        assert budget >= 10
        with pytest.raises(ValueError):
            candidates_budget_from_dataset(censys_dataset, multiple=0)

    def test_acquisition_cost_estimates(self, censys_dataset):
        estimates = estimate_training_acquisition_probes(censys_dataset, 1000)
        assert estimates
        # Sparse ports require probing a large share of the space.
        space = censys_dataset.address_space_size
        assert max(estimates.values()) > space * 0.2
        assert all(0 < value <= space for value in estimates.values())

    def test_evaluate_tga_finds_some_but_not_all(self, censys_dataset):
        ports = censys_dataset.port_registry().top_ports(5)
        result = evaluate_tga(censys_dataset, TGAConfig(candidates_per_port=200),
                              ports=ports)
        assert 0.0 < result.fraction_found < 1.0
        assert result.probes > 0
        assert set(result.per_port) <= set(ports)

    def test_evaluate_tga_ignores_unknown_ports(self, censys_dataset):
        result = evaluate_tga(censys_dataset, TGAConfig(candidates_per_port=10),
                              ports=[1])
        assert result.services_total == 0
        assert result.fraction_found == 0.0


class TestRecommender:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecommenderConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            RecommenderConfig(epochs=0)
        with pytest.raises(ValueError):
            RecommenderConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            RecommenderConfig(recommendations_per_ip=0)

    def test_fit_requires_candidate_ports(self, censys_split):
        with pytest.raises(ValueError):
            HybridRecommender().fit(censys_split.seed_observations[:5], [])

    def test_recommend_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            HybridRecommender().score_ports(1)

    def test_recommendations_are_ports_from_candidates(self, censys_split, censys_dataset):
        config = RecommenderConfig(epochs=2, embedding_dim=8)
        model = HybridRecommender(config).fit(
            censys_split.seed_observations[:300], censys_dataset.port_domain)
        test_ip = censys_split.test_observations[0].ip
        recommendations = model.recommend(test_ip, count=10)
        assert len(recommendations) == 10
        assert set(recommendations) <= set(censys_dataset.port_domain)

    def test_recommender_prefers_popular_ports_for_cold_hosts(self, censys_split,
                                                              censys_dataset):
        config = RecommenderConfig(epochs=3, embedding_dim=8, seed=2)
        model = HybridRecommender(config).fit(
            censys_split.seed_observations, censys_dataset.port_domain)
        top_ports = set(censys_dataset.port_registry().top_ports(15))
        cold_ip = 1  # an address with no features seen in training
        recommended = set(model.recommend(cold_ip, count=5))
        assert recommended & top_ports

    def test_evaluation_reports_bounded_metrics(self, censys_dataset, censys_split):
        config = RecommenderConfig(epochs=2, embedding_dim=8,
                                   recommendations_per_ip=5)
        result = evaluate_recommender(censys_dataset,
                                      censys_split.seed_observations,
                                      censys_split.test_pairs(), config)
        assert 0.0 <= result.fraction_found <= 1.0
        assert 0.0 <= result.normalized_fraction <= 1.0
        assert result.probes <= 5 * len({ip for ip, _ in censys_split.test_pairs()})
