"""Unit tests for the pseudo-service filter (Appendix B)."""

from __future__ import annotations

import pytest

from repro.scanner.filtering import FilterReport, PseudoServiceFilter, filter_quality
from repro.scanner.records import ScanObservation


def _obs(ip: int, port: int, body: str = "page", protocol: str = "http") -> ScanObservation:
    return ScanObservation(ip=ip, port=port, protocol=protocol,
                           app_features={"protocol": protocol, "http_body_hash": body})


class TestFilterRules:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            PseudoServiceFilter(max_services_per_host=0)
        with pytest.raises(ValueError):
            PseudoServiceFilter(min_duplicate_services=1)

    def test_normal_hosts_pass_through(self):
        observations = [_obs(1, 80, "a"), _obs(1, 443, "b"), _obs(2, 22, "c")]
        report = PseudoServiceFilter().apply(observations)
        assert sorted(o.pair() for o in report.kept) == [(1, 80), (1, 443), (2, 22)]
        assert report.removed_count() == 0
        assert not report.flagged_hosts

    def test_dense_host_removed_entirely(self):
        observations = [_obs(1, port, body=f"p{port}") for port in range(1000, 1015)]
        observations.append(_obs(2, 80, "ok"))
        report = PseudoServiceFilter(max_services_per_host=10).apply(observations)
        assert {o.ip for o in report.kept} == {2}
        assert len(report.removed_dense_host) == 15
        assert report.flagged_hosts == {1}

    def test_duplicate_content_removed(self):
        observations = [_obs(1, port, body="same") for port in (80, 81, 82, 83, 84)]
        observations.append(_obs(1, 22, body="unique", protocol="ssh"))
        report = PseudoServiceFilter(min_duplicate_services=5).apply(observations)
        kept_ports = {o.port for o in report.kept}
        assert kept_ports == {22}
        assert len(report.removed_duplicate_content) == 5
        assert report.flagged_hosts == {1}

    def test_duplicate_content_below_threshold_kept(self):
        observations = [_obs(1, 80, body="same"), _obs(1, 8080, body="same")]
        report = PseudoServiceFilter(min_duplicate_services=5).apply(observations)
        assert len(report.kept) == 2

    def test_dynamic_fields_are_stripped_before_comparison(self):
        observations = []
        for index, port in enumerate((80, 81, 82, 83, 84)):
            features = {"protocol": "http", "http_body_hash": "same",
                        "http_date": f"day-{index}"}
            observations.append(ScanObservation(ip=1, port=port, protocol="http",
                                                app_features=features))
        report = PseudoServiceFilter(min_duplicate_services=5).apply(observations)
        assert len(report.removed_duplicate_content) == 5

    def test_filter_returns_only_kept(self):
        observations = [_obs(1, port, body="same") for port in range(80, 86)]
        kept = PseudoServiceFilter().filter(observations)
        assert kept == []


class TestOnSyntheticUniverse:
    def test_pseudo_hosts_filtered_with_high_recall(self, universe, pipeline):
        pseudo_hosts = {h.ip for h in universe.hosts.values() if h.is_pseudo_host()}
        # Sweep a handful of ports on every pseudo host plus some real hosts.
        observations = []
        for host in universe.hosts.values():
            if host.is_pseudo_host():
                lo, _ = host.pseudo_port_range
                targets = [(host.ip, lo + offset) for offset in range(15)]
                fingerprints = pipeline.lzr.fingerprint_many(targets)
                observations.extend(pipeline.zgrab.grab_many(fingerprints))
        for ip, port in list(universe.real_service_pairs())[:100]:
            fingerprints = pipeline.lzr.fingerprint_many([(ip, port)])
            observations.extend(pipeline.zgrab.grab_many(fingerprints))

        report = PseudoServiceFilter().apply(observations)
        quality = filter_quality(report, pseudo_hosts)
        assert quality["recall"] == pytest.approx(1.0)
        assert quality["precision"] >= 0.9

    def test_filter_quality_with_no_flags(self):
        report = FilterReport()
        quality = filter_quality(report, pseudo_hosts=set())
        assert quality["recall"] == 1.0
        quality = filter_quality(report, pseudo_hosts={1})
        assert quality["recall"] == 0.0
