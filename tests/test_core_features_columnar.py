"""Columnar feature extraction: equivalence with the object-path oracle.

``extract_host_features_columns`` folds predictor tuples straight from
``ObservationBatch`` columns into encoded ``HostFeatureColumns``; these tests
pin it to ``extract_host_features`` (same hosts in the same order, same
ports, same decoded predictor tuples in the same order) and pin the GPS
orchestrator's fused columnar ingest to the legacy object-ingest path across
every runtime executor.
"""

from __future__ import annotations

import pytest

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.features import (
    extract_host_features,
    extract_host_features_columns,
)
from repro.core.gps import GPS
from repro.core.model import build_model, build_model_with_engine
from repro.core.predictions import (
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import build_priors_plan, build_priors_plan_with_engine
from repro.engine.runtime import RUNTIME_EXECUTORS
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import ObservationBatch, ScanObservation


def _assert_columns_match_oracle(columns, oracle):
    """Structural equality of the columnar relation and the object mapping."""
    assert columns.ips == list(oracle)
    assert len(columns.member_starts) == len(columns.ips) + 1
    assert columns.value_starts[-1] == len(columns.value_ids)
    for g, ip in enumerate(columns.ips):
        host = oracle[ip]
        decoded = columns.predictors_for(g)
        assert list(decoded) == host.open_ports()
        for port, tuples in decoded.items():
            assert tuples == host.ports[port]


class TestColumnarExtractionEquivalence:
    def test_matches_object_extraction(self, universe, censys_split):
        config = FeatureConfig()
        asn_db = universe.topology.asn_db
        oracle = extract_host_features(censys_split.seed_observations, asn_db,
                                       config)
        batch = censys_split.seed_scan_result().batch
        columns = extract_host_features_columns(batch, asn_db, config)
        _assert_columns_match_oracle(columns, oracle)

    def test_matches_without_asn_db(self, censys_split):
        config = FeatureConfig(network_feature_kinds=("asn", "subnet16"))
        oracle = extract_host_features(censys_split.seed_observations, None,
                                       config)
        batch = ObservationBatch.from_observations(censys_split.seed_observations)
        columns = extract_host_features_columns(batch, None, config)
        _assert_columns_match_oracle(columns, oracle)

    def test_matches_for_transport_only_ablation(self, universe, censys_split):
        config = FeatureConfig().transport_only()
        asn_db = universe.topology.asn_db
        oracle = extract_host_features(censys_split.seed_observations, asn_db,
                                       config)
        columns = extract_host_features_columns(
            ObservationBatch.from_observations(censys_split.seed_observations),
            asn_db, config)
        _assert_columns_match_oracle(columns, oracle)

    def test_empty_batch(self):
        columns = extract_host_features_columns(
            ObservationBatch.from_observations([]), None, FeatureConfig())
        assert len(columns) == 0
        assert columns.member_starts == [0]
        assert columns.value_ids == []

    def test_duplicate_host_port_rows_last_wins(self):
        """Two observations of one (ip, port): the later row's banner wins,
        exactly as the object path's dict insert resolves it."""
        first = ScanObservation(ip=5, port=80, protocol="http",
                                app_features={"protocol": "http",
                                              "http_server": "old"})
        second = ScanObservation(ip=5, port=80, protocol="http",
                                 app_features={"protocol": "http",
                                               "http_server": "new"})
        config = FeatureConfig()
        oracle = extract_host_features([first, second], None, config)
        columns = extract_host_features_columns(
            ObservationBatch.from_observations([first, second]), None, config)
        _assert_columns_match_oracle(columns, oracle)
        assert ("PA", 80, "http_server", "new") in columns.predictors_for(0)[80]

    def test_fused_builds_accept_columns(self, universe, censys_split):
        """Per-call fused builds ingest the columns and match the oracles."""
        config = FeatureConfig()
        asn_db = universe.topology.asn_db
        oracle = extract_host_features(censys_split.seed_observations, asn_db,
                                       config)
        columns = extract_host_features_columns(
            censys_split.seed_scan_result().batch, asn_db, config)
        model = build_model(oracle)
        built = build_model_with_engine(columns)
        assert built.denominators == model.denominators
        assert {k: v for k, v in built.cooccurrence.items() if v} == \
            {k: v for k, v in model.cooccurrence.items() if v}
        assert build_priors_plan_with_engine(columns, model, 16) == \
            build_priors_plan(oracle, model, 16)
        assert build_prediction_index_with_engine(columns, model).entries() == \
            PredictiveFeatureIndex.from_seed(oracle, model).entries()

    def test_legacy_mode_rejects_columns(self, universe, censys_split):
        columns = extract_host_features_columns(
            censys_split.seed_scan_result().batch,
            universe.topology.asn_db, FeatureConfig())
        model = build_model_with_engine(columns)
        with pytest.raises(ValueError, match="fused"):
            build_model_with_engine(columns, mode="legacy")
        with pytest.raises(ValueError, match="fused"):
            build_priors_plan_with_engine(columns, model, 16, mode="legacy")
        with pytest.raises(ValueError, match="fused"):
            build_prediction_index_with_engine(columns, model, mode="legacy")


class TestGPSColumnarIngestEquivalence:
    """Fused columnar GPS output == legacy object-ingest GPS output."""

    @pytest.fixture(scope="class")
    def legacy_run(self, universe, censys_dataset, censys_split):
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain,
                           use_engine=True, engine_mode="legacy")
        with GPS(pipeline, config) as gps:
            return gps.run(seed=censys_split.seed_scan_result(),
                           seed_cost_probes=0)

    @pytest.mark.parametrize("executor", RUNTIME_EXECUTORS)
    def test_all_executors_match_legacy_ingest(self, universe, censys_dataset,
                                               censys_split, legacy_run,
                                               executor):
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain,
                           use_engine=True, executor=executor, num_workers=2,
                           shard_count=3)
        with GPS(pipeline, config) as gps:
            run = gps.run(seed=censys_split.seed_scan_result(),
                          seed_cost_probes=0)
        assert run.model.denominators == legacy_run.model.denominators
        assert {k: v for k, v in run.model.cooccurrence.items() if v} == \
            {k: v for k, v in legacy_run.model.cooccurrence.items() if v}
        assert run.priors_plan == legacy_run.priors_plan
        assert run.feature_index.entries() == legacy_run.feature_index.entries()
        assert [p.pair() for p in run.predictions] == \
            [p.pair() for p in legacy_run.predictions]
        assert run.discovered_pairs() == legacy_run.discovered_pairs()

    def test_seed_without_batch_still_ingests_columnar(self, universe,
                                                       censys_dataset,
                                                       censys_split,
                                                       legacy_run):
        """A seed carrying only object rows (no columnar batch) rebuilds the
        columns and produces the identical run."""
        seed = censys_split.seed_scan_result()
        seed.batch = None
        pipeline = ScanPipeline(universe)
        config = GPSConfig(seed_fraction=0.05, step_size=16,
                           port_domain=censys_dataset.port_domain,
                           use_engine=True)
        with GPS(pipeline, config) as gps:
            run = gps.run(seed=seed, seed_cost_probes=0)
        assert run.priors_plan == legacy_run.priors_plan
        assert run.feature_index.entries() == legacy_run.feature_index.entries()
        assert run.discovered_pairs() == legacy_run.discovered_pairs()
