"""Shared fixtures for the test suite.

The expensive objects (a synthetic universe, ground-truth datasets, a full GPS
run) are session-scoped: they are deterministic pure data, so sharing them
across tests changes nothing about isolation while keeping the suite fast.
"""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import ExperimentScale, make_censys_dataset, make_lzr_dataset
from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.datasets.split import seed_scan_cost_probes, split_seed_test
from repro.internet.universe import generate_universe
from repro.scanner.pipeline import ScanPipeline

#: A deliberately tiny scale for unit/integration tests.
TEST_SCALE = ExperimentScale(
    name="test",
    host_count=1200,
    as_count=6,
    prefixes_per_as=1,
    censys_top_ports=60,
    lzr_sample_fraction=0.2,
    default_seed_fraction=0.05,
)


@pytest.fixture(scope="session")
def universe():
    """A small deterministic synthetic universe shared by the whole suite."""
    return generate_universe(TEST_SCALE.universe_config(seed=42))


@pytest.fixture(scope="session")
def censys_dataset(universe):
    """Censys-like ground truth over the test universe."""
    return make_censys_dataset(universe, TEST_SCALE)


@pytest.fixture(scope="session")
def lzr_dataset(universe):
    """LZR-like ground truth over the test universe."""
    return make_lzr_dataset(universe, TEST_SCALE)


@pytest.fixture(scope="session")
def censys_split(censys_dataset):
    """A 5 % seed / rest test split of the Censys-like dataset."""
    return split_seed_test(censys_dataset, seed_fraction=0.05, seed=1)


@pytest.fixture()
def pipeline(universe):
    """A fresh scan pipeline (per-test: it accumulates bandwidth state)."""
    return ScanPipeline(universe)


@pytest.fixture(scope="session")
def gps_run(universe, censys_dataset, censys_split):
    """One full GPS run in dataset-split mode, shared by the integration tests."""
    run_pipeline = ScanPipeline(universe)
    config = GPSConfig(seed_fraction=0.05, step_size=16,
                       port_domain=censys_dataset.port_domain)
    gps = GPS(run_pipeline, config)
    seed_cost = seed_scan_cost_probes(censys_dataset, 0.05)
    result = gps.run(seed=censys_split.seed_scan_result(), seed_cost_probes=seed_cost)
    return result, run_pipeline
