"""Lifecycle, backpressure and batching behaviour of the serving core.

These tests pin the service's *control plane*: bounded admission sheds with
typed errors, micro-batches flush on size or deadline, drain is graceful and
close is idempotent, and the registry's load/swap/evict semantics hold.
Correctness of the *data plane* (served predictions == serial oracle) lives
in test_serving_equivalence.py; fault injection in test_serving_chaos.py.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import GPSConfig
from repro.scanner.pipeline import ScanPipeline
from repro.serving import (
    GPSService,
    InProcessClient,
    InvalidRequest,
    ModelNotFound,
    PointLookup,
    ScanJobNotFound,
    ScanJobRequest,
    ServiceClosed,
    ServiceOverloaded,
    ServingConfig,
)


def run(coro):
    """Drive a service coroutine from a sync test."""
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def seed(universe):
    return ScanPipeline(universe).seed_scan(0.05, seed=3)


def _observations_of(seed, count=4):
    """A few single-host observation tuples to look up with."""
    by_ip = {}
    for obs in seed.observations:
        by_ip.setdefault(obs.ip, []).append(obs)
    groups = sorted(by_ip.items())[:count]
    return [tuple(rows) for _, rows in groups]


async def _loaded_service(universe, seed, config=None, gps_config=None):
    service = GPSService(config)
    await service.load_model(
        "default", ScanPipeline(universe), seed,
        gps_config or GPSConfig(use_engine=True, executor="serial"))
    return service


class TestRegistry:
    def test_load_lookup_evict_roundtrip(self, universe, seed):
        async def scenario():
            async with await _loaded_service(universe, seed) as service:
                client = InProcessClient(service)
                infos = client.models()
                assert [info.name for info in infos] == ["default"]
                assert infos[0].seed_services == len(seed.observations)
                assert infos[0].resident_shards  # stays warm until evicted
                reply = await client.lookup_ip("default",
                                               seed.observations[0].ip)
                assert reply.model == "default"
                await client.evict_model("default")
                assert client.models() == []
                with pytest.raises(ModelNotFound):
                    await client.lookup_ip("default", seed.observations[0].ip)
        run(scenario())

    def test_swap_replaces_atomically(self, universe, seed):
        async def scenario():
            async with await _loaded_service(universe, seed) as service:
                first = service.model("default")
                await service.load_model(
                    "default", ScanPipeline(universe), seed,
                    GPSConfig(use_engine=True, executor="serial"))
                second = service.model("default")
                assert second is not first
                # The displaced model's resident shards were released.
                assert first.resident is not None
                assert [i.name for i in service.models()] == ["default"]
        run(scenario())

    def test_unknown_model_and_job_are_typed(self, universe, seed):
        async def scenario():
            async with await _loaded_service(universe, seed) as service:
                with pytest.raises(ModelNotFound):
                    await service.lookup_ip("nope", 1)
                with pytest.raises(ScanJobNotFound):
                    async for _ in service.scan_updates("scan-999"):
                        pass
        run(scenario())

    def test_invalid_requests_rejected_on_construction(self):
        with pytest.raises(InvalidRequest):
            PointLookup(model="m", observations=())
        with pytest.raises(InvalidRequest):
            ScanJobRequest(model="m", batch_size=0)


class TestBatching:
    def test_size_flush_coalesces_concurrent_lookups(self, universe, seed):
        """max_batch concurrent lookups flush together without waiting out
        the (deliberately enormous) batch window."""
        config = ServingConfig(max_batch=4, batch_window_s=30.0,
                               request_timeout_s=10.0)

        async def scenario():
            async with await _loaded_service(universe, seed, config) as service:
                client = InProcessClient(service)
                groups = _observations_of(seed, 4)
                replies = await asyncio.gather(*[
                    client.lookup("default", rows) for rows in groups])
                assert [r.coalesced for r in replies] == [4, 4, 4, 4]
                assert service.stats.flushes == 1
                assert service.stats.max_coalesced == 4
        run(scenario())

    def test_deadline_flush_fires_for_lonely_request(self, universe, seed):
        """A single lookup must not wait for company: the window timer
        flushes it alone well before the request deadline."""
        config = ServingConfig(max_batch=64, batch_window_s=0.01,
                               request_timeout_s=5.0)

        async def scenario():
            async with await _loaded_service(universe, seed, config) as service:
                client = InProcessClient(service)
                (rows,) = _observations_of(seed, 1)
                reply = await client.lookup("default", rows)
                assert reply.coalesced == 1
                assert service.stats.flushes == 1
        run(scenario())

    def test_batches_never_mix_models(self, universe, seed):
        async def scenario():
            async with await _loaded_service(universe, seed) as service:
                await service.load_model(
                    "other", ScanPipeline(universe), seed,
                    GPSConfig(use_engine=True, executor="serial"))
                client = InProcessClient(service)
                groups = _observations_of(seed, 2)
                replies = await asyncio.gather(
                    client.lookup("default", groups[0]),
                    client.lookup("other", groups[1]))
                assert [r.model for r in replies] == ["default", "other"]
                # Two models, two batchers, two flushes.
                assert service.stats.flushes == 2
        run(scenario())


class TestBackpressure:
    def test_overload_sheds_with_typed_error(self, universe, seed):
        """Admission is bounded: request max_pending+1 is shed immediately
        while the first ones are still parked in an unflushed batch."""
        config = ServingConfig(max_pending=2, max_batch=64,
                               batch_window_s=30.0, request_timeout_s=10.0)

        async def scenario():
            async with await _loaded_service(universe, seed, config) as service:
                client = InProcessClient(service)
                groups = _observations_of(seed, 3)
                first = asyncio.ensure_future(client.lookup("default", groups[0]))
                second = asyncio.ensure_future(client.lookup("default", groups[1]))
                await asyncio.sleep(0)  # let both get admitted
                with pytest.raises(ServiceOverloaded):
                    await client.lookup("default", groups[2])
                assert service.stats.shed == 1
                # The parked requests still complete once the service drains
                # (close flushes open batches).
                await service.close()
                replies = await asyncio.gather(first, second)
                assert all(reply.predictions is not None for reply in replies)
        run(scenario())

    def test_scan_jobs_hold_admission_capacity(self, universe, seed):
        config = ServingConfig(max_pending=1, request_timeout_s=10.0)

        async def scenario():
            async with await _loaded_service(universe, seed, config) as service:
                job_id = await service.submit_scan(
                    ScanJobRequest(model="default", batch_size=50))
                # While the job runs (or its stream is undrained) the single
                # admission slot may be occupied; either outcome is typed.
                try:
                    await service.lookup_ip("default", seed.observations[0].ip)
                except ServiceOverloaded:
                    pass
                async for _ in service.scan_updates(job_id):
                    pass
        run(scenario())


class TestLifecycle:
    def test_graceful_drain_completes_in_flight(self, universe, seed):
        config = ServingConfig(max_batch=64, batch_window_s=30.0,
                               request_timeout_s=10.0, drain_timeout_s=10.0)

        async def scenario():
            async with await _loaded_service(universe, seed, config) as service:
                client = InProcessClient(service)
                (rows,) = _observations_of(seed, 1)
                parked = asyncio.ensure_future(client.lookup("default", rows))
                await asyncio.sleep(0)
                await service.close()  # flushes the open batch, then drains
                reply = await parked
                assert reply.coalesced == 1
                assert service.stats.completed == service.stats.admitted
        run(scenario())

    def test_close_is_idempotent_and_post_close_is_typed(self, universe, seed):
        async def scenario():
            service = await _loaded_service(universe, seed)
            await service.close()
            await service.close()  # double-close: no-op, no error
            assert service.closed
            with pytest.raises(ServiceClosed):
                await service.lookup_ip("default", seed.observations[0].ip)
            with pytest.raises(ServiceClosed):
                await service.submit_scan(ScanJobRequest(model="default"))
            assert service.stats.rejected_closed == 2
        run(scenario())

    def test_service_rejects_foreign_event_loop(self, universe, seed):
        service = run(_loaded_service(universe, seed))
        with pytest.raises(RuntimeError, match="different event loop"):
            run(service.lookup_ip("default", seed.observations[0].ip))
        # Tear down threads without touching loop-affine state.
        service._threads.shutdown(wait=False)
        service._registry.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(max_pending=0)
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(batch_window_s=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(request_timeout_s=0)
        with pytest.raises(ValueError):
            ServingConfig(lookup_threads=0)
        with pytest.raises(ValueError):
            ServingConfig(executor="bigquery")
