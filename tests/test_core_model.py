"""Unit and property tests for the co-occurrence model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import (
    CooccurrenceModel,
    build_model,
    build_model_with_engine,
    host_features_to_tables,
)
from repro.engine.parallel import ExecutorConfig
from repro.scanner.records import ScanObservation


def _obs(ip: int, port: int, protocol: str = "http", **features) -> ScanObservation:
    app = {"protocol": protocol}
    app.update(features)
    return ScanObservation(ip=ip, port=port, protocol=protocol, app_features=app)


def _hosts(observations, config=None):
    return extract_host_features(observations, None, config or FeatureConfig())


class TestBuildModel:
    def test_simple_cooccurrence_probability(self):
        # Two hosts with {80, 443}, one host with only {80}.
        observations = [_obs(1, 80), _obs(1, 443), _obs(2, 80), _obs(2, 443), _obs(3, 80)]
        model = build_model(_hosts(observations))
        assert model.probability(("P", 80), 443) == pytest.approx(2 / 3)
        assert model.probability(("P", 443), 80) == pytest.approx(1.0)

    def test_unknown_predictor_is_zero(self):
        model = build_model(_hosts([_obs(1, 80)]))
        assert model.probability(("P", 9999), 80) == 0.0
        assert model.targets_for(("P", 9999)) == {}

    def test_single_service_hosts_only_contribute_denominators(self):
        model = build_model(_hosts([_obs(1, 80), _obs(2, 80)]))
        assert model.denominators[("P", 80)] == 2
        assert model.targets_for(("P", 80)) == {}

    def test_application_feature_conditioning(self):
        observations = [
            _obs(1, 80, http_server="camera-httpd"), _obs(1, 554, protocol="rtsp"),
            _obs(2, 80, http_server="nginx"), _obs(2, 22, protocol="ssh"),
            _obs(3, 80, http_server="camera-httpd"), _obs(3, 554, protocol="rtsp"),
        ]
        model = build_model(_hosts(observations))
        camera_predictor = ("PA", 80, "http_server", "camera-httpd")
        nginx_predictor = ("PA", 80, "http_server", "nginx")
        assert model.probability(camera_predictor, 554) == pytest.approx(1.0)
        assert model.probability(camera_predictor, 22) == 0.0
        assert model.probability(nginx_predictor, 22) == pytest.approx(1.0)
        # The bare port predictor is diluted across both device kinds.
        assert model.probability(("P", 80), 554) == pytest.approx(2 / 3)

    def test_best_predictor_prefers_highest_probability(self):
        observations = [
            _obs(1, 80, http_server="camera-httpd"), _obs(1, 554, protocol="rtsp"),
            _obs(2, 80, http_server="nginx"), _obs(2, 22, protocol="ssh"),
            _obs(3, 80, http_server="camera-httpd"), _obs(3, 554, protocol="rtsp"),
        ]
        hosts = _hosts(observations)
        model = build_model(hosts)
        candidates = hosts[1].ports[80]
        predictor, probability = model.best_predictor(candidates, 554)
        assert probability == pytest.approx(1.0)
        assert predictor[0] in ("PA",)  # the camera-specific banner wins over ("P", 80)

    def test_best_predictor_empty_candidates(self):
        model = CooccurrenceModel()
        assert model.best_predictor([], 80) == (None, 0.0)

    def test_known_target_ports(self):
        observations = [_obs(1, 80), _obs(1, 443), _obs(2, 22), _obs(2, 8080)]
        model = build_model(_hosts(observations))
        assert model.known_target_ports() == [22, 80, 443, 8080]

    def test_predictor_count_grows_with_features(self):
        sparse = build_model(_hosts([_obs(1, 80), _obs(1, 443)],
                                    FeatureConfig().transport_only()))
        rich = build_model(_hosts([_obs(1, 80), _obs(1, 443)]))
        assert rich.predictor_count() > sparse.predictor_count()


class TestEngineEquivalence:
    def _assert_models_equal(self, a: CooccurrenceModel, b: CooccurrenceModel):
        assert a.denominators == b.denominators
        assert {k: dict(v) for k, v in a.cooccurrence.items() if v} == \
            {k: dict(v) for k, v in b.cooccurrence.items() if v}

    @pytest.mark.parametrize("mode", ["fused", "legacy"])
    def test_engine_matches_reference_on_handcrafted_hosts(self, mode):
        observations = [
            _obs(1, 80, http_server="a"), _obs(1, 443), _obs(1, 22),
            _obs(2, 80, http_server="b"), _obs(2, 8080),
            _obs(3, 22),
        ]
        hosts = _hosts(observations)
        self._assert_models_equal(build_model(hosts),
                                  build_model_with_engine(hosts, mode=mode))

    @pytest.mark.parametrize("mode", ["fused", "legacy"])
    @pytest.mark.parametrize("config", [
        ExecutorConfig(backend="serial", workers=4),
        ExecutorConfig(backend="thread", workers=4),
    ])
    def test_engine_matches_reference_with_parallel_workers(self, mode, config):
        observations = [
            _obs(ip, port)
            for ip in range(1, 30)
            for port in ((80, 443) if ip % 2 else (22, 80, 8080))
        ]
        hosts = _hosts(observations)
        parallel = build_model_with_engine(hosts, config, mode=mode)
        self._assert_models_equal(build_model(hosts), parallel)

    @pytest.mark.parametrize("mode", ["fused", "legacy"])
    def test_engine_matches_reference_on_process_backend(self, mode):
        observations = [
            _obs(ip, port, http_server="srv%d" % (ip % 3))
            for ip in range(1, 25)
            for port in ((80, 443) if ip % 2 else (22, 80, 8080))
        ]
        hosts = _hosts(observations)
        parallel = build_model_with_engine(
            hosts, ExecutorConfig(backend="process", workers=2), mode=mode)
        self._assert_models_equal(build_model(hosts), parallel)

    @pytest.mark.parametrize("mode", ["fused", "legacy"])
    def test_engine_matches_reference_on_universe_seed(self, universe, censys_split,
                                                       mode):
        hosts = extract_host_features(censys_split.seed_observations,
                                      universe.topology.asn_db, FeatureConfig())
        self._assert_models_equal(build_model(hosts),
                                  build_model_with_engine(hosts, mode=mode))

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ValueError):
            build_model_with_engine({}, mode="vectorized")

    def test_host_features_to_tables_shapes(self):
        hosts = _hosts([_obs(1, 80), _obs(1, 443)])
        features, ports = host_features_to_tables(hosts)
        assert len(ports) == 2
        assert len(features) >= 2
        assert set(features.names) == {"ip", "port", "predictor"}


ports_strategy = st.lists(
    st.lists(st.sampled_from([22, 80, 443, 8080, 2323]), min_size=1, max_size=4,
             unique=True),
    min_size=1, max_size=25,
)


class TestProperties:
    @settings(deadline=None, max_examples=40)
    @given(ports_strategy)
    def test_probabilities_within_unit_interval(self, host_ports):
        observations = [
            _obs(ip + 1, port) for ip, ports in enumerate(host_ports) for port in ports
        ]
        model = build_model(_hosts(observations, FeatureConfig().transport_only()))
        for predictor, targets in model.cooccurrence.items():
            for port in targets:
                assert 0.0 <= model.probability(predictor, port) <= 1.0

    @settings(deadline=None, max_examples=40)
    @given(ports_strategy)
    def test_engine_and_reference_agree(self, host_ports):
        observations = [
            _obs(ip + 1, port) for ip, ports in enumerate(host_ports) for port in ports
        ]
        hosts = _hosts(observations, FeatureConfig().transport_only())
        reference = build_model(hosts)
        engine = build_model_with_engine(hosts)
        assert reference.denominators == engine.denominators
        for predictor, targets in reference.cooccurrence.items():
            for port, count in targets.items():
                assert engine.cooccurrence.get(predictor, {}).get(port, 0) == count

    @settings(deadline=None, max_examples=20)
    @given(ports_strategy,
           st.sampled_from([("serial", 1), ("serial", 3), ("thread", 4)]))
    def test_fused_legacy_and_reference_agree(self, host_ports, backend_workers):
        # Full feature set (nested predictor tuples) so dictionary encoding
        # and the packed fast path are exercised, across executor shapes.
        backend, workers = backend_workers
        observations = [
            _obs(ip + 1, port, http_server="srv%d" % (ip % 2))
            for ip, ports in enumerate(host_ports) for port in ports
        ]
        hosts = _hosts(observations)
        reference = build_model(hosts)
        config = ExecutorConfig(backend=backend, workers=workers)
        for mode in ("fused", "legacy"):
            engine = build_model_with_engine(hosts, config, mode=mode)
            assert engine.denominators == reference.denominators
            assert {k: v for k, v in engine.cooccurrence.items() if v} == \
                {k: v for k, v in reference.cooccurrence.items() if v}

    @settings(deadline=None, max_examples=40)
    @given(ports_strategy)
    def test_denominator_equals_host_occurrences(self, host_ports):
        observations = [
            _obs(ip + 1, port) for ip, ports in enumerate(host_ports) for port in ports
        ]
        model = build_model(_hosts(observations, FeatureConfig().transport_only()))
        for predictor, denominator in model.denominators.items():
            port = predictor[1]
            expected = sum(1 for ports in host_ports if port in ports)
            assert denominator == expected
