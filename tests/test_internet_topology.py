"""Unit tests for the synthetic topology generator."""

from __future__ import annotations

import random

import pytest

from repro.internet.topology import (
    AS_CATEGORIES,
    AutonomousSystem,
    Topology,
    TopologyConfig,
    generate_topology,
)
from repro.net.ipv4 import prefix_of, prefix_size


class TestTopologyConfig:
    def test_defaults_valid(self):
        TopologyConfig()

    @pytest.mark.parametrize("kwargs", [
        {"as_count": 0},
        {"prefixes_per_as": 0},
        {"prefix_len": 4},
        {"prefix_len": 28},
        {"base_octet": 0},
        {"category_weights": (("bogus", 1.0),)},
        {"category_weights": (("hosting", -1.0),)},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TopologyConfig(**kwargs)


class TestGenerateTopology:
    @pytest.fixture()
    def topology(self):
        return generate_topology(TopologyConfig(as_count=12, prefixes_per_as=2),
                                 random.Random(1))

    def test_as_count(self, topology):
        assert len(topology) == 12

    def test_asns_unique_and_in_private_range(self, topology):
        asns = [system.asn for system in topology.systems]
        assert len(set(asns)) == len(asns)
        assert all(asn >= 64512 for asn in asns)

    def test_prefixes_do_not_overlap(self, topology):
        seen = set()
        for system in topology.systems:
            for base, length in system.prefixes:
                assert base == prefix_of(base, length)
                assert base not in seen
                seen.add(base)

    def test_categories_are_known(self, topology):
        assert all(system.category in AS_CATEGORIES for system in topology.systems)

    def test_asn_database_covers_all_prefixes(self, topology):
        for system in topology.systems:
            for base, length in system.prefixes:
                assert topology.asn_db.asn_of(base + 5) == system.asn

    def test_random_address_within_as(self, topology):
        rng = random.Random(3)
        for system in topology.systems[:5]:
            for _ in range(20):
                ip = topology.random_address(system.asn, rng)
                assert topology.asn_db.asn_of(ip) == system.asn

    def test_total_capacity(self, topology):
        expected = 12 * 2 * prefix_size(16)
        assert topology.total_address_capacity() == expected

    def test_by_category_partition(self, topology):
        total = sum(len(topology.by_category(category)) for category in AS_CATEGORIES)
        assert total == len(topology)

    def test_get_unknown_asn_raises(self, topology):
        with pytest.raises(KeyError):
            topology.get(1)

    def test_duplicate_asn_rejected(self):
        system = AutonomousSystem(asn=64512, name="a", category="hosting",
                                  prefixes=((10 << 24, 16),))
        clone = AutonomousSystem(asn=64512, name="b", category="hosting",
                                 prefixes=((11 << 24, 16),))
        with pytest.raises(ValueError):
            Topology([system, clone])

    def test_generation_is_deterministic(self):
        config = TopologyConfig(as_count=6)
        first = generate_topology(config, random.Random(7))
        second = generate_topology(config, random.Random(7))
        assert [s.asn for s in first.systems] == [s.asn for s in second.systems]
        assert [s.prefixes for s in first.systems] == [s.prefixes for s in second.systems]
        assert [s.category for s in first.systems] == [s.category for s in second.systems]
