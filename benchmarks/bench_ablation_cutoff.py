"""Ablation -- the probability cut-off of the most-predictive-feature list.

Section 5.4 discards patterns whose conditional probability falls below 1e-5
("roughly the hit rate of randomly probing the majority of ports") so that
services sitting on effectively random ports do not generate predictions.
This ablation sweeps the cut-off and reports the prediction-list size, the
prediction-scan precision and the coverage reached: a higher cut-off trades
coverage for precision, while a cut-off of 0 floods the schedule with
near-random probes.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.core.metrics import fraction_of_services
from repro.datasets.split import seed_scan_cost_probes, split_seed_test
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline


def test_ablation_probability_cutoff(run_once, universe, censys_dataset, scale):
    split = split_seed_test(censys_dataset, scale.default_seed_fraction, seed=0)
    seed_cost = seed_scan_cost_probes(censys_dataset, scale.default_seed_fraction)
    cutoffs = (0.0, 1e-5, 0.05, 0.5)

    def experiment():
        rows = []
        for cutoff in cutoffs:
            pipeline = ScanPipeline(universe)
            gps = GPS(pipeline, GPSConfig(
                seed_fraction=scale.default_seed_fraction, step_size=16,
                port_domain=censys_dataset.port_domain,
                probability_cutoff=cutoff,
            ))
            result = gps.run(seed=split.seed_scan_result(), seed_cost_probes=seed_cost)
            found = result.discovered_pairs() & censys_dataset.pairs()
            prediction_probes = pipeline.ledger.total_probes(ScanCategory.PREDICTION)
            confirmed = {obs.pair() for obs in result.prediction_observations}
            rows.append((cutoff, len(result.predictions),
                         fraction_of_services(found, censys_dataset.pairs()),
                         len(confirmed & censys_dataset.pairs()) / prediction_probes
                         if prediction_probes else 0.0))
        return rows

    rows = run_once(experiment)

    print()
    print(format_table(
        ("probability cut-off", "predictions issued", "fraction of services found",
         "prediction-scan precision"),
        [(f"{cutoff:g}", predictions, f"{fraction:.1%}", f"{precision:.4f}")
         for cutoff, predictions, fraction, precision in rows],
        title="Ablation: most-predictive-feature probability cut-off",
    ))

    by_cutoff = {cutoff: (predictions, fraction, precision)
                 for cutoff, predictions, fraction, precision in rows}
    # A very high cut-off issues fewer predictions and finds fewer services.
    assert by_cutoff[0.5][0] <= by_cutoff[1e-5][0]
    assert by_cutoff[0.5][1] <= by_cutoff[1e-5][1] + 1e-9
    # A very high cut-off is at least as precise per prediction probe.
    assert by_cutoff[0.5][2] >= by_cutoff[1e-5][2] - 1e-9
    # The paper's cut-off costs essentially nothing in coverage relative to 0.
    assert by_cutoff[1e-5][1] >= by_cutoff[0.0][1] - 0.01
