"""Table 1 -- GPS features and their dimensionality.

Paper: 25 features spanning 15 banner protocols plus two network-layer
features, with dimensionalities ranging from 10 (CWMP header) to tens of
millions (TLS certificate hashes).  The reproduction reports the same 25 rows
computed over the synthetic Censys-like ground truth; absolute counts are far
smaller (the universe is smaller), but the ordering -- host-unique hashes and
keys at the top, fleet-level fields orders of magnitude smaller -- must hold.
"""

from __future__ import annotations

from repro.analysis import feature_dimensionality, format_table


def test_table1_feature_dimensionality(run_once, universe, censys_dataset):
    rows = run_once(feature_dimensionality, censys_dataset, universe)

    print()
    print(format_table(("feature", "# unique values in ground truth"), rows,
                       title="Table 1 (reproduced): GPS features"))

    counts = dict(rows)
    assert len(rows) == 25
    # Host-unique features dominate the dimensionality ranking, as in the paper.
    assert counts["TLS Cert: Hash"] > counts["TLS Cert: Organization"]
    assert counts["SSH: Host Key"] > counts["SSH: Banner"]
    assert counts["HTTP: Body Hash"] >= counts["HTTP: Server"]
    # Network-layer features are present and low-dimensional.
    assert counts["IP's ASN"] >= 1
    assert counts["IP's /16 subnetwork"] >= counts["IP's ASN"]
