"""Section 2 -- target generation algorithms on IPv4.

Paper: Entropy/IP and EIP, adapted to predict IPv4 addresses one octet at a
time and trained on 1,000 known addresses per port, find only 19 % of the
services in the Censys dataset -- and collecting 1,000 responsive training
addresses per port by random probing would require scanning a quarter of the
address space per port, which is what makes TGAs impractical across all ports.

The reproduction runs the per-port octet-model TGA over the synthetic
Censys-like dataset with the paper's candidate-budget rule and reports both
the recall and the (usually prohibitive) training-acquisition cost.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.tga import (
    TGAConfig,
    candidates_budget_from_dataset,
    estimate_training_acquisition_probes,
    evaluate_tga,
)


def test_sec2_tga_verification(run_once, universe, censys_dataset):
    # The paper's 1M candidates per port are ~0.03 % of the 3.7 B address
    # space; use the same *relative* budget here (the per-port-population rule
    # of Section 2 would be far more generous in a universe this dense).
    space = censys_dataset.address_space_size
    budget = max(candidates_budget_from_dataset(censys_dataset, multiple=10) // 10,
                 int(0.0003 * space))
    result = run_once(evaluate_tga, censys_dataset,
                      TGAConfig(candidates_per_port=budget, seed=1))

    acquisition = estimate_training_acquisition_probes(censys_dataset, 1000)
    expensive_ports = sum(1 for probes in acquisition.values()
                          if probes >= 0.25 * space)

    print()
    print(format_table(
        ("quantity", "value", "paper"),
        [
            ("candidate budget per port", budget, "1M (per 3.7B space)"),
            ("fraction of services found", f"{result.fraction_found:.1%}", "19%"),
            ("candidate probes (100% scans)", f"{result.probes / space:.2f}", "-"),
            ("ports needing >=25% of the space probed to collect training data",
             f"{expensive_ports} of {len(acquisition)}", "90% of ports"),
        ],
        title="Section 2 (reproduced): TGA verification",
    ))

    # Shape checks: the TGA misses a large share of the dataset even with its
    # training data handed to it, and acquiring that training data by random
    # probing would be prohibitive for the large majority of ports.
    assert result.fraction_found < 0.75
    assert expensive_ports > 0.5 * len(acquisition)
