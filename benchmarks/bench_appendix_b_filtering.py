"""Appendix B -- filtering for real services.

Paper: a substantial share of hosts serve "pseudo services" across more than a
thousand contiguous ports; removing duplicate-content services and then any
host serving more than ten services identifies pseudo-service hosts with
100 % recall and 99 % precision.

The reproduction seeds a scan over every pseudo host plus a sample of real
hosts and measures the filter's recall/precision against the universe's ground
truth labels.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.scanner.filtering import PseudoServiceFilter, filter_quality
from repro.scanner.pipeline import ScanPipeline


def _collect_observations(universe):
    pipeline = ScanPipeline(universe)
    observations = []
    pseudo_hosts = set()
    for host in universe.hosts.values():
        if host.is_pseudo_host():
            pseudo_hosts.add(host.ip)
            lo, _ = host.pseudo_port_range
            targets = [(host.ip, lo + offset) for offset in range(20)]
            fingerprints = pipeline.lzr.fingerprint_many(targets)
            observations.extend(pipeline.zgrab.grab_many(fingerprints))
    for ip, port in list(universe.real_service_pairs())[:3000]:
        fingerprints = pipeline.lzr.fingerprint_many([(ip, port)])
        observations.extend(pipeline.zgrab.grab_many(fingerprints))
    return observations, pseudo_hosts


def test_appendix_b_pseudo_service_filtering(run_once, universe):
    observations, pseudo_hosts = _collect_observations(universe)

    def experiment():
        report = PseudoServiceFilter().apply(observations)
        return report, filter_quality(report, pseudo_hosts)

    report, quality = run_once(experiment)

    print()
    print(format_table(
        ("quantity", "value", "paper"),
        [
            ("pseudo-service hosts in universe", len(pseudo_hosts), "-"),
            ("observations before filtering", len(observations), "-"),
            ("observations removed", report.removed_count(), ">80% of pseudo services"),
            ("filter recall (pseudo hosts flagged)", f"{quality['recall']:.1%}", "100%"),
            ("filter precision", f"{quality['precision']:.1%}", "99%"),
        ],
        title="Appendix B (reproduced): pseudo-service filtering",
    ))

    assert quality["recall"] == 1.0
    assert quality["precision"] >= 0.9
    # The filter leaves the real services largely untouched.
    kept_real = sum(1 for obs in report.kept
                    if universe.lookup(obs.ip, obs.port) is not None)
    assert kept_real >= 0.95 * (len(observations) - report.removed_count())
