"""Table 3 -- the most predictive feature values.

Paper: the most predictive single feature type is (Port, Port's protocol),
accounting for 18.7 % of normalized services; HTTP-derived content dominates
the most-predictive list, and interactions of application- and network-layer
features (e.g. (Port, ASN, HTTP body hash)) appear in the top five.

The reproduction attributes every service confirmed by GPS's prediction scan
to the feature type of the pattern that predicted it and reports the top
feature types by normalized-service share.
"""

from __future__ import annotations

from repro.analysis import format_table, most_predictive_feature_types_from_run
from repro.analysis.scenarios import run_gps_on_dataset


def test_table3_top_predictive_features(run_once, universe, censys_dataset, scale):
    def experiment():
        run, _, _ = run_gps_on_dataset(universe, censys_dataset,
                                       seed_fraction=scale.default_seed_fraction,
                                       step_size=16)
        return most_predictive_feature_types_from_run(run, censys_dataset, top=10)

    shares = run_once(experiment)

    print()
    print(format_table(
        ("feature type", "normalized services", "services"),
        [(share.label(), f"{share.normalized_share:.1%}", f"{share.service_share:.1%}")
         for share in shares],
        title="Table 3 (reproduced): most predictive feature types",
    ))
    print("(Paper top-5: (Port, Protocol) 18.7%, (Port) 14.1%, (Port, HTTP header) "
          "9.7%, (Port, ASN, HTTP body hash) 7.7%, (Port, HTTP body hash) 6.1%.)")

    assert shares, "GPS attributed no confirmed predictions to feature types"
    labels = [share.label() for share in shares]
    # Fleet-level (generalising) features dominate: the protocol, HTTP content
    # or plain port patterns must appear at the top, not host-unique hashes.
    top_label = labels[0]
    assert not any(unique in top_label for unique in ("cert_hash", "ssh_host_key"))
    # Shares are a distribution.
    assert abs(sum(share.service_share for share in shares) - 1.0) < 0.5
    assert all(share.normalized_share <= 1.0 for share in shares)
