"""Cost of healing a killed worker vs rebuilding the pool from scratch.

The self-healing runtime's pitch is that supervision makes worker death an
*incremental* cost: respawn one process, re-ship only the shards its
placement owned, re-dispatch only the still-outstanding tasks.  The
alternative -- what a fail-fast pool forces -- is a full rebuild: tear the
runtime down, spawn every worker again, re-ship every shard, rerun the whole
execution.  This benchmark measures both against the same fused model build:

* **warm** -- the steady-state build on a healthy resident pool (baseline);
* **heal** -- the same build issued right after one worker is SIGKILLed:
  the timing includes crash detection, the backoff round, the respawn and
  the surgical re-load;
* **rebuild** -- close the runtime, start a fresh one, re-ship all shards,
  run the build (the fail-fast recovery path).

Results merge into ``BENCH_runtime.json`` under the ``"recovery"`` key (the
rest of the file belongs to ``bench_runtime.py``).  Headline assertion:
healing one dead worker costs less than one full pool rebuild, and the heal
re-ships only the dead worker's shards.  ``BENCH_SMOKE=1`` relaxes the
wall-clock floor only; the surgical-reload and equivalence assertions are
never relaxed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.datasets.split import split_seed_test
from repro.engine.runtime import EngineRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

SEED_FRACTION = 0.1
WORKERS = 2
SHARDS = 8

#: The heal must beat a full rebuild outright; under BENCH_SMOKE=1 a shared
#: CI runner's jitter gets some slack (the rebuild spawns every worker and
#: re-ships every shard, so even relaxed the architecture cannot regress to
#: rebuild-per-crash without tripping this).
HEAL_VS_REBUILD_FLOOR = 1.0 if os.environ.get("BENCH_SMOKE") != "1" else 0.7


def run_recovery_benchmark(universe, dataset):
    """Time warm vs heal-after-kill vs full-rebuild model builds."""
    split = split_seed_test(dataset, SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db,
                                          FeatureConfig())

    runtime = EngineRuntime(executor="pool", num_workers=WORKERS,
                            shard_count=SHARDS)
    resident = ResidentHostGroups(runtime, host_features, 16)
    reference = build_model_with_engine(host_features, dataset=resident)

    start = time.perf_counter()
    warm_model = build_model_with_engine(host_features, dataset=resident)
    warm_seconds = time.perf_counter() - start

    backend = runtime._backend
    placement = backend._placements[resident.key]
    victim = placement[0]
    owned_shards = placement.count(victim)
    process = backend._processes[victim]
    process.kill()
    process.join()

    start = time.perf_counter()
    healed_model = build_model_with_engine(host_features, dataset=resident)
    heal_seconds = time.perf_counter() - start
    stats = runtime.recovery_stats
    resident.release()
    runtime.close()

    start = time.perf_counter()
    fresh_runtime = EngineRuntime(executor="pool", num_workers=WORKERS,
                                  shard_count=SHARDS)
    fresh_resident = ResidentHostGroups(fresh_runtime, host_features, 16)
    rebuilt_model = build_model_with_engine(host_features,
                                            dataset=fresh_resident)
    rebuild_seconds = time.perf_counter() - start
    fresh_resident.release()
    fresh_runtime.close()

    for label, model in (("healed", healed_model), ("rebuilt", rebuilt_model)):
        assert model.denominators == reference.denominators, \
            f"{label} model diverged from the healthy-pool reference"

    return {
        "workers": WORKERS,
        "shards": SHARDS,
        "seed_hosts": len(host_features),
        "victim_owned_shards": owned_shards,
        "respawns": stats.respawns,
        "reloaded_shards": stats.reloaded_shards,
        "redispatched_tasks": stats.redispatched_tasks,
        "warm_seconds": warm_seconds,
        "heal_seconds": heal_seconds,
        "rebuild_seconds": rebuild_seconds,
    }


def _merge_into_results(recovery: dict) -> None:
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text())
    existing["recovery"] = recovery
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_recovery_beats_full_rebuild(run_once, universe, censys_dataset):
    results = run_once(run_recovery_benchmark, universe, censys_dataset)

    ratio = results["rebuild_seconds"] / results["heal_seconds"]
    results["rebuild_vs_heal"] = round(ratio, 2)
    _merge_into_results(results)

    print()
    print(f"warm build:            {results['warm_seconds']:.4f}s")
    print(f"heal (1 worker kill):  {results['heal_seconds']:.4f}s "
          f"({results['reloaded_shards']}/{results['shards']} shards "
          f"re-shipped)")
    print(f"full pool rebuild:     {results['rebuild_seconds']:.4f}s")
    print(f"rebuild / heal:        {ratio:.2f}x "
          f"(floor {HEAL_VS_REBUILD_FLOOR}x, written to {RESULT_PATH.name})")

    # Surgical recovery: exactly one respawn, exactly the dead worker's
    # shards re-shipped -- never the whole resident set.
    assert results["respawns"] == 1
    assert results["reloaded_shards"] == results["victim_owned_shards"]
    assert results["reloaded_shards"] < results["shards"]

    assert ratio >= HEAL_VS_REBUILD_FLOOR, \
        (f"healing a dead worker ({results['heal_seconds']:.3f}s) should cost "
         f"less than a full pool rebuild ({results['rebuild_seconds']:.3f}s)")
