"""Persistent runtime vs per-call spawn -- the warm-pool Table 2 story.

``BENCH_priors.json`` shows the per-call process backend spawn-dominated at
medium scale: every engine operation pays worker start-up plus a full
re-ship of its columns, so parallel speedups never materialize for
interactive runs.  This benchmark makes the persistent runtime's answer
honest.  It times the fused model build (the heaviest Table 2 "computation"
query) three ways:

* **serial** -- the fused single-core reference;
* **cold spawn** -- the per-call process backend
  (:class:`~repro.engine.parallel.ProcessPoolExecutorBackend`): each call
  spawns a fresh pool and ships the encoded columns;
* **warm pool** -- a persistent :class:`~repro.engine.runtime.EngineRuntime`
  whose workers were started once and hold the
  :class:`~repro.core.runtime_plans.ResidentHostGroups` shards resident:
  each call ships only the plan.

It also times the one-off runtime start-up (pool spawn + data load) and the
warm resident priors / prediction-index builds, and asserts that all three
engine paths are bit-identical under ``executor="pool"`` vs serial.

Results are printed as a table and written to ``BENCH_runtime.json`` at the
repository root.  Headline assertion: the warm pool beats per-call spawn by
>= 2x.  The floor holds under ``BENCH_SMOKE=1`` too -- it measures the
architecture (no spawn, no re-ship), not core count, so runner jitter does
not threaten it; the equivalence assertions are never relaxed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model, build_model_with_engine
from repro.core.predictions import build_prediction_index_with_engine
from repro.core.priors import build_priors_plan_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.datasets.split import split_seed_test
from repro.engine.parallel import ExecutorConfig
from repro.engine.runtime import EngineRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Seed fraction matching bench_priors_scaling.py's heavier workload: enough
#: hosts that a model build is real work, small enough to stay interactive.
SEED_FRACTION = 0.1

#: Pool size for both the cold-spawn baseline and the warm runtime, so the
#: comparison isolates the lifecycle (spawn-per-call vs persistent) rather
#: than the degree of parallelism.
WORKERS = 2

REPEATS = 3

#: The headline floor: a warm resident execution must beat per-call spawn by
#: at least this factor.  Measured locally the ratio is >10x (spawning two
#: interpreters costs more than the entire fused build); 2x leaves room for
#: very fast CI machines without ever letting the architecture regress to
#: spawn-per-call.
WARM_VS_COLD_FLOOR = 2.0


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_model_equal(candidate, reference, label):
    assert candidate.denominators == reference.denominators, \
        f"{label} denominators diverged from the oracle"
    assert {k: v for k, v in candidate.cooccurrence.items() if v} == \
        {k: v for k, v in reference.cooccurrence.items() if v}, \
        f"{label} co-occurrence diverged from the oracle"


def run_runtime_benchmark(universe, dataset):
    """Time serial vs cold-spawn vs warm-pool execution of the fused plans."""
    split = split_seed_test(dataset, SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    reference = build_model(host_features)
    cold_config = ExecutorConfig(backend="process", workers=WORKERS)

    # Equivalence first (the acceptance criterion): every engine path under
    # executor="pool" must match its serial twin bit for bit.
    serial_model = build_model_with_engine(host_features)
    serial_priors = build_priors_plan_with_engine(host_features, serial_model, 16,
                                                  dataset.port_domain)
    serial_index = build_prediction_index_with_engine(host_features, serial_model,
                                                      port_domain=dataset.port_domain)
    _assert_model_equal(serial_model, reference, "fused serial")

    start = time.perf_counter()
    runtime = EngineRuntime(executor="pool", num_workers=WORKERS)
    resident = ResidentHostGroups(runtime, host_features, 16)
    pool_model = build_model_with_engine(host_features, dataset=resident)
    startup_seconds = time.perf_counter() - start

    _assert_model_equal(pool_model, serial_model, "pool resident")
    pool_priors = build_priors_plan_with_engine(host_features, pool_model, 16,
                                                dataset.port_domain,
                                                dataset=resident)
    assert pool_priors == serial_priors, \
        "pool priors plan diverged from the serial fused plan"
    pool_index = build_prediction_index_with_engine(host_features, pool_model,
                                                    port_domain=dataset.port_domain,
                                                    dataset=resident)
    assert pool_index.entries() == serial_index.entries(), \
        "pool prediction index diverged from the serial fused index"

    # Timings.  The warm rows execute against data already resident in the
    # long-lived workers; the cold row pays spawn + ship on every call, which
    # is exactly what every engine operation paid before the runtime existed.
    serial_seconds = _best_seconds(lambda: build_model_with_engine(host_features))
    cold_seconds = _best_seconds(
        lambda: build_model_with_engine(host_features, cold_config))
    warm_seconds = _best_seconds(
        lambda: build_model_with_engine(host_features, dataset=resident))
    warm_priors_seconds = _best_seconds(
        lambda: build_priors_plan_with_engine(host_features, pool_model, 16,
                                              dataset.port_domain,
                                              dataset=resident))
    warm_index_seconds = _best_seconds(
        lambda: build_prediction_index_with_engine(host_features, pool_model,
                                                   port_domain=dataset.port_domain,
                                                   dataset=resident))
    resident.release()
    runtime.close()

    return {
        "scale": MEDIUM_SCALE.name,
        "seed_fraction": SEED_FRACTION,
        "seed_hosts": len(host_features),
        "predictors": reference.predictor_count(),
        "workers": WORKERS,
        "equivalence": "pool == serial for model, priors plan and prediction index",
        "runtime_startup_seconds": startup_seconds,
        "rows": [
            {"path": "model serial fused", "seconds": serial_seconds},
            {"path": "model cold spawn (per-call process pool)",
             "seconds": cold_seconds},
            {"path": "model warm pool (resident shards)", "seconds": warm_seconds},
            {"path": "priors warm pool (resident shards)",
             "seconds": warm_priors_seconds},
            {"path": "prediction index warm pool (resident shards)",
             "seconds": warm_index_seconds},
        ],
    }


def test_runtime_warm_pool_vs_cold_spawn(run_once, universe, censys_dataset):
    results = run_once(run_runtime_benchmark, universe, censys_dataset)

    seconds = {row["path"]: row["seconds"] for row in results["rows"]}
    cold = seconds["model cold spawn (per-call process pool)"]
    warm = seconds["model warm pool (resident shards)"]
    serial = seconds["model serial fused"]
    warm_vs_cold = cold / warm
    results["warm_vs_cold_speedup"] = round(warm_vs_cold, 2)
    results["warm_vs_serial"] = round(serial / warm, 2)
    # Merge over the existing file: the "recovery" section is owned by
    # bench_runtime_recovery.py and must survive a rerun of this benchmark.
    if RESULT_PATH.exists():
        merged = json.loads(RESULT_PATH.read_text())
        merged.update(results)
        results = merged
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print()
    print(format_table(
        ("path", "seconds", "vs cold spawn"),
        [(row["path"], f"{row['seconds']:.4f}",
          f"{cold / row['seconds']:.2f}x")
         for row in results["rows"]],
        title=(f"Persistent runtime ({results['seed_hosts']} seed hosts, "
               f"{results['predictors']} predictors, {WORKERS} workers; "
               f"one-off start-up {results['runtime_startup_seconds']:.3f}s)"),
    ))
    print(f"Warm pool vs per-call spawn: {warm_vs_cold:.2f}x "
          f"(written to {RESULT_PATH.name})")

    # Headline acceptance: holding the pool and the shards warm must beat
    # spawning and re-shipping per call by a wide margin.
    assert warm_vs_cold >= WARM_VS_COLD_FLOOR, \
        (f"warm pool only {warm_vs_cold:.2f}x over cold spawn "
         f"(floor {WARM_VS_COLD_FLOOR}x)")
