"""Figure 3 -- GPS precision.

Paper: configured with a 1 % seed and a small (/20) scanning step size, GPS
finds the first services of its schedule with precision an order of magnitude
(and at the 94th percentile of services, 204x) higher than exhaustively
probing ports in the optimal order, and its precision decays as it exhausts
its predictions in descending order of predictability.
"""

from __future__ import annotations

from repro.analysis import format_table, run_precision_experiment
from repro.analysis.reporting import format_ratio


def test_fig3_precision(run_once, universe, censys_dataset, scale):
    experiment = run_once(run_precision_experiment, universe, censys_dataset,
                          seed_fraction=scale.default_seed_fraction, step_size=20)

    def sample(series, count=10):
        if len(series) <= count:
            return series
        step = max(1, len(series) // count)
        return series[::step]

    print()
    print(format_table(
        ("fraction of services found", "GPS precision", "exhaustive precision"),
        [
            (f"{fraction:.3f}", f"{precision:.5f}",
             f"{_exhaustive_at(experiment.exhaustive_all, fraction):.5f}")
            for fraction, precision in sample(experiment.gps_all)
        ],
        title="Fig 3 (reproduced): precision vs fraction of services found",
    ))

    for target in (0.2, 0.5):
        advantage = experiment.precision_advantage_at(target)
        print(f"Precision advantage over exhaustive at {target:.0%} coverage: "
              f"{format_ratio(advantage)} (paper: >10x throughout, 204x at the "
              f"94th percentile; the synthetic universe is denser, compressing "
              f"the ratio)")

    # Shape checks: GPS is more precise than exhaustive probing, and the
    # precision of its schedule decreases as coverage grows.
    advantage = experiment.precision_advantage_at(0.2)
    assert advantage is not None and advantage > 1.0
    early = [precision for fraction, precision in experiment.gps_all if fraction <= 0.3]
    late = [precision for fraction, precision in experiment.gps_all if fraction >= 0.7]
    if early and late:
        assert max(early) >= max(late)


def _exhaustive_at(series, fraction):
    for covered, precision in series:
        if covered >= fraction:
            return precision
    return series[-1][1] if series else 0.0
