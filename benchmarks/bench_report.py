"""Bench-regression report: speedup table + floor gate over BENCH_*.json.

Every benchmark in this directory writes its measurements to a
``BENCH_<area>.json`` file at the repository root, and the measured files
are *committed* -- they are the performance baseline the next change is
judged against.  This tool closes the loop:

* load the committed baselines from the repository root;
* load freshly produced result files (CI downloads every matrix leg's
  ``BENCH_*.json`` artifacts into one directory; locally the repo root
  doubles as the results directory after a bench run);
* render one per-benchmark speedup table -- headline speedup, the floor it
  must clear, and the delta against the committed baseline -- to stdout
  and, when ``$GITHUB_STEP_SUMMARY`` is set, as a Markdown table into the
  workflow step summary;
* with ``--check``, exit non-zero if any asserted metric fell below its
  floor.

Floors come from two places.  Benchmarks that record their floor in the
JSON (``model_fold_kernel.floor``, ``thread_fold.floor`` ...) are judged
against the recorded value -- it was written under the same conditions
(smoke or full) as the measurement.  Headline ratios without a recorded
floor use the static registry below, which mirrors the assertion in the
producing benchmark; ``BENCH_SMOKE=1`` (or ``--smoke``) selects the same
relaxed floors CI smoke runs assert.  Metrics gated off by the producing
run (``thread_fold.floor_asserted`` false on single-core machines) are
reported but never fail the check, and sections that are absent from a
results file (numpy-gated benchmarks skip where no wheel exists) are
reported as missing rather than failed.

Run locally::

    python benchmarks/bench_report.py            # table only
    python benchmarks/bench_report.py --check    # fail on floor regression
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

BENCH_GLOB = "BENCH_*.json"


@dataclass(frozen=True)
class Metric:
    """One gated headline ratio inside one BENCH file.

    Attributes:
        file: BENCH file name the metric lives in.
        label: human-readable row label.
        value_path: dotted path to the speedup inside the JSON document.
        floor: static floor (mirrors the producing benchmark's assertion);
            ignored when ``floor_path`` resolves.
        smoke_floor: the relaxed floor the producing benchmark asserts
            under ``BENCH_SMOKE=1``.
        floor_path: dotted path to a floor recorded by the producing run
            itself; preferred over the static floors when present.
        gate_path: dotted path to a boolean recorded by the producing run;
            when it resolves to false the metric is reported but exempt
            from ``--check`` (e.g. thread-vs-serial on a 1-core machine).
    """

    file: str
    label: str
    value_path: str
    floor: float = 0.0
    smoke_floor: float = 0.0
    floor_path: Optional[str] = None
    gate_path: Optional[str] = None


#: Static floors mirror the assertions in the producing benchmarks -- keep
#: the two in sync when a floor moves.  Recorded-floor metrics carry their
#: floor inside the JSON instead.
METRICS: Tuple[Metric, ...] = (
    Metric("BENCH_engine.json", "fused model build vs legacy (serial)",
           "fused_serial_speedup", floor=3.0, smoke_floor=3.0),
    Metric("BENCH_engine.json", "numpy fold kernel vs per-row fold",
           "model_fold_kernel.speedup", floor_path="model_fold_kernel.floor"),
    Metric("BENCH_engine.json", "thread fold vs serial (model build)",
           "thread_fold.speedup", floor_path="thread_fold.floor",
           gate_path="thread_fold.floor_asserted"),
    Metric("BENCH_dataset.json", "columnar seed ingest vs object path",
           "columnar_vs_object_speedup", floor=1.5, smoke_floor=1.2),
    Metric("BENCH_dataset.json", "numpy model build vs stdlib (serial)",
           "model_fold.speedup", floor_path="model_fold.floor"),
    Metric("BENCH_priors.json", "fused priors plan vs legacy (serial)",
           "priors_fused_serial_speedup", floor=2.0, smoke_floor=1.3),
    Metric("BENCH_priors.json", "batched scan pipeline end to end",
           "scan.end_to_end_speedup", floor=1.6, smoke_floor=1.05),
    Metric("BENCH_priors.json", "columnar scan layers vs per-object",
           "scan_columnar.pipeline_speedup", floor=1.3, smoke_floor=1.05),
    Metric("BENCH_runtime.json", "warm resident pool vs cold spawn",
           "warm_vs_cold_speedup", floor=2.0, smoke_floor=2.0),
    Metric("BENCH_runtime.json", "surgical heal vs full rebuild",
           "recovery.rebuild_vs_heal", floor=1.0, smoke_floor=0.7),
    Metric("BENCH_serving.json", "warm served lookup vs cold one-shot",
           "warm_vs_cold_speedup", floor=5.0, smoke_floor=5.0),
    Metric("BENCH_snapshot.json", "warm restart from snapshot vs full rebuild",
           "warm_restart_speedup", floor_path="warm_restart_floor"),
    Metric("BENCH_snapshot.json", "mmap shard load vs queue-ship (pool)",
           "mmap_vs_queue_ship", gate_path="mmap_floor_asserted"),
    Metric("BENCH_snapshot.json", "resize placement remap vs re-shipping shards",
           "resize.remap_vs_reship", gate_path="resize.floor_asserted"),
    Metric("BENCH_telemetry.json", "warm model build, telemetry off vs on",
           "model_build.off_vs_on", floor_path="model_build.floor"),
    Metric("BENCH_telemetry.json", "warm serving lookup, telemetry off vs on",
           "warm_lookup.off_vs_on", floor_path="warm_lookup.floor"),
)


@dataclass
class Row:
    """One evaluated metric: current value vs floor vs committed baseline."""

    metric: Metric
    value: Optional[float]
    floor: Optional[float]
    asserted: bool
    baseline: Optional[float]
    sources: int  # result files the value was taken from (best of N legs)

    @property
    def regressed(self) -> bool:
        """True when the metric is asserted, present, and below its floor."""
        return (self.asserted and self.value is not None
                and self.floor is not None and self.value < self.floor)

    @property
    def status(self) -> str:
        if self.value is None:
            return "missing"
        if not self.asserted:
            return "not asserted"
        return "REGRESSED" if self.regressed else "ok"


def resolve(document: Dict[str, Any], dotted: str) -> Optional[Any]:
    """Walk a dotted path through nested dicts; None when any hop misses."""
    node: Any = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def load_documents(directory: Path) -> Dict[str, List[Dict[str, Any]]]:
    """Every BENCH_*.json under a directory (recursive), grouped by name.

    CI downloads one artifact directory per matrix leg, so the same file
    name can appear several times; all parses are kept and metrics take
    the best leg.  Unreadable files are skipped with a warning on stderr
    rather than failing the report.
    """
    documents: Dict[str, List[Dict[str, Any]]] = {}
    for path in sorted(directory.rglob(BENCH_GLOB)):
        try:
            parsed = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"bench-report: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        if isinstance(parsed, dict):
            documents.setdefault(path.name, []).append(parsed)
    return documents


def _best(values: List[float]) -> Optional[float]:
    return max(values) if values else None


def evaluate(results: Dict[str, List[Dict[str, Any]]],
             baselines: Dict[str, List[Dict[str, Any]]],
             smoke: bool = False) -> List[Row]:
    """Judge every registered metric against its floor and baseline.

    With several result documents per file (matrix legs), a metric passes
    if its *best* leg clears the floor -- a single noisy shared runner
    must not fail the build when a sibling leg demonstrates the speedup.
    """
    rows: List[Row] = []
    for metric in METRICS:
        docs = results.get(metric.file, [])
        values = [v for v in (resolve(d, metric.value_path) for d in docs)
                  if isinstance(v, (int, float))]
        value = _best(values)

        floor: Optional[float] = None
        if metric.floor_path is not None:
            recorded = [resolve(d, metric.floor_path) for d in docs]
            floors = [f for f in recorded if isinstance(f, (int, float))]
            floor = min(floors) if floors else None
        if floor is None:
            floor = metric.smoke_floor if smoke else metric.floor

        asserted = True
        if metric.gate_path is not None and docs:
            gates = [resolve(d, metric.gate_path) for d in docs]
            asserted = any(g is True for g in gates)

        base_docs = baselines.get(metric.file, [])
        base_values = [v for v in (resolve(d, metric.value_path)
                                   for d in base_docs)
                       if isinstance(v, (int, float))]
        rows.append(Row(metric=metric, value=value, floor=floor,
                        asserted=asserted, baseline=_best(base_values),
                        sources=len(values)))
    return rows


def _fmt(value: Optional[float], suffix: str = "x") -> str:
    return "-" if value is None else f"{value:.2f}{suffix}"


def _delta(row: Row) -> str:
    if row.value is None or row.baseline in (None, 0):
        return "-"
    return f"{row.value / row.baseline - 1.0:+.0%}".replace("%", " %")


def render_text(rows: Sequence[Row]) -> str:
    """Plain-text speedup table for stdout / local runs."""
    header = ("benchmark", "file", "speedup", "floor", "baseline",
              "vs base", "status")
    table = [header] + [
        (row.metric.label, row.metric.file, _fmt(row.value),
         _fmt(row.floor), _fmt(row.baseline), _delta(row), row.status)
        for row in rows]
    widths = [max(len(line[col]) for line in table)
              for col in range(len(header))]
    lines = ["  ".join(cell.ljust(width)
                       for cell, width in zip(line, widths)).rstrip()
             for line in table]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_markdown(rows: Sequence[Row]) -> str:
    """GitHub-flavoured Markdown table for the workflow step summary."""
    icon = {"ok": "white_check_mark", "REGRESSED": "x",
            "missing": "heavy_minus_sign", "not asserted": "zzz"}
    lines = [
        "## Benchmark regression report",
        "",
        "| benchmark | speedup | floor | baseline | vs base | status |",
        "| --- | ---: | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        lines.append(
            f"| {row.metric.label} (`{row.metric.file}`) "
            f"| {_fmt(row.value)} | {_fmt(row.floor)} "
            f"| {_fmt(row.baseline)} | {_delta(row)} "
            f"| :{icon[row.status]}: {row.status} |")
    lines.append("")
    lines.append("Best leg per metric; floors mirror the producing "
                 "benchmark's own assertion (see `benchmarks/`).")
    return "\n".join(lines) + "\n"


def write_step_summary(markdown: str,
                       summary_path: Optional[str] = None) -> bool:
    """Append the Markdown table to ``$GITHUB_STEP_SUMMARY`` if set."""
    target = summary_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return False
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(markdown)
    return True


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render the BENCH_*.json speedup table and optionally "
                    "fail on floor regressions.")
    parser.add_argument(
        "--results-dir", type=Path, default=REPO_ROOT,
        help="directory holding freshly produced BENCH_*.json files, "
             "searched recursively (default: the repository root)")
    parser.add_argument(
        "--baseline-dir", type=Path, default=REPO_ROOT,
        help="directory holding the committed baseline BENCH_*.json files "
             "(default: the repository root)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any asserted metric is below its floor")
    parser.add_argument(
        "--smoke", action="store_true",
        help="judge static floors at their BENCH_SMOKE values (implied by "
             "BENCH_SMOKE=1 in the environment)")
    args = parser.parse_args(argv)

    smoke = args.smoke or os.environ.get("BENCH_SMOKE") == "1"
    results = load_documents(args.results_dir)
    baselines = load_documents(args.baseline_dir)
    if not results:
        print(f"bench-report: no {BENCH_GLOB} files under "
              f"{args.results_dir}", file=sys.stderr)
        return 2

    rows = evaluate(results, baselines, smoke=smoke)
    print(render_text(rows))
    write_step_summary(render_markdown(rows))

    regressions = [row for row in rows if row.regressed]
    for row in regressions:
        print(f"bench-report: FLOOR REGRESSION: {row.metric.label} "
              f"({row.metric.file}) at {row.value:.2f}x, "
              f"floor {row.floor:.2f}x", file=sys.stderr)
    if args.check and regressions:
        return 1
    if regressions:
        print("bench-report: regressions found (run with --check to fail)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
