"""Columnar observation batches vs the per-object batched scan path.

PR 2's batched layers amortized ledger charges and host lookups but still
allocated one ``FingerprintResult`` / ``ScanObservation`` per hit and copied
every banner dict -- the cost that kept the whole-pipeline speedup at ~1.1x
while the ZMap layer alone ran ~2x.  This benchmark isolates what the
columnar rework buys on the same predictions workload:

* the **per-object batched pipeline** (the retired hot loop, kept as the
  oracle): ``zmap.scan_pair_batches`` -> ``lzr.fingerprint_batch`` ->
  ``zgrab.grab_batch`` -> ``pseudo_filter.filter``;
* the **columnar pipeline**: ``scan_pair_batches`` folding hits into
  :class:`~repro.scanner.records.ObservationBatch` columns (interned banner
  ids, encoded protocol statuses), filtering on the columns and
  materializing only surviving rows at the API boundary;

plus the per-layer LZR / ZGrab / filter breakdown.  Equivalence (identical
observations, identical ledger charges) is asserted at full strength; the
speedup floor relaxes under ``BENCH_SMOKE=1`` exactly like the sibling
benchmarks.  Results merge into ``BENCH_priors.json`` (the scan-path record
next to the priors-planning record) under the ``"scan_columnar"`` key.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model
from repro.core.predictions import PredictiveFeatureIndex
from repro.datasets.split import split_seed_test
from repro.scanner.bandwidth import ScanCategory
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import group_pairs

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_priors.json"

#: Same workload knob as bench_priors_scaling, for comparable rows.
PRIORS_SEED_FRACTION = 0.1

REPEATS = 3

#: Floor on the columnar-vs-per-object full-pipeline speedup.  Measured ~2x
#: on a quiet dev machine; BENCH_SMOKE=1 relaxes to "roughly parity" so CI
#: runner jitter cannot fail the build while a real regression still does.
SPEEDUP_FLOOR = 1.05 if os.environ.get("BENCH_SMOKE") == "1" else 1.3


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _observation_key(observations):
    return sorted((obs.ip, obs.port, obs.protocol,
                   tuple(sorted(obs.app_features.items())), obs.ttl)
                  for obs in observations)


def _prediction_workload(universe, dataset):
    """The Section 5.4 workload: predictions from first-service observations."""
    split = split_seed_test(dataset, PRIORS_SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    model = build_model(host_features)
    index = PredictiveFeatureIndex.from_seed(host_features, model,
                                             port_domain=dataset.port_domain)
    seen: set = set()
    firsts = []
    for obs in split.test_observations:
        if obs.ip not in seen:
            seen.add(obs.ip)
            firsts.append(obs)
    predictions = index.predict(firsts, universe.topology.asn_db, FeatureConfig())
    pairs = [prediction.pair() for prediction in predictions]
    return pairs, group_pairs(pairs, 16)


def _object_batched_scan(universe, batches):
    """The per-object batched pipeline (the loop the columnar path retires)."""
    pipeline = ScanPipeline(universe)
    category = ScanCategory.PREDICTION
    hits = pipeline.zmap.scan_pair_batches(batches, category=category)
    fingerprints = pipeline.lzr.fingerprint_batch(hits, category=category)
    observations = pipeline.zgrab.grab_batch(fingerprints, category=category)
    return pipeline, pipeline.pseudo_filter.filter(observations)


def run_columnar_scan_benchmark(universe, dataset):
    pairs, batches = _prediction_workload(universe, dataset)

    # Equivalence: per-object and columnar paths observe the same services
    # and charge the same bandwidth (never relaxed).
    object_pipeline, object_obs = _object_batched_scan(universe, batches)
    columnar_pipeline = ScanPipeline(universe)
    columnar_obs = columnar_pipeline.scan_pair_batches(batches)
    assert _observation_key(object_obs) == _observation_key(columnar_obs), \
        "columnar scan observed different services than the per-object scan"
    assert object_pipeline.ledger.probes == columnar_pipeline.ledger.probes
    assert object_pipeline.ledger.responses == columnar_pipeline.ledger.responses

    # End-to-end timings.
    object_seconds = _best_seconds(lambda: _object_batched_scan(universe, batches))
    columnar_seconds = _best_seconds(
        lambda: ScanPipeline(universe).scan_pair_batches(batches))

    # Per-layer breakdown on a fixed set of hits/fingerprints.
    stage = ScanPipeline(universe)
    hits = stage.zmap.scan_pair_batches(batches)
    hit_ips = [ip for ip, _ in hits]
    hit_ports = [port for _, port in hits]
    fingerprints = stage.lzr.fingerprint_batch(hits)
    fingerprint_cols = stage.lzr.fingerprint_batch_columns(hit_ips, hit_ports)
    observation_batch = stage.zgrab.grab_batch_columns(fingerprint_cols)
    materialized = observation_batch.materialize()
    lzr_object_seconds = _best_seconds(
        lambda: stage.lzr.fingerprint_batch(hits))
    lzr_columnar_seconds = _best_seconds(
        lambda: stage.lzr.fingerprint_batch_columns(hit_ips, hit_ports))
    zgrab_object_seconds = _best_seconds(
        lambda: stage.zgrab.grab_batch(fingerprints))
    zgrab_columnar_seconds = _best_seconds(
        lambda: stage.zgrab.grab_batch_columns(fingerprint_cols))
    filter_object_seconds = _best_seconds(
        lambda: stage.pseudo_filter.filter(materialized))
    filter_columnar_seconds = _best_seconds(
        lambda: stage.pseudo_filter.filter_batch(observation_batch))

    return {
        "predictions": len(pairs),
        "batches": len(batches),
        "responsive_targets": len(observation_batch),
        "kept_observations": len(columnar_obs),
        "interned_banners": len(universe.banners),
        "object_seconds": object_seconds,
        "columnar_seconds": columnar_seconds,
        "pipeline_speedup": round(object_seconds / columnar_seconds, 2),
        "layers": {
            "lzr": {"object_seconds": lzr_object_seconds,
                    "columnar_seconds": lzr_columnar_seconds,
                    "speedup": round(lzr_object_seconds / lzr_columnar_seconds, 2)},
            "zgrab": {"object_seconds": zgrab_object_seconds,
                      "columnar_seconds": zgrab_columnar_seconds,
                      "speedup": round(zgrab_object_seconds
                                       / zgrab_columnar_seconds, 2)},
            "filter": {"object_seconds": filter_object_seconds,
                       "columnar_seconds": filter_columnar_seconds,
                       "speedup": round(filter_object_seconds
                                        / filter_columnar_seconds, 2)},
        },
    }


def test_columnar_scan_vs_per_object(run_once, universe, censys_dataset):
    results = run_once(run_columnar_scan_benchmark, universe, censys_dataset)

    # Merge as a section of BENCH_priors.json: this benchmark extends the
    # scan-path record the priors benchmark starts.
    try:
        merged = json.loads(RESULT_PATH.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        merged = {}
    merged["scan_columnar"] = results
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    print()
    layers = results["layers"]
    print(format_table(
        ("stage", "per-object (s)", "columnar (s)", "speedup"),
        [
            ("pipeline", f"{results['object_seconds']:.4f}",
             f"{results['columnar_seconds']:.4f}",
             f"{results['pipeline_speedup']}x"),
            *[(name, f"{row['object_seconds']:.4f}",
               f"{row['columnar_seconds']:.4f}", f"{row['speedup']}x")
              for name, row in layers.items()],
        ],
        title=(f"Columnar scan: {results['predictions']} targets, "
               f"{results['responsive_targets']} responsive, "
               f"{results['interned_banners']} interned banners"),
    ))
    print(f"Columnar pipeline speedup: {results['pipeline_speedup']}x "
          f"(written to {RESULT_PATH.name})")

    assert results["pipeline_speedup"] >= SPEEDUP_FLOOR, \
        (f"columnar scan speedup regressed to {results['pipeline_speedup']:.2f}x "
         f"(floor {SPEEDUP_FLOOR}x)")
