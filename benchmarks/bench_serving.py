"""Warm serving vs per-invocation rebuild -- the serving-layer story.

The paper's prediction index answers "what services does this host likely
run?" in microseconds once built -- but a one-shot consumer pays the full
build (feature extraction, co-occurrence model, priors plan, index) on every
invocation.  The serving layer amortizes that: one
:class:`~repro.serving.service.GPSService` builds a model once, keeps it
(and its engine shards) warm, and serves every subsequent request as a pure
index read behind micro-batching.

This benchmark times:

* **cold per-invocation** -- ``build_prepared_model`` + one prediction fold,
  the price of answering a single question without the service;
* **warm point lookups** -- sequential ``lookup_ip`` requests against the
  warm service (per-request latency including the asyncio hop);
* **concurrent throughput, batched vs unbatched** -- the same concurrent
  lookup burst against a coalescing service (``max_batch=32``) and a
  batching-disabled one (``max_batch=1``), isolating what micro-batching
  buys under concurrency.

Results are printed and written to ``BENCH_serving.json`` at the repository
root.  Headline assertion: a warm lookup beats a cold invocation by >=
``WARM_VS_COLD_FLOOR``.  The floor holds under ``BENCH_SMOKE=1`` too -- a
cold invocation contains an entire model build, so the margin measures the
architecture, not runner speed.  Every reply is asserted bit-identical to
the serial oracle before any timing is trusted.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import GPSConfig
from repro.scanner.pipeline import ScanPipeline
from repro.serving import GPSService, InProcessClient, ServingConfig
from repro.serving.registry import build_prepared_model

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SEED_FRACTION = 0.1

#: Sequential warm lookups timed per invocation.
WARM_LOOKUPS = 60

#: Concurrent burst size for the batched-vs-unbatched comparison.
BURST = 64

#: Cold invocations timed (each contains a full model build; keep it small).
COLD_REPEATS = 3

#: Headline floor: answering on the warm service must beat a cold
#: per-invocation build-and-predict by at least this factor.  Measured
#: locally the ratio is in the thousands (the build dwarfs an index read);
#: 5x leaves enormous slack while still failing loudly if the service ever
#: starts rebuilding per request.
WARM_VS_COLD_FLOOR = 5.0


def _gps_config() -> GPSConfig:
    return GPSConfig(use_engine=True, executor="serial")


def _host_ips(seed, count):
    return sorted({obs.ip for obs in seed.observations})[:count]


def _cold_invocation_seconds(universe, seed, ip) -> float:
    """One cold question: build everything, answer once, throw it away."""
    best = float("inf")
    for _ in range(COLD_REPEATS):
        start = time.perf_counter()
        prepared = build_prepared_model("cold", ScanPipeline(universe), seed,
                                        _gps_config())
        evidence = prepared.known_observations(ip)
        prepared.predict(evidence, known_pairs=prepared.known_pairs_for(ip))
        best = min(best, time.perf_counter() - start)
        prepared.release()
    return best


def run_serving_benchmark(universe):
    pipeline = ScanPipeline(universe)
    seed = pipeline.seed_scan(SEED_FRACTION, seed=0)
    ips = _host_ips(seed, BURST)
    oracle = build_prepared_model("oracle", ScanPipeline(universe), seed,
                                  GPSConfig())

    cold_seconds = _cold_invocation_seconds(universe, seed, ips[0])

    loop = asyncio.new_event_loop()
    try:
        batched = GPSService(ServingConfig(executor="serial", max_batch=32,
                                           batch_window_s=0.002,
                                           request_timeout_s=120.0))
        unbatched = GPSService(ServingConfig(executor="serial", max_batch=1,
                                             request_timeout_s=120.0))
        start = time.perf_counter()
        loop.run_until_complete(batched.load_model(
            "default", ScanPipeline(universe), seed, _gps_config()))
        build_seconds = time.perf_counter() - start
        loop.run_until_complete(unbatched.load_model(
            "default", ScanPipeline(universe), seed, _gps_config()))

        client = InProcessClient(batched)

        # Correctness before timing: every served reply == the serial oracle.
        for ip in ips[:8]:
            reply = loop.run_until_complete(client.lookup_ip("default", ip))
            expected = oracle.predict(
                oracle.known_observations(ip),
                known_pairs=oracle.known_pairs_for(ip))
            assert tuple(expected) == reply.predictions, \
                "served reply diverged from the serial oracle"

        # Warm sequential lookups (per-request latency, asyncio hop included).
        async def sequential():
            for ip in ips[:WARM_LOOKUPS]:
                await client.lookup_ip("default", ip)
        start = time.perf_counter()
        loop.run_until_complete(sequential())
        warm_seconds = (time.perf_counter() - start) / min(WARM_LOOKUPS,
                                                           len(ips))

        # Concurrent burst, coalesced vs per-request flush.
        async def burst(service):
            burst_client = InProcessClient(service)
            await asyncio.gather(*[burst_client.lookup_ip("default", ip)
                                   for ip in ips])
        start = time.perf_counter()
        loop.run_until_complete(burst(batched))
        batched_seconds = time.perf_counter() - start
        start = time.perf_counter()
        loop.run_until_complete(burst(unbatched))
        unbatched_seconds = time.perf_counter() - start

        stats = batched.stats.as_dict()
        loop.run_until_complete(batched.close())
        loop.run_until_complete(unbatched.close())
    finally:
        loop.close()

    return {
        "scale": MEDIUM_SCALE.name,
        "seed_fraction": SEED_FRACTION,
        "seed_services": len(seed.observations),
        "equivalence": "served lookups == serial one-shot oracle",
        "model_build_seconds": build_seconds,
        "cold_invocation_seconds": cold_seconds,
        "warm_lookup_seconds": warm_seconds,
        "burst_requests": len(ips),
        "batched_burst_seconds": batched_seconds,
        "unbatched_burst_seconds": unbatched_seconds,
        "batched_throughput_rps": len(ips) / batched_seconds,
        "unbatched_throughput_rps": len(ips) / unbatched_seconds,
        "max_coalesced": stats["max_coalesced"],
        "flushes": stats["flushes"],
    }


def test_serving_warm_vs_cold(run_once, universe):
    results = run_once(run_serving_benchmark, universe)

    warm_vs_cold = results["cold_invocation_seconds"] / \
        results["warm_lookup_seconds"]
    batched_vs_unbatched = results["unbatched_burst_seconds"] / \
        results["batched_burst_seconds"]
    results["warm_vs_cold_speedup"] = round(warm_vs_cold, 2)
    results["batched_vs_unbatched_speedup"] = round(batched_vs_unbatched, 2)

    # Merge-preserve: other sections of the file (if any) survive a rerun.
    if RESULT_PATH.exists():
        merged = json.loads(RESULT_PATH.read_text())
        merged.update(results)
        results = merged
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print()
    print(format_table(
        ("path", "value"),
        [
            ("cold per-invocation (build + one answer)",
             f"{results['cold_invocation_seconds']:.4f}s"),
            ("warm service lookup",
             f"{results['warm_lookup_seconds'] * 1e3:.3f}ms"),
            ("warm vs cold", f"{warm_vs_cold:.0f}x"),
            (f"concurrent burst x{results['burst_requests']} (batched)",
             f"{results['batched_burst_seconds']:.4f}s "
             f"({results['batched_throughput_rps']:.0f} req/s)"),
            (f"concurrent burst x{results['burst_requests']} (unbatched)",
             f"{results['unbatched_burst_seconds']:.4f}s "
             f"({results['unbatched_throughput_rps']:.0f} req/s)"),
            ("batched vs unbatched", f"{batched_vs_unbatched:.2f}x"),
            ("max coalesced per flush", results["max_coalesced"]),
        ],
        title=(f"GPS serving ({results['seed_services']} seed services; "
               f"one-off build {results['model_build_seconds']:.3f}s)"),
    ))
    print(f"Warm serve vs cold invocation: {warm_vs_cold:.0f}x "
          f"(written to {RESULT_PATH.name})")

    # Headline acceptance, never relaxed: a cold invocation contains a full
    # model build, so the warm index read must win by a huge margin.
    assert warm_vs_cold >= WARM_VS_COLD_FLOOR, \
        (f"warm lookup only {warm_vs_cold:.2f}x over cold invocation "
         f"(floor {WARM_VS_COLD_FLOOR}x)")
