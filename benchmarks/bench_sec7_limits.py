"""Section 7 -- fundamental limits from random host configuration.

Paper: even under ideal conditions (a 95 % seed so nearly every pattern is
known, perfect feature correlations so a host's services all count as found as
soon as any one is found, and the largest /0 step size), only ~80 % of
normalized services can be discovered with less bandwidth than exhaustive
scanning -- the remainder hides behind random host configuration
(port-forwarding to random ports, randomized management ports).
"""

from __future__ import annotations

from repro.analysis import format_table, run_ideal_conditions_study


def test_sec7_ideal_conditions_ceiling(run_once, universe, censys_dataset):
    study = run_once(run_ideal_conditions_study, censys_dataset,
                     seed_fraction_of_dataset=0.95)

    print()
    print(format_table(
        ("quantity", "value", "paper"),
        [
            ("exhaustive bandwidth (100% scans)",
             f"{study.exhaustive_full_scans:.0f}", "2,000 (port count)"),
            ("whole-port sweeps needed under ideal conditions",
             len(study.points), "-"),
            ("normalized coverage achievable below exhaustive bandwidth",
             f"{study.achievable_normalized:.1%}", "~80%"),
        ],
        title="Section 7 (reproduced): ideal-conditions coverage ceiling",
    ))
    print("(The gap to 100% is attributable to hosts with random "
          "configurations; GPS's real-world results sit below this ceiling.)")

    assert study.points
    assert 0.0 < study.achievable_normalized <= 1.0
    # Reaching the ceiling must require far fewer sweeps than exhaustive
    # scanning -- otherwise "intelligent scanning" would have no headroom.
    assert len(study.points) < study.exhaustive_full_scans
