"""Table 2 -- GPS performance breakdown.

Paper: with a 1 % seed and /16 step size, GPS's bottleneck is bandwidth (the
seed scan dominates 12.3 days of scanning); the prediction computation takes
~9 days on a single core but only 13 minutes on BigQuery; data transfer adds
~9 hours.  The reproduction measures the computation phases directly (single
core versus the partitioned parallel engine) and models scan/transfer wall
time with the same cost model (probes x packet size / line rate).
"""

from __future__ import annotations

from repro.analysis import format_table, run_performance_breakdown
from repro.engine.parallel import ExecutorConfig


def test_table2_performance_breakdown(run_once, universe, lzr_dataset):
    # The paper's Table 2 configuration predicts services across *all* ports
    # from a 1 % seed, which is why the seed scan dominates the bandwidth
    # budget; the LZR-like dataset is the all-port ground truth here.
    breakdown = run_once(
        run_performance_breakdown, universe, lzr_dataset,
        seed_fraction=0.01, step_size=16,
        executor=ExecutorConfig(backend="thread", workers=4),
    )

    print()
    print(format_table(
        ("phase", "bandwidth (100% scans)", "compute (1 core, s)",
         "compute (parallel, s)", "modelled wall time (s)", "data (bytes)"),
        [
            (row.name,
             f"{row.full_scans:.2f}" if row.full_scans else "-",
             f"{row.compute_seconds_single_core:.3f}"
             if row.compute_seconds_single_core else "-",
             f"{row.compute_seconds_parallel:.3f}"
             if row.compute_seconds_parallel is not None else "-",
             f"{row.wall_seconds:.2f}",
             row.data_bytes or "-")
            for row in breakdown.rows
        ],
        title="Table 2 (reproduced): GPS performance breakdown",
    ))
    print(f"Total bandwidth: {breakdown.total_full_scans():.1f} 100% scans; "
          f"total modelled wall time: {breakdown.total_wall_seconds():.0f}s; "
          f"total single-core compute: "
          f"{breakdown.total_compute_seconds_single_core():.2f}s; "
          f"parallel speedup: {breakdown.speedup()}")
    print("(Paper: seed scan dominates total wall time; computation is 9 days "
          "on one core vs 13 minutes on BigQuery.  At this reproduction's data "
          "sizes the parallel engine's overhead can exceed its benefit; the "
          "structural claims preserved are the phase decomposition and the "
          "seed-scan-dominated bandwidth budget.)")

    names = [row.name for row in breakdown.rows]
    assert any("seed scan" in name for name in names)
    assert any(name.startswith("Predicting first service") for name in names)
    assert any(name.startswith("Predicting remaining") for name in names)
    assert any(name == "PFS scan" for name in names) and any(name == "PRS scan"
                                                             for name in names)
    # The seed scan dominates GPS's bandwidth, as in the paper.
    seed_row = next(row for row in breakdown.rows if "seed scan" in row.name)
    assert seed_row.full_scans > 0.5 * breakdown.total_full_scans()
    # Scanning wall time dominates computation wall time.
    scan_wall = sum(row.wall_seconds for row in breakdown.rows if "scan" in row.name)
    compute_wall = sum(row.wall_seconds for row in breakdown.rows
                       if row.compute_seconds_single_core)
    assert scan_wall > compute_wall
