"""Engine scaling -- legacy (materialized self-join) vs fused streaming path.

The paper's Table 2 claims the co-occurrence computation is fast because the
self-join + group-by is embarrassingly parallel.  This benchmark makes the
reproduction's side of that claim honest: it times model building at medium
scale on the legacy engine path (materialize the quadratic join, then
group-count it) against the fused streaming path (dictionary-encoded
predictors folded straight into counters), over worker counts {1, 2, 4} on
the thread and process backends.

Two further tests cover the machine-native column kernels:

* ``test_model_fold_kernel_bulk_vs_per_row`` -- the model-pairs fold alone
  (packed counts, no decode), per-row stdlib vs the vectorized numpy kernel
  over the same resident column buffers; floor >= 2x.
* ``test_thread_fold_beats_serial`` -- the same vectorized fold dispatched
  across resident shards on the ``thread`` executor vs ``serial``.  numpy's
  sorts release the GIL, so with >= 2 cores threads genuinely overlap; the
  >= 1.3x floor is asserted whenever the machine has >= 2 cores (CI smoke
  runners do) and recorded without asserting on single-core boxes, where
  beating serial is physically impossible.

Results are printed as tables and written to ``BENCH_engine.json`` at the
repository root, seeding the repo's performance trajectory; the headline
assertion is the fused serial path being >= 3x faster than the legacy serial
path, with identical probabilities (checked against the ``build_model``
oracle).  No equivalence assertion is ever relaxed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features, extract_host_features_columns
from repro.core.model import build_model, build_model_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.datasets.builders import build_full_dataset
from repro.datasets.split import split_seed_test
from repro.engine.columns import numpy_available
from repro.engine.parallel import ExecutorConfig, merge_counters
from repro.engine.runtime import MODEL_PACK_BASE, EngineRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: (backend, workers) sweep; workers=1 is the serial reference configuration.
SWEEP = (
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)

REPEATS = 3

#: The vectorized model fold must beat the per-row fold on the same buffers.
KERNEL_FLOOR = 2.0 if os.environ.get("BENCH_SMOKE") != "1" else 1.5

#: Thread executor over GIL-releasing kernels vs serial; only meaningful
#: (and only asserted) with >= 2 cores.
THREAD_FLOOR = 1.3

#: Shards/workers for the thread-vs-serial fold.
THREAD_WORKERS = 4


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_results(update: dict) -> None:
    """Merge a section into BENCH_engine.json without clobbering siblings."""
    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results.update(update)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def run_engine_scaling(universe, dataset, seed_fraction: float):
    """Time legacy vs fused model building across executor configurations."""
    split = split_seed_test(dataset, seed_fraction, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    reference = build_model(host_features)

    rows = []
    for backend, workers in SWEEP:
        executor = ExecutorConfig(backend=backend, workers=workers)
        for mode in ("legacy", "fused"):
            model = build_model_with_engine(host_features, executor, mode=mode)
            assert model.denominators == reference.denominators, \
                f"{mode}/{backend}x{workers} denominators diverged from the oracle"
            assert {k: v for k, v in model.cooccurrence.items() if v} == \
                {k: v for k, v in reference.cooccurrence.items() if v}, \
                f"{mode}/{backend}x{workers} co-occurrence diverged from the oracle"
            seconds = _best_seconds(
                lambda: build_model_with_engine(host_features, executor, mode=mode))
            rows.append({
                "mode": mode,
                "backend": backend,
                "workers": workers,
                "seconds": seconds,
            })
    return {
        "scale": MEDIUM_SCALE.name,
        "seed_hosts": len(host_features),
        "predictors": reference.predictor_count(),
        "rows": rows,
    }


def test_engine_scaling_fused_vs_legacy(run_once, universe, censys_dataset, scale):
    results = run_once(run_engine_scaling, universe, censys_dataset,
                       scale.default_seed_fraction)

    by_config = {(r["mode"], r["backend"], r["workers"]): r["seconds"]
                 for r in results["rows"]}
    speedup = by_config[("legacy", "serial", 1)] / by_config[("fused", "serial", 1)]
    results["fused_serial_speedup"] = round(speedup, 2)
    _merge_results(results)

    print()
    print(format_table(
        ("backend", "workers", "legacy (s)", "fused (s)", "speedup"),
        [
            (backend, workers,
             f"{by_config[('legacy', backend, workers)]:.4f}",
             f"{by_config[('fused', backend, workers)]:.4f}",
             f"{by_config[('legacy', backend, workers)] / by_config[('fused', backend, workers)]:.2f}x")
            for backend, workers in SWEEP
        ],
        title="Engine scaling: legacy (materialized join) vs fused streaming",
    ))
    print(f"Seed hosts: {results['seed_hosts']}; distinct predictors: "
          f"{results['predictors']}; fused serial speedup: {speedup:.2f}x "
          f"(written to {RESULT_PATH.name})")

    # The headline acceptance: fusing the self-join kills enough intermediate
    # materialization to be >= 3x faster single-core at medium scale.
    assert speedup >= 3.0, f"fused serial speedup regressed to {speedup:.2f}x"


# -- machine-native fold kernels ----------------------------------------------------


def _full_scale_columns(universe):
    """Encoded host/service/predictor columns for the full medium universe.

    The fold-kernel measurements use the full dataset (12K hosts, ~630K
    predictor refs) rather than the seed split: the kernels are the
    per-element story, so they are timed where the element count is large
    enough that setup noise disappears.
    """
    dataset = build_full_dataset(universe)
    return extract_host_features_columns(dataset.columns(),
                                         universe.topology.asn_db,
                                         FeatureConfig())


def _resident_groups(universe, columns, executor: str, workers: int):
    runtime = EngineRuntime(executor=executor, num_workers=workers,
                            shard_count=workers)
    return runtime, ResidentHostGroups(runtime, columns, step_size=16)


def run_model_fold_kernel(universe):
    """Time the packed model-pairs fold: per-row stdlib vs the numpy kernel.

    Both variants run against the same worker-resident column buffers
    through ``EngineRuntime.execute`` on the serial executor (one shard), so
    the measured region is exactly the fold: per-row ``count_join_chunk``
    over the derived self-join payload versus ``fold_model_pairs_arrays``
    over the raw buffers.  Equivalence of the packed counts is asserted
    before timing and never relaxed.
    """
    columns = _full_scale_columns(universe)
    runtime, resident = _resident_groups(universe, columns, "serial", 1)
    try:
        per_row = merge_counters(runtime.execute("model_pairs", resident.key))
        keys, counts = runtime.execute("model_pairs", resident.key,
                                       [("numpy",)])[0]
        bulk = dict(zip(keys.tolist(), counts.tolist()))
        assert bulk == dict(per_row), \
            "vectorized model-pairs fold diverged from the per-row fold"

        per_row_seconds = _best_seconds(
            lambda: runtime.execute("model_pairs", resident.key))
        bulk_seconds = _best_seconds(
            lambda: runtime.execute("model_pairs", resident.key, [("numpy",)]))
    finally:
        resident.release()
        runtime.close()
    return {
        "hosts": len(columns),
        "predictor_refs": len(columns.value_ids),
        "packed_pairs": len(bulk),
        "equivalence": "numpy packed counts == per-row packed counts",
        "per_row_seconds": per_row_seconds,
        "bulk_seconds": bulk_seconds,
    }


def test_model_fold_kernel_bulk_vs_per_row(run_once, universe):
    if not numpy_available():
        pytest.skip("numpy backend unavailable; stdlib kernels still covered "
                    "by the scaling sweep above")
    results = run_once(run_model_fold_kernel, universe)
    speedup = results["per_row_seconds"] / results["bulk_seconds"]
    results["speedup"] = round(speedup, 2)
    results["floor"] = KERNEL_FLOOR
    _merge_results({"model_fold_kernel": results})

    print()
    print(format_table(
        ("kernel", "seconds", "speedup"),
        [("per-row (count_join_chunk)", f"{results['per_row_seconds']:.4f}", "1.00x"),
         ("bulk (fold_model_pairs_arrays)", f"{results['bulk_seconds']:.4f}",
          f"{speedup:.2f}x")],
        title=(f"Model-pairs fold kernel ({results['hosts']} hosts, "
               f"{results['predictor_refs']} predictor refs)"),
    ))
    print(f"Bulk fold kernel vs per-row: {speedup:.2f}x "
          f"(floor {KERNEL_FLOOR}x, written to {RESULT_PATH.name})")
    assert speedup >= KERNEL_FLOOR, \
        f"bulk fold kernel only {speedup:.2f}x over per-row (floor {KERNEL_FLOOR}x)"


def run_thread_fold(universe):
    """Time the vectorized model fold on thread vs serial resident runtimes.

    Every shard's fold sorts int64 buffers inside numpy (GIL released), so
    the thread executor's workers genuinely overlap -- the first fold in
    this repo where ``thread`` can beat ``serial``.
    """
    columns = _full_scale_columns(universe)
    timings = {}
    counts = {}
    for executor in ("serial", "thread"):
        runtime, resident = _resident_groups(universe, columns, executor,
                                             THREAD_WORKERS)
        try:
            args = [("numpy",)] * runtime.shard_count
            first = runtime.execute("model_pairs", resident.key, args)
            counts[executor] = merge_counters(
                dict(zip(keys.tolist(), cnts.tolist())) for keys, cnts in first)
            timings[executor] = _best_seconds(
                lambda: runtime.execute("model_pairs", resident.key, args))
        finally:
            resident.release()
            runtime.close()
    assert counts["thread"] == counts["serial"], \
        "thread-executor fold diverged from the serial fold"
    return {
        "hosts": len(columns),
        "predictor_refs": len(columns.value_ids),
        "workers": THREAD_WORKERS,
        "cpu_count": os.cpu_count(),
        "equivalence": "thread merged packed counts == serial merged packed counts",
        "serial_seconds": timings["serial"],
        "thread_seconds": timings["thread"],
    }


def test_thread_fold_beats_serial(run_once, universe):
    if not numpy_available():
        pytest.skip("numpy backend unavailable; the GIL-releasing fold needs it")
    results = run_once(run_thread_fold, universe)
    speedup = results["serial_seconds"] / results["thread_seconds"]
    asserted = (os.cpu_count() or 1) >= 2
    results["speedup"] = round(speedup, 2)
    results["floor"] = THREAD_FLOOR
    results["floor_asserted"] = asserted
    _merge_results({"thread_fold": results})

    print()
    print(format_table(
        ("executor", "seconds", "speedup"),
        [("serial", f"{results['serial_seconds']:.4f}", "1.00x"),
         (f"thread x{THREAD_WORKERS}", f"{results['thread_seconds']:.4f}",
          f"{speedup:.2f}x")],
        title=(f"Vectorized model fold, resident shards "
               f"({results['hosts']} hosts, {os.cpu_count()} cores)"),
    ))
    print(f"Thread fold vs serial: {speedup:.2f}x (floor {THREAD_FLOOR}x, "
          f"{'asserted' if asserted else 'recorded only: single-core machine'}, "
          f"written to {RESULT_PATH.name})")
    if asserted:
        assert speedup >= THREAD_FLOOR, \
            (f"thread fold only {speedup:.2f}x over serial on a "
             f"{os.cpu_count()}-core machine (floor {THREAD_FLOOR}x)")
