"""Engine scaling -- legacy (materialized self-join) vs fused streaming path.

The paper's Table 2 claims the co-occurrence computation is fast because the
self-join + group-by is embarrassingly parallel.  This benchmark makes the
reproduction's side of that claim honest: it times model building at medium
scale on the legacy engine path (materialize the quadratic join, then
group-count it) against the fused streaming path (dictionary-encoded
predictors folded straight into counters), over worker counts {1, 2, 4} on
the thread and process backends.

Results are printed as a table and written to ``BENCH_engine.json`` at the
repository root, seeding the repo's performance trajectory; the headline
assertion is the fused serial path being >= 3x faster than the legacy serial
path, with identical probabilities (checked against the ``build_model``
oracle).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model, build_model_with_engine
from repro.datasets.split import split_seed_test
from repro.engine.parallel import ExecutorConfig

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: (backend, workers) sweep; workers=1 is the serial reference configuration.
SWEEP = (
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)

REPEATS = 3


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_scaling(universe, dataset, seed_fraction: float):
    """Time legacy vs fused model building across executor configurations."""
    split = split_seed_test(dataset, seed_fraction, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    reference = build_model(host_features)

    rows = []
    for backend, workers in SWEEP:
        executor = ExecutorConfig(backend=backend, workers=workers)
        for mode in ("legacy", "fused"):
            model = build_model_with_engine(host_features, executor, mode=mode)
            assert model.denominators == reference.denominators, \
                f"{mode}/{backend}x{workers} denominators diverged from the oracle"
            assert {k: v for k, v in model.cooccurrence.items() if v} == \
                {k: v for k, v in reference.cooccurrence.items() if v}, \
                f"{mode}/{backend}x{workers} co-occurrence diverged from the oracle"
            seconds = _best_seconds(
                lambda: build_model_with_engine(host_features, executor, mode=mode))
            rows.append({
                "mode": mode,
                "backend": backend,
                "workers": workers,
                "seconds": seconds,
            })
    return {
        "scale": MEDIUM_SCALE.name,
        "seed_hosts": len(host_features),
        "predictors": reference.predictor_count(),
        "rows": rows,
    }


def test_engine_scaling_fused_vs_legacy(run_once, universe, censys_dataset, scale):
    results = run_once(run_engine_scaling, universe, censys_dataset,
                       scale.default_seed_fraction)

    by_config = {(r["mode"], r["backend"], r["workers"]): r["seconds"]
                 for r in results["rows"]}
    speedup = by_config[("legacy", "serial", 1)] / by_config[("fused", "serial", 1)]
    results["fused_serial_speedup"] = round(speedup, 2)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print()
    print(format_table(
        ("backend", "workers", "legacy (s)", "fused (s)", "speedup"),
        [
            (backend, workers,
             f"{by_config[('legacy', backend, workers)]:.4f}",
             f"{by_config[('fused', backend, workers)]:.4f}",
             f"{by_config[('legacy', backend, workers)] / by_config[('fused', backend, workers)]:.2f}x")
            for backend, workers in SWEEP
        ],
        title="Engine scaling: legacy (materialized join) vs fused streaming",
    ))
    print(f"Seed hosts: {results['seed_hosts']}; distinct predictors: "
          f"{results['predictors']}; fused serial speedup: {speedup:.2f}x "
          f"(written to {RESULT_PATH.name})")

    # The headline acceptance: fusing the self-join kills enough intermediate
    # materialization to be >= 3x faster single-core at medium scale.
    assert speedup >= 3.0, f"fused serial speedup regressed to {speedup:.2f}x"
