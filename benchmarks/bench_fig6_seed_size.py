"""Figure 6 / Appendix D.2 -- varying the seed size.

Paper: a larger seed scan (2 % versus 0.1 %) finds substantially more
*normalized* services -- the uncommon-port patterns only a bigger sample
contains -- but barely changes the fraction of *all* services found, because
the most predictive patterns behind popular services already appear in small
seeds.  The bandwidth of collecting the seed is included in the curves.
"""

from __future__ import annotations

from repro.analysis import format_table, run_seed_size_sweep


def test_fig6_seed_size_sweep(run_once, universe, censys_dataset):
    seed_fractions = (0.005, 0.01, 0.03, 0.06)
    results = run_once(run_seed_size_sweep, universe, censys_dataset,
                       seed_fractions=seed_fractions, step_size=16)

    rows = []
    for fraction in seed_fractions:
        experiment = results[fraction]
        rows.append((
            f"{fraction:.1%}",
            f"{experiment.gps_points[0].full_scans:.1f}",
            f"{experiment.final_normalized_fraction():.1%}",
            f"{experiment.final_fraction():.1%}",
            f"{experiment.gps_points[-1].full_scans:.1f}",
        ))

    print()
    print(format_table(
        ("seed size", "seed bandwidth", "final normalized", "final fraction",
         "total bandwidth"),
        rows,
        title="Fig 6 (reproduced): varying the seed size (seed cost included)",
    ))
    print("(Paper: larger seeds raise normalized coverage markedly; the "
          "fraction of all services moves much less.)")

    smallest = results[seed_fractions[0]]
    largest = results[seed_fractions[-1]]
    # Normalized coverage benefits from a larger seed...
    assert largest.final_normalized_fraction() > smallest.final_normalized_fraction()
    # ...and by a larger margin than the all-services fraction improves.
    normalized_gain = (largest.final_normalized_fraction()
                       - smallest.final_normalized_fraction())
    fraction_gain = largest.final_fraction() - smallest.final_fraction()
    assert normalized_gain >= fraction_gain - 0.05
    # Seed bandwidth grows with the seed size.
    assert largest.gps_points[0].full_scans > smallest.gps_points[0].full_scans
