"""Warm restart from a snapshot vs full rebuild -- the persistence story.

``BENCH_runtime.json`` showed that keeping a pool and its shards warm beats
re-spawning per call; this benchmark measures the other half of Section 6.5's
"reuse an existing seed scan" deployment mode: a process that *restarts* and
wants the Table 2 artifacts back.  Three comparisons:

* **warm restart vs full build** -- ``open_snapshot`` + materializing the
  model, priors plan and prediction index + a first lookup, against the full
  cold path (encode the seed observations, extract host features, run all
  three fused builds, first lookup).  The snapshot pays one sequential crc32
  pass plus dict reconstruction from mapped int64 columns; the rebuild pays
  the flatten and three folds.  Headline floor: >= 5x.
* **mmap shard load vs queue-ship** -- making the host-group relation
  resident in a warm pool from snapshot file references
  (:meth:`~repro.core.runtime_plans.ResidentHostGroups.from_snapshot`,
  workers ``mmap`` their own files, zero column bytes through the inbox
  queues) against the constructor path (flatten + pickle every shard through
  a queue).  The ``RecoveryStats.shard_bytes_queued`` ledger proves the
  zero-copy claim before anything is timed.
* **elastic resize after a snapshot load** -- grow and shrink the pool with
  snapshot-backed shards resident; the remap moves file descriptors, so the
  queued-bytes ledger must not advance.  Cost is recorded, not floored
  (spawning an interpreter dominates and is machine-dependent).

Results are printed as a table and written to ``BENCH_snapshot.json`` at the
repository root.  Equivalence is asserted before any timing -- everything
loaded from the snapshot must be bit-identical to what was saved -- and
never relaxed under ``BENCH_SMOKE=1``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features_columns
from repro.core.model import build_model_with_engine
from repro.core.predictions import build_prediction_index_with_engine
from repro.core.priors import build_priors_plan_with_engine
from repro.core.runtime_plans import ResidentHostGroups
from repro.datasets.split import split_seed_test
from repro.engine.runtime import EngineRuntime
from repro.engine.snapshot import open_snapshot, save_snapshot
from repro.scanner.records import ObservationBatch

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

#: Seed fraction matching bench_runtime.py's workload, so the "full build"
#: baseline here is the same work the runtime benchmark times.
SEED_FRACTION = 0.1

STEP_SIZE = 16

#: Pool size for the shard-loading and resize comparisons.
WORKERS = 2

#: Shard count for the saved layout; more shards than workers so resize has
#: placement decisions to make.
SHARDS = 4

REPEATS = 3

#: The headline floor: restoring the Table 2 artifacts from a snapshot
#: (including the crc32 verification pass and a first lookup) must beat
#: rebuilding them from the raw seed observations by at least this factor.
#: Measured locally the ratio is >30x -- the restart reads a few MB of
#: mapped int64 columns while the rebuild re-runs the flatten and all three
#: fused folds -- so 5x holds comfortably even on noisy CI runners and under
#: ``BENCH_SMOKE=1``.
WARM_RESTART_FLOOR = 5.0


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_snapshot_benchmark(universe, dataset):
    """Time warm restart, mmap shard loading and elastic resize."""
    split = split_seed_test(dataset, SEED_FRACTION, seed=0)
    observations = split.seed_observations
    asn_db = universe.topology.asn_db
    feature_config = FeatureConfig()
    probe = observations[:32]

    def full_build():
        batch = ObservationBatch.from_observations(observations)
        host_features = extract_host_features_columns(batch, asn_db,
                                                      feature_config)
        model = build_model_with_engine(host_features, mode="fused")
        priors = build_priors_plan_with_engine(host_features, model,
                                               STEP_SIZE, dataset.port_domain,
                                               mode="fused")
        index = build_prediction_index_with_engine(
            host_features, model, port_domain=dataset.port_domain,
            mode="fused")
        index.predict(probe, asn_db, feature_config)
        return batch, host_features, model, priors, index

    batch, host_features, model, priors, index = full_build()
    workdir = tempfile.mkdtemp(prefix="bench-snapshot-")
    try:
        snapshot_dir = str(Path(workdir) / "snap")
        save_snapshot(
            snapshot_dir, observations=batch, host_features=host_features,
            model=model, priors_plan=priors, index=index,
            shard_count=SHARDS, step_size=STEP_SIZE,
            placement_workers=WORKERS)
        snapshot_bytes = sum(
            path.stat().st_size for path in Path(snapshot_dir).iterdir())

        def warm_restart():
            snapshot = open_snapshot(snapshot_dir)
            loaded_model = snapshot.model()
            loaded_priors = snapshot.priors_plan()
            loaded_index = snapshot.prediction_index()
            loaded_index.predict(probe, asn_db, feature_config)
            return loaded_model, loaded_priors, loaded_index

        # Equivalence first (the acceptance criterion): everything restored
        # from disk must be bit-identical to what the build produced.
        loaded_model, loaded_priors, loaded_index = warm_restart()
        assert loaded_model == model, \
            "snapshot model diverged from the built model"
        assert list(loaded_priors) == list(priors), \
            "snapshot priors plan diverged from the built plan"
        assert loaded_index.entries() == index.entries(), \
            "snapshot prediction index diverged from the built index"

        build_seconds = _best_seconds(full_build)
        warm_seconds = _best_seconds(warm_restart)
        warm_noverify_seconds = _best_seconds(
            lambda: open_snapshot(snapshot_dir, verify=False).model())

        # -- shard loading: mmap references vs queue-shipped payloads ------
        runtime = EngineRuntime(executor="pool", num_workers=WORKERS,
                                shard_count=SHARDS)
        try:
            snapshot = open_snapshot(snapshot_dir)
            resident = ResidentHostGroups.from_snapshot(runtime, snapshot)
            mmap_model = build_model_with_engine(host_features,
                                                 dataset=resident)
            assert mmap_model == model, \
                "model from mmap-resident shards diverged from the oracle"
            resident.release()

            def mmap_load():
                ResidentHostGroups.from_snapshot(runtime, snapshot).release()

            def queue_load():
                ResidentHostGroups(runtime, host_features,
                                   STEP_SIZE).release()

            mmap_seconds = _best_seconds(mmap_load)
            # The zero-copy ledger: every mmap load so far shipped only file
            # descriptors, never column bytes, through the worker queues.
            assert runtime.recovery_stats.shard_bytes_queued == 0, \
                "snapshot shard loads queued column bytes"
            queue_seconds = _best_seconds(queue_load)
            queued_bytes = runtime.recovery_stats.shard_bytes_queued
            assert queued_bytes > 0, \
                "queue-ship baseline unexpectedly shipped nothing"

            # -- elastic resize with snapshot-backed shards resident -------
            resident = ResidentHostGroups.from_snapshot(runtime, snapshot)
            ledger_before = runtime.recovery_stats.shard_bytes_queued
            start = time.perf_counter()
            runtime.resize(WORKERS + 1)
            grow_seconds = time.perf_counter() - start
            start = time.perf_counter()
            runtime.resize(WORKERS)
            shrink_seconds = time.perf_counter() - start
            migrated = runtime.recovery_stats.migrated_shards
            assert runtime.recovery_stats.shard_bytes_queued == \
                ledger_before, \
                "resize after a snapshot load re-shipped shard bytes"
            resized_model = build_model_with_engine(host_features,
                                                    dataset=resident)
            assert resized_model == model, \
                "model after resize diverged from the oracle"
            resident.release()
        finally:
            runtime.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "scale": MEDIUM_SCALE.name,
        "seed_fraction": SEED_FRACTION,
        "seed_hosts": len(host_features.ips),
        "workers": WORKERS,
        "shards": SHARDS,
        "snapshot_bytes": snapshot_bytes,
        "equivalence": ("loaded == built for model, priors plan, prediction "
                        "index, and mmap-resident/resized shard builds"),
        "rows": [
            {"path": "full build from seed observations",
             "seconds": build_seconds},
            {"path": "warm restart (open + artifacts + first lookup)",
             "seconds": warm_seconds},
            {"path": "warm restart model only (verify=False)",
             "seconds": warm_noverify_seconds},
            {"path": "shard load mmap refs (pool)", "seconds": mmap_seconds},
            {"path": "shard load queue-ship (pool)",
             "seconds": queue_seconds},
        ],
        "resize": {
            "grow_seconds": grow_seconds,
            "shrink_seconds": shrink_seconds,
            "migrated_shards": migrated,
            "queued_bytes_delta": 0,
            # Recorded for the report, never gated: at bench scale resize
            # cost is dominated by interpreter spawn, not shard movement.
            "floor_asserted": False,
        },
        "queue_ship_bytes": queued_bytes,
        # Latency parity is expected at this scale (shards are small); the
        # architectural claim is the zero-byte ledger asserted above, so the
        # ratio is reported without a floor.
        "mmap_floor_asserted": False,
    }


def test_snapshot_warm_restart_vs_full_build(run_once, universe,
                                             censys_dataset):
    results = run_once(run_snapshot_benchmark, universe, censys_dataset)

    seconds = {row["path"]: row["seconds"] for row in results["rows"]}
    build = seconds["full build from seed observations"]
    warm = seconds["warm restart (open + artifacts + first lookup)"]
    mmap_load = seconds["shard load mmap refs (pool)"]
    queue_load = seconds["shard load queue-ship (pool)"]
    warm_restart_speedup = build / warm
    results["warm_restart_speedup"] = round(warm_restart_speedup, 2)
    results["warm_restart_floor"] = WARM_RESTART_FLOOR
    results["mmap_vs_queue_ship"] = round(queue_load / mmap_load, 2)
    results["resize"]["remap_vs_reship"] = round(
        queue_load / results["resize"]["shrink_seconds"], 2)
    if RESULT_PATH.exists():
        merged = json.loads(RESULT_PATH.read_text())
        merged.update(results)
        results = merged
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print()
    print(format_table(
        ("path", "seconds", "vs full build"),
        [(row["path"], f"{row['seconds']:.4f}",
          f"{build / row['seconds']:.2f}x")
         for row in results["rows"]],
        title=(f"Snapshot persistence ({results['seed_hosts']} seed hosts, "
               f"{results['shards']} shards, {WORKERS} workers, "
               f"{results['snapshot_bytes'] / 1e6:.1f} MB on disk)"),
    ))
    resize = results["resize"]
    print(f"Warm restart vs full build: {warm_restart_speedup:.2f}x; "
          f"mmap vs queue-ship: {results['mmap_vs_queue_ship']:.2f}x; "
          f"resize grow {resize['grow_seconds']:.3f}s / shrink "
          f"{resize['shrink_seconds']:.3f}s, {resize['migrated_shards']} "
          f"shards migrated, 0 bytes queued "
          f"(written to {RESULT_PATH.name})")

    # Headline acceptance: restarting from disk must beat rebuilding from
    # the raw observations by a wide margin.
    assert warm_restart_speedup >= WARM_RESTART_FLOOR, \
        (f"warm restart only {warm_restart_speedup:.2f}x over full build "
         f"(floor {WARM_RESTART_FLOOR}x)")
