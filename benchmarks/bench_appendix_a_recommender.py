"""Appendix A -- recommendation systems for intelligent scanning.

Paper: a LightFM-style hybrid recommender trained on an 0.8 % seed of the LZR
dataset and asked for 100 port predictions per address finds at most 47 % of
all services (worse than exhaustively probing ports in popularity order with
the same budget) and only 1.5 % of normalized services, because interaction-
level (per-service) features cannot be represented.

The reproduction trains the numpy hybrid matrix-factorization model on the
seed half of the LZR-like dataset, scales the per-address recommendation
budget to the dataset's port domain, and compares against the same-budget
popularity heuristic.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.recommender import RecommenderConfig, evaluate_recommender
from repro.datasets import split_seed_test


def test_appendix_a_recommender(run_once, universe, lzr_dataset):
    split = split_seed_test(lzr_dataset, seed_fraction=lzr_dataset.sample_fraction * 0.4,
                            seed=2)
    test_pairs = split.test_pairs()
    ports_in_play = sorted({port for _, port in lzr_dataset.pairs()})
    # The paper recommends 100 of 65,535 ports (~0.15 %); give the model a
    # proportionally larger but still small budget for the smaller domain.
    recommendations = max(2, len(ports_in_play) // 10)
    config = RecommenderConfig(recommendations_per_ip=recommendations, epochs=6, seed=3)

    result = run_once(evaluate_recommender, lzr_dataset, split.seed_observations,
                      test_pairs, config)

    # Same-budget popularity heuristic: probe the N most popular ports on every
    # test address.
    registry = lzr_dataset.port_registry()
    popular = set(registry.top_ports(recommendations))
    heuristic_found = sum(1 for pair in test_pairs if pair[1] in popular)
    heuristic_fraction = heuristic_found / len(test_pairs) if test_pairs else 0.0

    print()
    print(format_table(
        ("system", "fraction of services", "normalized services", "probes"),
        [
            ("hybrid recommender", f"{result.fraction_found:.1%}",
             f"{result.normalized_fraction:.1%}", result.probes),
            (f"top-{recommendations} popular ports per IP",
             f"{heuristic_fraction:.1%}", "-", result.probes),
        ],
        title="Appendix A (reproduced): recommender vs popularity heuristic",
    ))
    print("(Paper: the recommender finds at most 47% of services -- consistently "
          "worse than popularity-ordered probing -- and 1.5% of normalized "
          "services.  The synthetic universe's subnet clustering is far "
          "stronger than the real Internet's, so the recommender's cold-start "
          "network features help it more here; the preserved claims are that "
          "it still misses a large share of services and performs much worse "
          "on the normalized metric.)")

    # Shape checks: the recommender leaves a substantial share of services
    # undiscovered and is much weaker on the normalized (uncommon-port) metric
    # than on the raw fraction -- the structural reason the paper abandons it.
    assert result.fraction_found < 0.9
    assert result.normalized_fraction < result.fraction_found
    assert result.normalized_fraction < 0.6
