"""Figure 2 -- finding services: coverage versus bandwidth.

Paper (Figures 2a-2d): against 100 % scans of the top-2K ports (Censys) and a
1 % all-port scan (LZR), GPS finds the large majority of services -- and a
substantial share of normalized services -- using a fraction of the bandwidth
of exhaustively probing ports in the optimal (most-populated-first) order, and
the bandwidth cost rises steeply for the last few percent of services.

Reproduced here on the synthetic universe: one benchmark per sub-figure, each
printing the GPS curve, the optimal-port-order reference and the savings at a
set of coverage targets.
"""

from __future__ import annotations

from repro.analysis import format_curve, run_coverage_experiment
from repro.analysis.coverage import coverage_summary_rows
from repro.analysis.reporting import format_ratio, format_table


def _report(experiment, title, normalized=False):
    print()
    print(format_curve(experiment.gps_points, label=f"{title}: GPS",
                       normalized=normalized))
    print(format_curve(experiment.optimal_points,
                       label=f"{title}: exhaustive, optimal order",
                       normalized=normalized))
    print(format_table(
        ("coverage target", "GPS bandwidth (100% scans)", "savings vs optimal order"),
        coverage_summary_rows(experiment, targets=(0.5, 0.7, 0.8, 0.9)),
        title=f"{title}: bandwidth savings",
    ))


def test_fig2a_service_discovery_censys(run_once, universe, censys_dataset, scale):
    """Figure 2a: fraction of all services, Censys-like dataset, 2-3 % seed."""
    experiment = run_once(run_coverage_experiment, universe, censys_dataset,
                          seed_fraction=scale.default_seed_fraction, step_size=16)
    _report(experiment, "Fig 2a (services, censys-like)")
    assert experiment.final_fraction() > 0.6
    # GPS never costs more than exhaustively sweeping every dataset port.
    assert experiment.gps_points[-1].full_scans < len(censys_dataset.port_domain)


def test_fig2b_service_discovery_lzr(run_once, universe, lzr_dataset):
    """Figure 2b: fraction of all services, LZR-like all-port dataset."""
    experiment = run_once(run_coverage_experiment, universe, lzr_dataset,
                          seed_fraction=lzr_dataset.sample_fraction / 2,
                          step_size=16, seed_cost_mode="available")
    _report(experiment, "Fig 2b (services, lzr-like)")
    assert experiment.final_fraction() > 0.8
    savings = experiment.savings_at(min(0.9, experiment.final_fraction() * 0.98))
    print(f"Savings vs optimal port-order near top coverage: {format_ratio(savings)}"
          f"  (paper: 6x at 92.5% of services)")
    assert savings is not None and savings > 1.0


def test_fig2c_normalized_discovery_censys(run_once, universe, censys_dataset, scale):
    """Figure 2c: normalized services, Censys-like dataset."""
    experiment = run_once(run_coverage_experiment, universe, censys_dataset,
                          seed_fraction=scale.default_seed_fraction, step_size=16)
    _report(experiment, "Fig 2c (normalized, censys-like)", normalized=True)
    savings = experiment.savings_at(0.3, normalized=True)
    print(f"Savings at 30% normalized coverage: {format_ratio(savings)} "
          f"(paper: 100x at 46%, shrinking to 1.5x at 67%)")
    assert experiment.final_normalized_fraction() > 0.2
    assert savings is None or savings > 1.0


def test_fig2d_normalized_discovery_lzr(run_once, universe, lzr_dataset):
    """Figure 2d: normalized services, LZR-like all-port dataset."""
    experiment = run_once(run_coverage_experiment, universe, lzr_dataset,
                          seed_fraction=lzr_dataset.sample_fraction / 2,
                          step_size=16, seed_cost_mode="available")
    _report(experiment, "Fig 2d (normalized, lzr-like)", normalized=True)
    # The seed (an already-available dataset) covers the low-coverage region
    # for free, so measure the savings near the top of GPS's curve where real
    # scanning bandwidth has been spent.
    target = experiment.final_normalized_fraction() * 0.95
    savings = experiment.savings_at(target, normalized=True)
    print(f"Savings at {target:.0%} normalized coverage: {format_ratio(savings)} "
          f"(paper: 15x at 17%, 1.7x at 38%)")
    assert experiment.final_normalized_fraction() > 0.4
    assert savings is not None and savings > 1.0
