"""Section 3 -- service churn between scans.

Paper: two scans of the same 0.1 % of the address space across all ports,
taken ten days apart, disagree on 9 % of all services and 15 % of normalized
services -- the motivation for GPS's wall-clock constraint (slow predictions
go stale).  The reproduction applies the churn model to the synthetic universe
and replays the measurement.
"""

from __future__ import annotations

from repro.analysis import format_table, run_churn_measurement
from repro.internet.churn import ChurnConfig


def test_sec3_churn_measurement(run_once, universe):
    measurement = run_once(run_churn_measurement, universe,
                           ChurnConfig(days=10, seed=17))

    print()
    print(format_table(
        ("quantity", "value", "paper"),
        [
            ("days between scans", measurement.days, 10),
            ("services that disappeared", f"{measurement.service_loss:.1%}", "9%"),
            ("normalized services that disappeared",
             f"{measurement.normalized_service_loss:.1%}", "15%"),
        ],
        title="Section 3 (reproduced): churn between scans",
    ))

    # Shape: a meaningful, double-digit-ish share of services disappears within
    # the window, which is what makes slow (weeks-long) prediction pipelines
    # operate on stale data.
    assert 0.03 <= measurement.service_loss <= 0.4
    assert 0.03 <= measurement.normalized_service_loss <= 0.4
