"""Priors planning and prediction scanning -- legacy vs fused/batched paths.

PR 1 moved model building onto the fused streaming engine; this benchmark
covers the other two hot paths named in ROADMAP's scaling candidates:

* **priors planning** (Section 5.3): the legacy planner's per-host dict loops
  versus :func:`repro.core.priors.build_priors_plan_with_engine`, which
  compiles the query onto dictionary-encoded columns
  (:class:`repro.engine.fused.FusedPartnerPlan`) and folds coverage counts
  inline, swept over the serial/thread/process backends;
* **prediction scanning** (Section 5.4): pair-by-pair
  :meth:`~repro.scanner.pipeline.ScanPipeline.scan_pairs` versus the batched
  *columnar* per-(prefix, port) path (flat observation columns, per-hit
  objects materialized only at the API boundary), on a realistic predictions
  workload (the most-predictive-feature index applied to first-service
  observations of the dataset's test half).

Results are printed as tables and written to ``BENCH_priors.json`` at the
repository root (``benchmarks/bench_scan_columnar.py`` adds its
columnar-vs-per-object layer breakdown to the same file).  Headline
assertions: the fused serial priors build is >= 2x faster than the legacy
planner, the batched ZMap layer is >= 1.3x faster than per-pair probing, the
columnar pipeline is >= 1.6x faster end to end than the per-object pairwise
path, and all paths produce identical plans / observations / ledger charges.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features
from repro.core.model import build_model
from repro.core.predictions import (
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import build_priors_plan, build_priors_plan_with_engine
from repro.datasets.split import split_seed_test
from repro.engine.parallel import ExecutorConfig
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import group_pairs

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_priors.json"

#: Seed fraction for the priors workload.  Heavier than the default GPS run so
#: the legacy planner takes ~100 ms -- enough work for stable timing and for
#: the per-predictor amortization the fused path relies on to be visible (the
#: paper's seeds are millions of hosts; bigger is more faithful, not less).
PRIORS_SEED_FRACTION = 0.1

#: (backend, workers) sweep; workers=1 is the serial reference configuration.
SWEEP = (
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)

REPEATS = 3

#: Speedup floors the benchmark asserts: (fused priors serial, batched zmap
#: layer, columnar pipeline end-to-end).  On a quiet dev machine the measured
#: ratios are ~2.4x, ~2x and ~2.2x.  ``BENCH_SMOKE=1`` (set by CI, whose
#: shared runners time noisily) relaxes the floors to "regressed to roughly
#: parity" -- a real regression (losing the algorithmic win) still fails
#: loudly, runner jitter does not.  The equivalence assertions are never
#: relaxed.
SPEEDUP_FLOORS = ((1.3, 1.05, 1.05) if os.environ.get("BENCH_SMOKE") == "1"
                  else (2.0, 1.3, 1.6))


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _observation_key(observations):
    return sorted((obs.ip, obs.port, obs.protocol,
                   tuple(sorted(obs.app_features.items())), obs.ttl)
                  for obs in observations)


def run_priors_scaling(universe, dataset):
    """Time legacy vs fused priors planning across executor configurations."""
    split = split_seed_test(dataset, PRIORS_SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    model = build_model(host_features)
    reference = build_priors_plan(host_features, model, 16, dataset.port_domain)

    rows = []
    legacy_seconds = _best_seconds(
        lambda: build_priors_plan(host_features, model, 16, dataset.port_domain))
    rows.append({"mode": "legacy", "backend": "serial", "workers": 1,
                 "seconds": legacy_seconds})
    for backend, workers in SWEEP:
        executor = ExecutorConfig(backend=backend, workers=workers)
        plan = build_priors_plan_with_engine(host_features, model, 16,
                                             dataset.port_domain, executor)
        assert plan == reference, \
            f"fused/{backend}x{workers} priors plan diverged from the oracle"
        seconds = _best_seconds(
            lambda: build_priors_plan_with_engine(host_features, model, 16,
                                                  dataset.port_domain, executor))
        rows.append({"mode": "fused", "backend": backend, "workers": workers,
                     "seconds": seconds})
    return {
        "seed_hosts": len(host_features),
        "predictors": model.predictor_count(),
        "plan_entries": len(reference),
        "rows": rows,
    }


def run_prediction_index(universe, dataset):
    """Time the legacy vs fused Section 5.4 prediction-index build.

    Equality is asserted entry for entry (bit-identical probabilities and
    tie-breaks); the timing rows record the argmax engine's margin without a
    speedup floor of their own -- the index build is an order of magnitude
    cheaper than the scans it schedules.
    """
    split = split_seed_test(dataset, PRIORS_SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    model = build_model(host_features)
    legacy = PredictiveFeatureIndex.from_seed(host_features, model,
                                              port_domain=dataset.port_domain)
    fused = build_prediction_index_with_engine(host_features, model,
                                               port_domain=dataset.port_domain)
    assert fused.entries() == legacy.entries(), \
        "fused prediction index diverged from the from_seed oracle"
    legacy_seconds = _best_seconds(
        lambda: PredictiveFeatureIndex.from_seed(host_features, model,
                                                 port_domain=dataset.port_domain))
    fused_seconds = _best_seconds(
        lambda: build_prediction_index_with_engine(host_features, model,
                                                   port_domain=dataset.port_domain))
    return {
        "index_entries": len(legacy),
        "legacy_seconds": legacy_seconds,
        "fused_seconds": fused_seconds,
        "fused_speedup": round(legacy_seconds / fused_seconds, 2),
    }


def run_scan_batching(universe, dataset):
    """Time pair-by-pair vs batched prediction scans on the same workload."""
    split = split_seed_test(dataset, PRIORS_SEED_FRACTION, seed=0)
    host_features = extract_host_features(split.seed_observations,
                                          universe.topology.asn_db, FeatureConfig())
    model = build_model(host_features)
    index = PredictiveFeatureIndex.from_seed(host_features, model,
                                             port_domain=dataset.port_domain)
    # The priors scan's output shape: the first observed service of every
    # not-yet-known host, from which the prediction list is derived.
    seen: set = set()
    firsts = []
    for obs in split.test_observations:
        if obs.ip not in seen:
            seen.add(obs.ip)
            firsts.append(obs)
    predictions = index.predict(firsts, universe.topology.asn_db, FeatureConfig())
    pairs = [prediction.pair() for prediction in predictions]
    batches = group_pairs(pairs, 16)

    unbatched_pipeline = ScanPipeline(universe)
    unbatched_obs = unbatched_pipeline.scan_pairs(pairs)
    batched_pipeline = ScanPipeline(universe)
    batched_obs = batched_pipeline.scan_pairs(pairs, batch_prefix_len=16)
    assert _observation_key(unbatched_obs) == _observation_key(batched_obs), \
        "batched scan observed different services than the per-pair scan"
    assert unbatched_pipeline.ledger.probes == batched_pipeline.ledger.probes
    assert unbatched_pipeline.ledger.responses == batched_pipeline.ledger.responses

    unbatched_seconds = _best_seconds(lambda: ScanPipeline(universe).scan_pairs(pairs))
    batched_seconds = _best_seconds(
        lambda: ScanPipeline(universe).scan_pairs(pairs, batch_prefix_len=16))
    zmap_unbatched_seconds = _best_seconds(
        lambda: ScanPipeline(universe).zmap.scan_pairs(pairs))
    zmap_batched_seconds = _best_seconds(
        lambda: ScanPipeline(universe).zmap.scan_pair_batches(batches))
    return {
        "predictions": len(pairs),
        "batches": len(batches),
        "mean_batch_size": round(len(pairs) / max(1, len(batches)), 1),
        "responsive_targets": len(unbatched_obs),
        "unbatched_seconds": unbatched_seconds,
        "batched_seconds": batched_seconds,
        "end_to_end_speedup": round(unbatched_seconds / batched_seconds, 2),
        "zmap_unbatched_seconds": zmap_unbatched_seconds,
        "zmap_batched_seconds": zmap_batched_seconds,
        "zmap_layer_speedup": round(zmap_unbatched_seconds / zmap_batched_seconds, 2),
    }


def run_priors_and_scan_benchmark(universe, dataset):
    return {
        "scale": MEDIUM_SCALE.name,
        "priors_seed_fraction": PRIORS_SEED_FRACTION,
        "priors": run_priors_scaling(universe, dataset),
        "prediction_index": run_prediction_index(universe, dataset),
        "scan": run_scan_batching(universe, dataset),
    }


def test_priors_and_scan_scaling(run_once, universe, censys_dataset):
    results = run_once(run_priors_and_scan_benchmark, universe, censys_dataset)

    priors = results["priors"]
    by_config = {(r["mode"], r["backend"], r["workers"]): r["seconds"]
                 for r in priors["rows"]}
    legacy_seconds = by_config[("legacy", "serial", 1)]
    speedup = legacy_seconds / by_config[("fused", "serial", 1)]
    results["priors_fused_serial_speedup"] = round(speedup, 2)
    # Read-merge-write: bench_scan_columnar.py keeps its section in the same
    # file, and running this benchmark alone must not delete it.
    try:
        merged = json.loads(RESULT_PATH.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        merged = {}
    merged.update(results)
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    print()
    print(format_table(
        ("backend", "workers", "seconds", "vs legacy serial"),
        [
            (backend, workers,
             f"{by_config[('fused', backend, workers)]:.4f}",
             f"{legacy_seconds / by_config[('fused', backend, workers)]:.2f}x")
            for backend, workers in SWEEP
        ],
        title=(f"Priors planning: legacy serial {legacy_seconds:.4f}s vs fused "
               f"({priors['seed_hosts']} seed hosts, {priors['predictors']} predictors)"),
    ))
    index = results["prediction_index"]
    print(f"Prediction index ({index['index_entries']} entries): "
          f"legacy {index['legacy_seconds']:.4f}s vs fused "
          f"{index['fused_seconds']:.4f}s -- {index['fused_speedup']}x")
    scan = results["scan"]
    print(format_table(
        ("path", "pipeline (s)", "zmap layer (s)"),
        [
            ("per-pair", f"{scan['unbatched_seconds']:.4f}",
             f"{scan['zmap_unbatched_seconds']:.4f}"),
            ("batched", f"{scan['batched_seconds']:.4f}",
             f"{scan['zmap_batched_seconds']:.4f}"),
        ],
        title=(f"Prediction scan: {scan['predictions']} targets in "
               f"{scan['batches']} batches (mean {scan['mean_batch_size']}) -- "
               f"end-to-end {scan['end_to_end_speedup']}x, "
               f"zmap layer {scan['zmap_layer_speedup']}x"),
    ))
    print(f"Fused serial priors speedup: {speedup:.2f}x "
          f"(written to {RESULT_PATH.name})")

    # Headline acceptance: compiling the planner onto the fused layer must
    # keep the priors build >= 2x faster than the legacy dict loops, the
    # batched ZMap layer must keep a clear margin over per-pair probing, and
    # the columnar scan path must keep the full pipeline >= 1.6x over the
    # per-object pairwise path (floors relaxed under BENCH_SMOKE=1 for noisy
    # CI runners).
    priors_floor, zmap_floor, pipeline_floor = SPEEDUP_FLOORS
    assert speedup >= priors_floor, \
        f"fused priors speedup regressed to {speedup:.2f}x (floor {priors_floor}x)"
    assert scan["zmap_layer_speedup"] >= zmap_floor, \
        (f"batched zmap speedup regressed to {scan['zmap_layer_speedup']:.2f}x "
         f"(floor {zmap_floor}x)")
    assert scan["end_to_end_speedup"] >= pipeline_floor, \
        (f"columnar pipeline speedup regressed to "
         f"{scan['end_to_end_speedup']:.2f}x (floor {pipeline_floor}x)")
