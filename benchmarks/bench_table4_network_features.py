"""Table 4 / Appendix C -- network-layer feature candidates.

Paper: when GPS is configured with every candidate network feature (the /16 to
/23 subnetworks plus the ASN), the ASN (36 %) and the /16 subnetwork (20 %)
are the most predictive for the majority of services, with predictiveness
falling as subnetworks get smaller -- which is why the final GPS configuration
keeps only the ASN and the /16.
"""

from __future__ import annotations

from repro.analysis import format_table, network_feature_predictiveness
from repro.datasets import split_seed_test


def test_table4_network_feature_candidates(run_once, universe, lzr_dataset):
    split = split_seed_test(lzr_dataset, seed_fraction=lzr_dataset.sample_fraction / 2,
                            seed=0)
    shares = run_once(network_feature_predictiveness, lzr_dataset, universe,
                      split.seed_observations)

    print()
    print(format_table(
        ("network feature", "% services most predictive"),
        [(share.label(), f"{share.service_share:.1%}") for share in shares],
        title="Table 4 (reproduced): network feature candidates",
    ))
    print("(Paper: ASN 36%, /16 20%, /17-/23 decreasing from 8% to 3%.)")

    assert shares
    by_kind = {share.feature_type[1]: share.service_share for share in shares}
    # Larger aggregates are more predictive than the smallest candidate subnets.
    coarse = by_kind.get("asn", 0.0) + by_kind.get("subnet16", 0.0)
    fine = by_kind.get("subnet22", 0.0) + by_kind.get("subnet23", 0.0)
    assert coarse > fine
    # The ASN or /16 tops the table, as in the paper.
    assert shares[0].feature_type[1] in ("asn", "subnet16")
