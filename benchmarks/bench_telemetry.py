"""Telemetry overhead: instrumented vs bare on the two hot paths.

The telemetry subsystem promises to be cheap enough to leave on in
production: counters under one registry lock, latency histograms behind a
sampling knob, spans only at phase granularity.  This benchmark prices that
promise on the two paths an operator would instrument first:

* **warm model build** -- ``build_prepared_model`` on a persistent serial
  engine runtime, telemetry on vs off (the build path: per-task timings,
  resident gauges, phase counters);
* **warm serving lookup** -- sequential ``lookup_ip`` requests against a
  warm :class:`~repro.serving.service.GPSService`, telemetry on vs off
  (the serve path: per-request counters, latency histograms, micro-batch
  accounting).

Equivalence is asserted before any timing is trusted: the instrumented
build's predictions and the instrumented service's replies must be
bit-identical to the bare legs'.

Results go to ``BENCH_telemetry.json``.  Headline assertion: the bare leg
is at most ~5 % faster than the instrumented leg (``off_vs_on >= 0.95``;
relaxed to 0.90 under ``BENCH_SMOKE=1`` where single-round noise on shared
runners dominates).  The floor is recorded in the JSON so
``bench_report.py --check`` judges each file by the conditions it was
produced under.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import GPSConfig
from repro.engine.runtime import EngineRuntime
from repro.scanner.pipeline import ScanPipeline
from repro.serving import GPSService, InProcessClient, ServingConfig
from repro.serving.registry import build_prepared_model
from repro.telemetry import Telemetry

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SEED_FRACTION = 0.1

#: Build repetitions per leg (best-of; the build is the expensive part).
BUILD_REPEATS = 3 if SMOKE else 5

#: Sequential warm lookups per timing round, and rounds per leg (best-of).
WARM_LOOKUPS = 60
LOOKUP_ROUNDS = 3

#: The instrumented leg must keep the bare leg's advantage under ~5 %
#: (10 % in smoke mode, where runner noise on a sub-second measurement can
#: exceed the instrumentation itself).
OFF_VS_ON_FLOOR = 0.90 if SMOKE else 0.95


def _gps_config() -> GPSConfig:
    return GPSConfig(use_engine=True, executor="serial")


def _build_leg(universe, seed, telemetry):
    """Best-of-N warm builds on one persistent runtime; returns (s, preds)."""
    runtime = EngineRuntime(executor="serial", telemetry=telemetry)
    pipeline = ScanPipeline(universe, telemetry=telemetry)
    best = float("inf")
    predictions = None
    try:
        for _ in range(BUILD_REPEATS):
            start = time.perf_counter()
            prepared = build_prepared_model("bench", pipeline, seed,
                                            _gps_config(), runtime)
            best = min(best, time.perf_counter() - start)
            ip = seed.observations[0].ip
            predictions = prepared.predict(
                prepared.known_observations(ip),
                known_pairs=prepared.known_pairs_for(ip))
            prepared.release()
    finally:
        runtime.close()
    return best, tuple(predictions)


def _lookup_leg(universe, seed, telemetry_enabled):
    """Best-of-N sequential warm-lookup rounds; returns (s/lookup, replies)."""
    ips = sorted({obs.ip for obs in seed.observations})[:WARM_LOOKUPS]
    loop = asyncio.new_event_loop()
    try:
        service = GPSService(ServingConfig(
            executor="serial", request_timeout_s=120.0,
            telemetry_enabled=telemetry_enabled))
        loop.run_until_complete(service.load_model(
            "default", ScanPipeline(universe), seed, _gps_config()))
        client = InProcessClient(service)

        async def sequential():
            return [await client.lookup_ip("default", ip) for ip in ips]

        best = float("inf")
        replies = None
        for _ in range(LOOKUP_ROUNDS):
            start = time.perf_counter()
            replies = loop.run_until_complete(sequential())
            best = min(best, (time.perf_counter() - start) / len(ips))
        loop.run_until_complete(service.close())
    finally:
        loop.close()
    return best, tuple(r.predictions for r in replies)


def run_telemetry_benchmark(universe):
    pipeline = ScanPipeline(universe)
    seed = pipeline.seed_scan(SEED_FRACTION, seed=0)

    build_off, predictions_off = _build_leg(universe, seed, None)
    build_on, predictions_on = _build_leg(universe, seed, Telemetry())
    assert predictions_on == predictions_off, \
        "telemetry changed the build's predictions"

    lookup_off, replies_off = _lookup_leg(universe, seed, False)
    lookup_on, replies_on = _lookup_leg(universe, seed, True)
    assert replies_on == replies_off, \
        "telemetry changed a served lookup reply"

    return {
        "scale": MEDIUM_SCALE.name,
        "smoke": SMOKE,
        "seed_fraction": SEED_FRACTION,
        "seed_services": len(seed.observations),
        "equivalence": "instrumented build + served replies == bare legs",
        "model_build": {
            "off_seconds": build_off,
            "on_seconds": build_on,
            "off_vs_on": round(build_off / build_on, 4),
            "floor": OFF_VS_ON_FLOOR,
        },
        "warm_lookup": {
            "off_seconds": lookup_off,
            "on_seconds": lookup_on,
            "off_vs_on": round(lookup_off / lookup_on, 4),
            "floor": OFF_VS_ON_FLOOR,
        },
    }


def test_telemetry_overhead(run_once, universe):
    results = run_once(run_telemetry_benchmark, universe)

    if RESULT_PATH.exists():
        merged = json.loads(RESULT_PATH.read_text())
        merged.update(results)
        results = merged
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    build = results["model_build"]
    lookup = results["warm_lookup"]
    print()
    print(format_table(
        ("path", "telemetry off", "telemetry on", "off/on"),
        [
            ("warm model build",
             f"{build['off_seconds']:.4f}s", f"{build['on_seconds']:.4f}s",
             f"{build['off_vs_on']:.3f}"),
            ("warm serving lookup",
             f"{lookup['off_seconds'] * 1e3:.3f}ms",
             f"{lookup['on_seconds'] * 1e3:.3f}ms",
             f"{lookup['off_vs_on']:.3f}"),
        ],
        title=(f"telemetry overhead ({results['seed_services']} seed "
               f"services; floor {OFF_VS_ON_FLOOR})"),
    ))
    print(f"written to {RESULT_PATH.name}")

    for label, section in (("model build", build), ("warm lookup", lookup)):
        assert section["off_vs_on"] >= OFF_VS_ON_FLOOR, \
            (f"telemetry overhead on {label} too high: off/on "
             f"{section['off_vs_on']:.3f} < floor {OFF_VS_ON_FLOOR}")
