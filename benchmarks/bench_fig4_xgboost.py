"""Figure 4 -- GPS versus the XGBoost-style sequential scanner (Section 6.4).

Paper: across 19 popular ports, GPS needs on average 5.7x (up to 28x) less
bandwidth than the XGBoost scanner to collect its minimum set of predictive
services (Fig. 4a), needs less bandwidth on 16 of 19 ports to then scan the
target port at matched coverage (Fig. 4b), and finds 98.5 % of normalized
services over those ports with 3x less total bandwidth (Fig. 4c).

The original scanner is closed source; the reproduction rebuilds its structure
(sequential per-port boosted-tree classifiers over earlier-port responses plus
a network-neighbourhood predictor) and compares both systems on the same
seed/test split of the synthetic Censys-like dataset.
"""

from __future__ import annotations

from repro.analysis import format_curve, format_table, run_xgboost_comparison
from repro.analysis.reporting import format_ratio


def test_fig4_gps_vs_xgboost(run_once, universe, censys_dataset):
    ports = censys_dataset.port_registry().top_ports(19)
    comparison = run_once(run_xgboost_comparison, universe, censys_dataset,
                          ports=ports, seed_fraction=0.005, step_size=16)

    print()
    print(format_table(
        ("port", "GPS prior bw", "XGB prior bw", "GPS port bw", "XGB port bw",
         "GPS coverage", "XGB coverage"),
        [
            (entry.port,
             f"{entry.gps_prior_full_scans:.2f}", f"{entry.xgb_prior_full_scans:.2f}",
             f"{entry.gps_port_full_scans:.4f}", f"{entry.xgb_port_full_scans:.4f}",
             f"{entry.gps_coverage:.2f}", f"{entry.xgb_coverage:.2f}")
            for entry in comparison.ports
        ],
        title="Fig 4a/4b (reproduced): per-port bandwidth, units of 100% scans",
    ))

    prior_savings = comparison.average_prior_savings()
    cheaper_ports = comparison.ports_where_gps_cheaper()
    print(f"Average prior-bandwidth ratio (XGB / GPS): {format_ratio(prior_savings)} "
          f"(paper: 5.7x on average, up to 28x)")
    print(f"Ports where GPS's target-port scan is cheaper: {cheaper_ports} of "
          f"{len(comparison.ports)} (paper: 16 of 19)")

    print(format_curve(comparison.gps_normalized_curve,
                       label="Fig 4c: GPS normalized coverage over comparison ports",
                       normalized=True))
    print(format_curve(comparison.xgb_normalized_curve,
                       label="Fig 4c: XGBoost scanner normalized coverage",
                       normalized=True))

    # Shape checks: GPS needs less prior bandwidth on average and wins the
    # per-port comparison on the majority of ports.
    assert prior_savings is not None and prior_savings > 1.0
    assert cheaper_ports >= len(comparison.ports) // 2
    # GPS reaches at least the normalized coverage of the baseline overall.
    assert (comparison.gps_normalized_curve[-1].normalized_fraction
            >= comparison.xgb_normalized_curve[-1].normalized_fraction * 0.9)
