"""Figure 5 / Appendix D.1 -- varying the scanning step size.

Paper: a smaller scanning step (a more specific prefix, e.g. /20) saves
bandwidth while finding the first services but ultimately finds fewer services
than a larger step (e.g. /12 or /0), because hosts outside the scanned
subnetworks are never discovered.  No configuration finds more than ~82 % of
normalized services cheaper than exhaustive probing.
"""

from __future__ import annotations

from repro.analysis import format_table, run_step_size_sweep
from repro.core.metrics import bandwidth_to_reach


def test_fig5_step_size_sweep(run_once, universe, censys_dataset, scale):
    step_sizes = (8, 12, 16, 20)
    results = run_once(run_step_size_sweep, universe, censys_dataset,
                       seed_fraction=scale.default_seed_fraction,
                       step_sizes=step_sizes)

    rows = []
    for step_size in step_sizes:
        experiment = results[step_size]
        early = bandwidth_to_reach(experiment.gps_points, 0.25, normalized=True)
        rows.append((
            f"/{step_size}",
            "n/a" if early is None else f"{early:.1f}",
            f"{experiment.final_normalized_fraction():.1%}",
            f"{experiment.final_fraction():.1%}",
            f"{experiment.gps_points[-1].full_scans:.1f}",
        ))

    print()
    print(format_table(
        ("step size", "bandwidth to 25% normalized", "final normalized",
         "final fraction", "total bandwidth"),
        rows,
        title="Fig 5 (reproduced): varying the scanning step size",
    ))
    print("(Paper: /20 needs an order of magnitude less bandwidth than /12 for "
          "the first 25% of normalized services but tops out lower.)")

    # Shape checks: the smallest step size (/20) is the cheapest to reach the
    # first normalized services; a larger step (/8 or /12) reaches the highest
    # final coverage; total bandwidth grows as the step covers more addresses.
    early_20 = bandwidth_to_reach(results[20].gps_points, 0.25, normalized=True)
    early_12 = bandwidth_to_reach(results[12].gps_points, 0.25, normalized=True)
    if early_20 is not None and early_12 is not None:
        assert early_20 <= early_12
    assert results[8].gps_points[-1].full_scans > results[20].gps_points[-1].full_scans
    assert (max(results[s].final_normalized_fraction() for s in (8, 12))
            >= results[20].final_normalized_fraction())
