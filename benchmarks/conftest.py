"""Shared fixtures for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper against the
same medium-scale synthetic universe.  The universe and the two ground-truth
datasets are built once per session; each benchmark then runs its experiment
(usually once, via ``benchmark.pedantic``) and prints the rows/series the
paper reports so that ``pytest benchmarks/ --benchmark-only`` leaves a full,
readable record of the reproduction next to the timing numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import (
    MEDIUM_SCALE,
    make_censys_dataset,
    make_lzr_dataset,
    make_universe,
)


@pytest.fixture(scope="session")
def scale():
    """The experiment scale every benchmark uses."""
    return MEDIUM_SCALE


@pytest.fixture(scope="session")
def universe(scale):
    """The medium-scale synthetic universe (deterministic)."""
    return make_universe(scale, seed=3)


@pytest.fixture(scope="session")
def censys_dataset(universe, scale):
    """Censys-like ground truth: 100 % coverage of the top ports."""
    return make_censys_dataset(universe, scale)


@pytest.fixture(scope="session")
def lzr_dataset(universe, scale):
    """LZR-like ground truth: sampled scan across all ports (>2 IPs per port)."""
    return make_lzr_dataset(universe, scale)


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and (for the larger figures) take
    seconds, so a single timed round is both sufficient and honest.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
