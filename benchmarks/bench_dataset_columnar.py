"""Columnar seed ingest vs the object path -- dataset build + feature extraction.

PRs 1-4 made every Table 2 "computation" query fused and columnar, but the
*input* path still materialized one ``ScanObservation`` (plus a banner-dict
copy) per service and re-scanned every banner mapping per observation during
feature extraction.  This benchmark times the retired object path against the
columnar ingest that replaced it:

* **object path** -- build the ground-truth dataset as object rows (the
  historical ``_observation_from_record`` loop, copying each record's banner
  dict) and run ``extract_host_features`` over the rows;
* **columnar path** -- fold the universe's records straight into
  ``ObservationBatch`` columns (``build_full_dataset``; one identity-cached
  banner-id lookup per service, no copies) and run
  ``extract_host_features_columns`` over the columns (banner scans memoized
  per interned banner id, encoded predictor runs memoized per
  (port, banner, network) combination).

Results are printed and written to ``BENCH_dataset.json`` at the repository
root.  Headline assertion: columnar dataset build + feature extraction is
>= 1.5x the object path end to end (relaxed to 1.2x under ``BENCH_SMOKE=1``
for shared-runner jitter).  A second test times the serial columnar model
build with the stdlib per-row fold against the vectorized numpy kernels over
the same column buffers (``column_backend="numpy"``); floor >= 2x.  The
equivalence assertions -- columnar rows == object rows, decoded predictor
runs == the object extraction's tuples, fused model off the columns == the
oracle model, numpy model == stdlib model -- are never relaxed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import format_table
from repro.analysis.scenarios import MEDIUM_SCALE
from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features, extract_host_features_columns
from repro.core.model import build_model, build_model_with_engine
from repro.datasets.builders import _observation_from_record, build_full_dataset
from repro.engine.columns import numpy_available

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataset.json"

REPEATS = 3

#: Headline floor: the columnar ingest must beat the object path end to end.
#: Measured locally the ratio is well above 2x (no per-service object or
#: banner copy, one banner scan per distinct banner instead of per service);
#: 1.5x is the acceptance floor, relaxed for CI runner jitter only.
DATASET_FLOOR = 1.5
SMOKE_FLOOR = 1.2

#: The numpy fold kernels must beat the stdlib per-row fold >= 2x on the
#: serial columnar model build (relaxed under smoke for runner jitter).
MODEL_FOLD_FLOOR = 2.0 if os.environ.get("BENCH_SMOKE") != "1" else 1.5


def _best_seconds(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_results(update: dict) -> None:
    """Merge a section into BENCH_dataset.json without clobbering siblings."""
    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results.update(update)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _object_path(universe, asn_db, config):
    """The retired ingest: object rows with banner-dict copies, then the
    per-observation object extraction."""
    observations = [_observation_from_record(record)
                    for record in universe.real_services()]
    return extract_host_features(observations, asn_db, config)


def _columnar_path(universe, asn_db, config):
    """The columnar ingest: records -> ObservationBatch columns -> encoded
    host/service/predictor columns."""
    dataset = build_full_dataset(universe)
    return extract_host_features_columns(dataset.columns(), asn_db, config)


def run_dataset_benchmark(universe):
    config = FeatureConfig()
    asn_db = universe.topology.asn_db

    # Equivalence first; never relaxed.
    oracle = _object_path(universe, asn_db, config)
    columns = _columnar_path(universe, asn_db, config)
    dataset = build_full_dataset(universe)
    object_rows = [_observation_from_record(record)
                   for record in universe.real_services()]
    assert dataset.observations == object_rows, \
        "columnar dataset rows diverged from the object builder"
    assert columns.ips == list(oracle), \
        "columnar extraction visits different hosts than the object path"
    for g in range(0, len(columns), max(1, len(columns) // 200)):
        host = oracle[columns.ips[g]]
        decoded = columns.predictors_for(g)
        assert list(decoded) == host.open_ports()
        assert decoded == host.ports, \
            "columnar predictor tuples diverged from the object extraction"
    reference = build_model(oracle)
    fused = build_model_with_engine(columns)
    assert fused.denominators == reference.denominators, \
        "fused model off the columns diverged from the oracle"
    assert {k: v for k, v in fused.cooccurrence.items() if v} == \
        {k: v for k, v in reference.cooccurrence.items() if v}, \
        "fused co-occurrence off the columns diverged from the oracle"

    object_seconds = _best_seconds(lambda: _object_path(universe, asn_db, config))
    columnar_seconds = _best_seconds(
        lambda: _columnar_path(universe, asn_db, config))

    return {
        "scale": MEDIUM_SCALE.name,
        "hosts": len(columns),
        "services": columns.service_count(),
        "predictor_refs": len(columns.value_ids),
        "distinct_predictors": len(columns.encoder),
        "equivalence": ("columnar rows == object rows; decoded predictor runs "
                        "== object extraction; fused model off columns == "
                        "oracle model"),
        "rows": [
            {"path": "object (rows + extract_host_features)",
             "seconds": object_seconds},
            {"path": "columnar (columns + extract_host_features_columns)",
             "seconds": columnar_seconds},
        ],
    }


def test_dataset_columnar_ingest_vs_object_path(run_once, universe):
    results = run_once(run_dataset_benchmark, universe)

    seconds = {row["path"]: row["seconds"] for row in results["rows"]}
    object_seconds = seconds["object (rows + extract_host_features)"]
    columnar_seconds = seconds["columnar (columns + extract_host_features_columns)"]
    speedup = object_seconds / columnar_seconds
    results["columnar_vs_object_speedup"] = round(speedup, 2)
    _merge_results(results)

    print()
    print(format_table(
        ("path", "seconds", "speedup"),
        [(row["path"], f"{row['seconds']:.4f}",
          f"{object_seconds / row['seconds']:.2f}x")
         for row in results["rows"]],
        title=(f"Seed ingest ({results['hosts']} hosts, "
               f"{results['services']} services, "
               f"{results['predictor_refs']} predictor refs)"),
    ))
    print(f"Columnar ingest vs object path: {speedup:.2f}x "
          f"(written to {RESULT_PATH.name})")

    floor = SMOKE_FLOOR if os.environ.get("BENCH_SMOKE") == "1" else DATASET_FLOOR
    assert speedup >= floor, \
        (f"columnar ingest only {speedup:.2f}x over the object path "
         f"(floor {floor}x)")


# -- model fold: stdlib per-row vs numpy kernels ------------------------------------


def run_model_fold_benchmark(universe):
    """Time the serial columnar model build, stdlib fold vs numpy kernels.

    Same encoded columns in, same model out; the only difference is the
    fold: the stdlib backend streams the flattened feature relation row by
    row through ``join_group_count``, the numpy backend folds the raw int64
    buffers through ``fold_model_pairs_arrays`` (no table flatten, no
    per-row loop).  Model equality is asserted before timing, never relaxed.
    """
    config = FeatureConfig()
    asn_db = universe.topology.asn_db
    dataset = build_full_dataset(universe)
    columns = extract_host_features_columns(dataset.columns(), asn_db, config)

    stdlib_model = build_model_with_engine(columns, column_backend="stdlib")
    numpy_model = build_model_with_engine(columns, column_backend="numpy")
    assert numpy_model.denominators == stdlib_model.denominators, \
        "numpy model denominators diverged from the stdlib fold"
    assert numpy_model.cooccurrence == stdlib_model.cooccurrence, \
        "numpy model co-occurrence diverged from the stdlib fold"

    per_row_seconds = _best_seconds(
        lambda: build_model_with_engine(columns, column_backend="stdlib"))
    bulk_seconds = _best_seconds(
        lambda: build_model_with_engine(columns, column_backend="numpy"))
    return {
        "hosts": len(columns),
        "predictor_refs": len(columns.value_ids),
        "equivalence": "numpy-backend model == stdlib-backend model",
        "per_row_seconds": per_row_seconds,
        "bulk_seconds": bulk_seconds,
    }


def test_model_fold_stdlib_vs_numpy(run_once, universe):
    if not numpy_available():
        pytest.skip("numpy backend unavailable; the stdlib path is covered "
                    "by the ingest test above")
    results = run_once(run_model_fold_benchmark, universe)
    speedup = results["per_row_seconds"] / results["bulk_seconds"]
    results["speedup"] = round(speedup, 2)
    results["floor"] = MODEL_FOLD_FLOOR
    _merge_results({"model_fold": results})

    print()
    print(format_table(
        ("backend", "seconds", "speedup"),
        [("stdlib (per-row fold)", f"{results['per_row_seconds']:.4f}", "1.00x"),
         ("numpy (bulk kernels)", f"{results['bulk_seconds']:.4f}",
          f"{speedup:.2f}x")],
        title=(f"Serial columnar model build ({results['hosts']} hosts, "
               f"{results['predictor_refs']} predictor refs)"),
    ))
    print(f"numpy fold kernels vs stdlib per-row: {speedup:.2f}x "
          f"(floor {MODEL_FOLD_FLOOR}x, written to {RESULT_PATH.name})")
    assert speedup >= MODEL_FOLD_FLOOR, \
        (f"numpy fold kernels only {speedup:.2f}x over the stdlib fold "
         f"(floor {MODEL_FOLD_FLOOR}x)")
