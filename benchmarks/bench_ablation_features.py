"""Ablation -- which feature families does GPS actually need?

The paper's design argument (Sections 4-5.2) is that transport-layer port
correlations alone are not enough: application-layer banners identify the
device family (and therefore its other ports) and network-layer features
disambiguate fleets that differ per network.  This ablation runs GPS with
(a) only Expression 4 (bare port-to-port correlations) and (b) the full
feature set, on the same dataset split, and compares coverage at equal
bandwidth accounting.
"""

from __future__ import annotations

from repro.analysis import format_table, run_coverage_experiment
from repro.core.config import FeatureConfig


def test_ablation_feature_families(run_once, universe, censys_dataset, scale):
    def experiment():
        transport_only = run_coverage_experiment(
            universe, censys_dataset, seed_fraction=scale.default_seed_fraction,
            step_size=16, feature_config=FeatureConfig().transport_only(),
        )
        full = run_coverage_experiment(
            universe, censys_dataset, seed_fraction=scale.default_seed_fraction,
            step_size=16, feature_config=FeatureConfig(),
        )
        return transport_only, full

    transport_only, full = run_once(experiment)

    print()
    print(format_table(
        ("configuration", "final fraction", "final normalized", "bandwidth"),
        [
            ("transport-layer only (Expression 4)",
             f"{transport_only.final_fraction():.1%}",
             f"{transport_only.final_normalized_fraction():.1%}",
             f"{transport_only.gps_points[-1].full_scans:.1f}"),
            ("full feature set (Expressions 4-7)",
             f"{full.final_fraction():.1%}",
             f"{full.final_normalized_fraction():.1%}",
             f"{full.gps_points[-1].full_scans:.1f}"),
        ],
        title="Ablation: feature families",
    ))

    # The paper keeps only the single most predictive pattern per seed service,
    # so the full feature set's patterns are more *specific* than bare port
    # correlations: they spend less bandwidth (fewer, better-targeted
    # predictions) for essentially the same coverage.
    assert full.gps_points[-1].full_scans < transport_only.gps_points[-1].full_scans
    assert full.final_fraction() >= transport_only.final_fraction() - 0.05
    # Per probe of prediction bandwidth, the richer features are more precise.
    full_precision = full.gps_points[-1].precision
    transport_precision = transport_only.gps_points[-1].precision
    assert full_precision >= transport_precision
