"""Exhaustive-scanning baselines and the oracle reference.

Figure 2 of the paper plots GPS against two references:

* **exhaustive, optimal order** -- exhaustively probing whole ports, one at a
  time, in the order that maximises the number of services found per port
  scanned (i.e. descending popularity).  Each port costs exactly one
  "100 % scan" of bandwidth and finds every ground-truth service on it.
* **oracle** -- a predictor with perfect knowledge that sends exactly one
  probe per true service; its bandwidth at full coverage is the number of
  services divided by the address-space size.

Both are computed analytically from a ground-truth dataset (no simulated
probing is needed: their outcome is fully determined), returning the same
:class:`~repro.core.metrics.CoveragePoint` series that GPS runs produce so the
analysis layer can overlay them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.metrics import CoveragePoint, per_port_counts
from repro.datasets.builders import GroundTruthDataset

Pair = Tuple[int, int]


def _curve_from_port_order(dataset: GroundTruthDataset,
                           ordered_ports: Sequence[int],
                           probes_per_port: int) -> List[CoveragePoint]:
    """Build a coverage curve for port-at-a-time exhaustive probing."""
    truth = dataset.pairs()
    truth_per_port = per_port_counts(truth)
    port_count = len(truth_per_port)
    total = len(truth)
    space = dataset.address_space_size

    found = 0
    normalized_sum = 0.0
    probes = 0
    points: List[CoveragePoint] = []
    for port in ordered_ports:
        probes += probes_per_port
        on_port = truth_per_port.get(port, 0)
        if on_port:
            found += on_port
            normalized_sum += 1.0  # the whole port is found at once
        points.append(CoveragePoint(
            full_scans=probes / space,
            probes=probes,
            found=found,
            fraction=found / total if total else 0.0,
            normalized_fraction=normalized_sum / port_count if port_count else 0.0,
            precision=found / probes if probes else 0.0,
        ))
    return points


def optimal_port_order_curve(dataset: GroundTruthDataset) -> List[CoveragePoint]:
    """The "exhaustive, optimal order" reference curve of Figure 2.

    Ports are probed in descending order of ground-truth service count -- the
    minimum set of ports that must be exhaustively probed to reach any given
    coverage level (the paper's tighter-than-all-ports baseline).
    """
    registry = dataset.port_registry()
    ordered = registry.ports_by_popularity()
    return _curve_from_port_order(dataset, ordered, dataset.address_space_size)


def exhaustive_all_ports_curve(dataset: GroundTruthDataset,
                               total_ports: int = 65535) -> List[CoveragePoint]:
    """Exhaustively scanning every port of the domain, most popular first.

    Identical to :func:`optimal_port_order_curve` except that ports with zero
    ground-truth services are still paid for, so the curve extends to the
    full ``total_ports`` x one-scan cost the paper quotes as "exhaustive
    scanning" (5.6 years at 1 Gb/s for all 65K ports).
    """
    registry = dataset.port_registry()
    ordered = list(registry.ports_by_popularity())
    if dataset.port_domain is not None:
        remaining = [p for p in dataset.port_domain if p not in set(ordered)]
        port_universe = len(dataset.port_domain)
    else:
        remaining = []
        port_universe = total_ports
    # Ports that hold no services (or are outside the dataset) still cost a
    # full scan each; represent them as a single tail entry per port.
    empty_ports = port_universe - len(ordered) - len(remaining)
    ordered.extend(remaining)
    ordered.extend([0] * max(0, empty_ports))  # placeholder ports find nothing
    # Placeholder port number 0 never matches a ground-truth port.
    return _curve_from_port_order(dataset, ordered, dataset.address_space_size)


def oracle_curve(dataset: GroundTruthDataset, batches: int = 100) -> List[CoveragePoint]:
    """The oracle reference: one probe per true service, nothing wasted."""
    truth = sorted(dataset.pairs())
    truth_per_port = per_port_counts(set(truth))
    port_count = len(truth_per_port)
    total = len(truth)
    space = dataset.address_space_size
    if total == 0:
        return []

    batch_size = max(1, total // max(1, batches))
    found_per_port: Dict[int, int] = {}
    points: List[CoveragePoint] = []
    found = 0
    normalized_sum = 0.0
    for start in range(0, total, batch_size):
        batch = truth[start:start + batch_size]
        for _, port in batch:
            found += 1
            found_per_port[port] = found_per_port.get(port, 0) + 1
            normalized_sum += 1.0 / truth_per_port[port]
        probes = found
        points.append(CoveragePoint(
            full_scans=probes / space,
            probes=probes,
            found=found,
            fraction=found / total,
            normalized_fraction=normalized_sum / port_count,
            precision=1.0,
        ))
    return points


def random_probe_precision(dataset: GroundTruthDataset) -> float:
    """Expected hit rate of a uniformly random (address, port) probe.

    The paper uses "roughly the hit rate of randomly probing the majority of
    ports" (about 1e-5) as the probability cut-off for predictive patterns;
    this helper computes the analogous quantity for a synthetic dataset so
    experiments can set the cut-off consistently with their universe density.
    """
    port_count = len(dataset.port_domain) if dataset.port_domain else 65535
    total_slots = dataset.address_space_size * port_count
    if total_slots == 0:
        return 0.0
    return len(dataset.pairs()) / total_slots
