"""Reimplementation of the Sarabi et al. "XGBoost scanner" baseline.

Section 6.4 of the GPS paper benchmarks against Sarabi et al.'s "Smart
Internet Probing" system: a *sequential* per-port classifier scanner.  Ports
are processed in an optimal scanning order; for each port a supervised model
is trained whose input features are the host's responses on the ports scanned
earlier in the sequence, and only the addresses the model deems likely are
probed.  The original system is closed source, so this module rebuilds its
structure on top of the from-scratch GBDT of :mod:`repro.baselines.gbdt`:

* the first port of the sequence is scanned exhaustively (it has no earlier
  port responses to learn from -- in the original, port 80 is predicted from
  network-layer features alone, which amounts to near-exhaustive coverage);
* every later port trains a classifier on the seed split (features = binary
  responses on the earlier ports, label = responds on this port), picks the
  smallest probability threshold that retains ``target_coverage`` of the seed
  positives, and probes every already-discovered host scoring above it.

The per-port bookkeeping (prior bandwidth / port bandwidth / coverage) is what
the Figure 4 comparison consumes; the cumulative discovery log feeds the
Figure 4c normalized-coverage curve.  Training is inherently sequential --
each port's features depend on the previous ports' scan results -- which is
the structural property the paper contrasts with GPS's parallelizable model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.gbdt import GBDTConfig, GradientBoostedTrees
from repro.datasets.builders import GroundTruthDataset
from repro.datasets.split import SeedTestSplit

Pair = Tuple[int, int]


@dataclass(frozen=True)
class XGBoostScannerConfig:
    """Configuration of the sequential classifier scanner.

    Attributes:
        ports: the port sequence to scan (``None`` = the dataset's ports in
            descending popularity, i.e. the "optimal ordering" of the original
            system).
        max_ports: cap on how many ports of the sequence are processed.
        target_coverage: fraction of seed positives the per-port threshold
            must retain (the operating point at which bandwidth is measured).
        gbdt: hyper-parameters of the underlying boosted-tree model.
        use_network_neighborhood: additionally probe the subnets of seed hosts
            that respond on the target port.  This stands in for the original
            system's network-layer features (which let it predict hosts it has
            never observed on any port); without it the baseline could never
            reach the high coverage levels Figure 4 is evaluated at.
        neighborhood_prefix: prefix length of the probed subnet neighbourhood.
    """

    ports: Optional[Tuple[int, ...]] = None
    max_ports: Optional[int] = None
    target_coverage: float = 0.99
    gbdt: GBDTConfig = field(default_factory=GBDTConfig)
    use_network_neighborhood: bool = True
    neighborhood_prefix: int = 24

    def __post_init__(self) -> None:
        if not 0.0 < self.target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        if self.max_ports is not None and self.max_ports < 1:
            raise ValueError("max_ports must be >= 1")
        if not 8 <= self.neighborhood_prefix <= 32:
            raise ValueError("neighborhood_prefix must be within /8-/32")


@dataclass
class PortScanOutcome:
    """Per-port result of one scanner run (one bar group of Figure 4).

    Attributes:
        port: the target port.
        sequence_index: position of the port in the scanning sequence.
        prior_probes: cumulative probes spent on *earlier* ports in the
            sequence (the "minimum set of predictive services" cost of
            Figure 4a).
        probes: probes spent scanning this port itself (Figure 4b).
        found: ground-truth services discovered on this port.
        truth: ground-truth services on this port in the evaluation set.
        exhaustive: whether the port was swept exhaustively.
        train_seconds: wall-clock time spent training this port's model.
    """

    port: int
    sequence_index: int
    prior_probes: int
    probes: int
    found: int
    truth: int
    exhaustive: bool
    train_seconds: float

    @property
    def coverage(self) -> float:
        """Fraction of this port's ground-truth services found."""
        return self.found / self.truth if self.truth else 0.0


@dataclass
class XGBoostScanRun:
    """Full result of a scanner run."""

    outcomes: List[PortScanOutcome] = field(default_factory=list)
    discovery_log: List[Tuple[int, Tuple[Pair, ...]]] = field(default_factory=list)
    total_probes: int = 0
    total_train_seconds: float = 0.0

    def discovered_pairs(self) -> Set[Pair]:
        """All (ip, port) services discovered across the run."""
        pairs: Set[Pair] = set()
        for _, batch in self.discovery_log:
            pairs.update(batch)
        return pairs


class XGBoostScanner:
    """Sequential per-port classifier scanner over a ground-truth dataset."""

    def __init__(self, dataset: GroundTruthDataset,
                 config: Optional[XGBoostScannerConfig] = None) -> None:
        self.dataset = dataset
        self.config = config or XGBoostScannerConfig()
        # Ground truth lookup: ip -> set of responsive ports (within dataset).
        self._truth_by_ip: Dict[int, Set[int]] = {}
        for ip, port in dataset.pairs():
            self._truth_by_ip.setdefault(ip, set()).add(port)

    # -- helpers ------------------------------------------------------------------

    def port_sequence(self) -> List[int]:
        """The scanning sequence (descending popularity unless overridden)."""
        if self.config.ports is not None:
            sequence = list(self.config.ports)
        else:
            sequence = self.dataset.port_registry().ports_by_popularity()
        if self.config.max_ports is not None:
            sequence = sequence[:self.config.max_ports]
        return sequence

    def _feature_matrix(self, ips: Sequence[int], feature_ports: Sequence[int],
                        responses: Dict[int, Set[int]]) -> np.ndarray:
        matrix = np.zeros((len(ips), max(1, len(feature_ports))), dtype=float)
        for row, ip in enumerate(ips):
            open_ports = responses.get(ip, ())
            for col, port in enumerate(feature_ports):
                if port in open_ports:
                    matrix[row, col] = 1.0
        return matrix

    def _neighborhood_targets(self, port: int,
                              seed_responses: Dict[int, Set[int]],
                              exclude: Set[int]) -> Set[int]:
        """Addresses in the subnets of seed hosts that respond on ``port``.

        Models the original scanner's network-layer prediction: every address
        of the /``neighborhood_prefix`` around a positive training example is
        probed (and paid for), whether or not anything answers there.
        """
        from repro.net.ipv4 import iter_prefix, prefix_of

        prefix_len = self.config.neighborhood_prefix
        bases = {
            prefix_of(ip, prefix_len)
            for ip, ports in seed_responses.items() if port in ports
        }
        targets: Set[int] = set()
        for base in bases:
            targets.update(iter_prefix(base, prefix_len))
        return targets - exclude

    def _threshold_for_coverage(self, probabilities: np.ndarray,
                                labels: np.ndarray) -> float:
        """Smallest threshold keeping ``target_coverage`` of the positives."""
        positives = probabilities[labels > 0.5]
        if len(positives) == 0:
            return 0.5
        # Keep the top target_coverage fraction of positive scores.
        quantile = 1.0 - self.config.target_coverage
        return float(np.quantile(positives, quantile))

    # -- main entry point ------------------------------------------------------------

    def run(self, split: SeedTestSplit) -> XGBoostScanRun:
        """Run the sequential scanner, training on the split's seed half.

        The seed half plays the role of Sarabi et al.'s historical training
        snapshot; the scanner is evaluated on the services it discovers in the
        full dataset (minus what it already knew from the seed).
        """
        truth_per_port: Dict[int, int] = {}
        for _, port in self.dataset.pairs():
            truth_per_port[port] = truth_per_port.get(port, 0) + 1

        seed_responses: Dict[int, Set[int]] = {}
        for obs in split.seed_observations:
            seed_responses.setdefault(obs.ip, set()).add(obs.port)
        seed_ips = sorted(seed_responses)

        run = XGBoostScanRun()
        observed: Dict[int, Set[int]] = {}  # what the scanner has discovered
        scanned_ports: List[int] = []
        cumulative_probes = 0

        for index, port in enumerate(self.port_sequence()):
            prior_probes = cumulative_probes
            train_seconds = 0.0
            if index == 0:
                # No features available yet: sweep the port exhaustively.
                probes = self.dataset.address_space_size
                found_pairs = [(ip, port) for ip, ports in self._truth_by_ip.items()
                               if port in ports]
                exhaustive = True
            else:
                start = time.perf_counter()
                features = self._feature_matrix(seed_ips, scanned_ports,
                                                seed_responses)
                labels = np.array(
                    [1.0 if port in seed_responses.get(ip, ()) else 0.0
                     for ip in seed_ips], dtype=float)
                model = GradientBoostedTrees(self.config.gbdt).fit(features, labels)
                threshold = self._threshold_for_coverage(
                    model.predict_proba(features), labels)
                train_seconds = time.perf_counter() - start

                candidates = sorted(observed)
                if candidates:
                    candidate_features = self._feature_matrix(
                        candidates, scanned_ports, observed)
                    scores = model.predict_proba(candidate_features)
                    to_probe = {ip for ip, score in zip(candidates, scores)
                                if score >= threshold}
                else:
                    to_probe = set()
                # Network-layer prediction: probe the subnet neighbourhoods of
                # seed hosts known to respond on this port (the stand-in for
                # the original system's network features).
                if self.config.use_network_neighborhood:
                    to_probe.update(self._neighborhood_targets(
                        port, seed_responses, exclude=to_probe))
                probes = len(to_probe)
                found_pairs = [(ip, port) for ip in sorted(to_probe)
                               if port in self._truth_by_ip.get(ip, ())]
                exhaustive = False

            cumulative_probes += probes
            for ip, found_port in found_pairs:
                observed.setdefault(ip, set()).add(found_port)
            scanned_ports.append(port)

            run.outcomes.append(PortScanOutcome(
                port=port,
                sequence_index=index,
                prior_probes=prior_probes,
                probes=probes,
                found=len(found_pairs),
                truth=truth_per_port.get(port, 0),
                exhaustive=exhaustive,
                train_seconds=train_seconds,
            ))
            run.discovery_log.append((cumulative_probes, tuple(found_pairs)))
            run.total_train_seconds += train_seconds

        run.total_probes = cumulative_probes
        return run
