"""A from-scratch gradient-boosted decision tree (GBDT) classifier.

The closest prior work the paper compares against (Sarabi et al., "Smart
Internet Probing") trains an XGBoost classifier per port.  XGBoost itself is
not available offline, so this module implements the same model family --
gradient boosting of shallow regression trees on the logistic loss -- with
just numpy.  It is intentionally a compact, readable implementation rather
than a tuned library: the comparison in Figure 4 depends on the *structure* of
the baseline (a supervised per-port classifier chained over a port order), not
on squeezing the last AUC point out of the booster.

The implementation supports binary and real-valued features, shrinkage, row
subsampling, and early stopping on a validation split, which is everything the
XGBoost-scanner reimplementation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class GBDTConfig:
    """Hyper-parameters of the boosted ensemble.

    Attributes:
        n_estimators: number of boosting rounds (trees).
        max_depth: maximum depth of each regression tree.
        learning_rate: shrinkage applied to each tree's contribution.
        min_samples_leaf: minimum number of rows in a leaf.
        subsample: fraction of rows sampled (without replacement) per tree.
        random_state: RNG seed for row subsampling.
    """

    n_estimators: int = 40
    max_depth: int = 3
    learning_rate: float = 0.2
    min_samples_leaf: int = 5
    subsample: float = 1.0
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")


class _TreeNode:
    """One node of a regression tree (internal split or leaf)."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature: Optional[int] = None
        self.threshold: float = 0.0
        self.left: Optional["_TreeNode"] = None
        self.right: Optional["_TreeNode"] = None
        self.value: float = 0.0

    def is_leaf(self) -> bool:
        return self.feature is None


class _RegressionTree:
    """A CART-style regression tree fit to gradient residuals."""

    def __init__(self, max_depth: int, min_samples_leaf: int) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[_TreeNode] = None

    def fit(self, X: np.ndarray, residuals: np.ndarray) -> "_RegressionTree":
        self.root = self._build(X, residuals, depth=0)
        return self

    def _build(self, X: np.ndarray, residuals: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode()
        node.value = float(residuals.mean()) if len(residuals) else 0.0
        if depth >= self.max_depth or len(residuals) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, residuals)
        if split is None:
            return node
        feature, threshold, mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], residuals[mask], depth + 1)
        node.right = self._build(X[~mask], residuals[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray,
                    residuals: np.ndarray) -> Optional[Tuple[int, float, np.ndarray]]:
        """Find the (feature, threshold) split with maximum variance reduction."""
        n_rows, n_features = X.shape
        total_sum = residuals.sum()
        best_gain = 1e-12
        best: Optional[Tuple[int, float, np.ndarray]] = None
        for feature in range(n_features):
            column = X[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            # Candidate thresholds: midpoints between consecutive distinct
            # values (for binary port-response features this is just 0.5).
            if len(values) > 16:
                quantiles = np.quantile(column, np.linspace(0.05, 0.95, 15))
                candidates = np.unique(quantiles)
            else:
                candidates = (values[:-1] + values[1:]) / 2.0
            for threshold in candidates:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = n_rows - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_sum = residuals[mask].sum()
                right_sum = total_sum - left_sum
                # Variance-reduction gain (up to constants): sum^2 / n per side.
                gain = (left_sum * left_sum / n_left
                        + right_sum * right_sum / n_right
                        - total_sum * total_sum / n_rows)
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        out = np.empty(len(X), dtype=float)
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf():
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class GradientBoostedTrees:
    """Binary classifier: boosted regression trees on the logistic loss."""

    def __init__(self, config: Optional[GBDTConfig] = None) -> None:
        self.config = config or GBDTConfig()
        self._trees: List[_RegressionTree] = []
        self._base_score: float = 0.0

    # -- training -----------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """Fit on a feature matrix ``X`` (n x d) and binary labels ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D matrix")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be a vector matching X's row count")
        if len(np.unique(y)) < 2:
            # Degenerate training set: predict the constant class probability.
            self._trees = []
            positive_rate = float(y.mean()) if len(y) else 0.0
            positive_rate = min(max(positive_rate, 1e-6), 1 - 1e-6)
            self._base_score = float(np.log(positive_rate / (1 - positive_rate)))
            return self

        rng = np.random.default_rng(self.config.random_state)
        positive_rate = min(max(float(y.mean()), 1e-6), 1 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1 - positive_rate)))
        scores = np.full(len(y), self._base_score, dtype=float)
        self._trees = []

        for _ in range(self.config.n_estimators):
            probabilities = _sigmoid(scores)
            residuals = y - probabilities  # negative gradient of log loss
            if self.config.subsample < 1.0:
                sample_size = max(2 * self.config.min_samples_leaf,
                                  int(len(y) * self.config.subsample))
                sample_size = min(sample_size, len(y))
                rows = rng.choice(len(y), size=sample_size, replace=False)
            else:
                rows = np.arange(len(y))
            tree = _RegressionTree(self.config.max_depth,
                                   self.config.min_samples_leaf)
            tree.fit(X[rows], residuals[rows])
            update = tree.predict(X)
            scores = scores + self.config.learning_rate * update
            self._trees.append(tree)
        return self

    # -- inference ----------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive scores (log-odds)."""
        X = np.asarray(X, dtype=float)
        scores = np.full(len(X), self._base_score, dtype=float)
        for tree in self._trees:
            scores = scores + self.config.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at a probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)

    @property
    def n_trees(self) -> int:
        """Number of fitted trees (0 for the degenerate constant model)."""
        return len(self._trees)
