"""Hybrid recommender baseline (Appendix A).

The paper asks whether an off-the-shelf recommendation model (LightFM-style
hybrid matrix factorization) can recommend responsive ports to IP addresses.
The answer is no: such models cannot attach features to the *interaction*
(the specific (IP, port) service), only to users and items, and they perform
worse than exhaustively probing ports in popularity order.

This module reimplements that experiment with a compact numpy model that
follows LightFM's formulation: a user's embedding is the sum of the embeddings
of its features (here its /16 and /20 subnetworks), an item's embedding the
sum of its features (the port's identity and whether it is IANA-assigned),
and the interaction score is their dot product plus biases, trained with a
logistic loss over observed positives and sampled negatives.  Cold-start test
addresses are scored purely through their subnet features, exactly the
situation the appendix evaluates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datasets.builders import GroundTruthDataset
from repro.net.ipv4 import subnet_key
from repro.net.ports import PORT_SERVICE_NAMES
from repro.scanner.records import ScanObservation

Pair = Tuple[int, int]


@dataclass(frozen=True)
class RecommenderConfig:
    """Hyper-parameters of the hybrid matrix-factorization model.

    Attributes:
        embedding_dim: latent dimensionality.
        epochs: SGD passes over the interaction list.
        learning_rate: SGD step size.
        regularization: L2 penalty on embeddings.
        negatives_per_positive: sampled negative ports per observed service.
        recommendations_per_ip: how many ports are recommended (and probed)
            per address -- the appendix generates 100 predictions per IP.
        seed: RNG seed.
    """

    embedding_dim: int = 16
    epochs: int = 8
    learning_rate: float = 0.05
    regularization: float = 1e-4
    negatives_per_positive: int = 4
    recommendations_per_ip: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.negatives_per_positive < 1:
            raise ValueError("negatives_per_positive must be >= 1")
        if self.recommendations_per_ip < 1:
            raise ValueError("recommendations_per_ip must be >= 1")


def _user_features(ip: int) -> List[str]:
    """Feature names describing an address (network-layer only, per Appendix A)."""
    return [f"net16:{subnet_key(ip, 16)}", f"net20:{subnet_key(ip, 20)}"]


def _item_features(port: int) -> List[str]:
    """Feature names describing a port."""
    assigned = "assigned" if port in PORT_SERVICE_NAMES else "unassigned"
    return [f"port:{port}", f"iana:{assigned}"]


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + np.exp(-z))
    exp_z = np.exp(z)
    return exp_z / (1.0 + exp_z)


class HybridRecommender:
    """LightFM-style hybrid matrix factorization on (IP, port) interactions."""

    def __init__(self, config: Optional[RecommenderConfig] = None) -> None:
        self.config = config or RecommenderConfig()
        self._feature_index: Dict[str, int] = {}
        self._embeddings: Optional[np.ndarray] = None
        self._biases: Optional[np.ndarray] = None
        self._ports: List[int] = []

    # -- internals -----------------------------------------------------------------

    def _feature_id(self, name: str, grow: bool) -> Optional[int]:
        if name in self._feature_index:
            return self._feature_index[name]
        if not grow:
            return None
        index = len(self._feature_index)
        self._feature_index[name] = index
        return index

    def _vector(self, names: Sequence[str], grow: bool) -> Tuple[np.ndarray, float, List[int]]:
        ids = [fid for name in names
               if (fid := self._feature_id(name, grow)) is not None]
        if not ids:
            return np.zeros(self.config.embedding_dim), 0.0, []
        assert self._embeddings is not None and self._biases is not None
        return self._embeddings[ids].sum(axis=0), float(self._biases[ids].sum()), ids

    # -- training ------------------------------------------------------------------

    def fit(self, observations: Sequence[ScanObservation],
            candidate_ports: Sequence[int]) -> "HybridRecommender":
        """Train on observed (IP, port) services.

        Args:
            observations: the training interactions (a seed split).
            candidate_ports: the universe of ports negatives are drawn from
                and recommendations are made over.
        """
        config = self.config
        rng = random.Random(config.seed)
        np_rng = np.random.default_rng(config.seed)
        self._ports = sorted(set(candidate_ports))
        if not self._ports:
            raise ValueError("candidate_ports must not be empty")

        # Register all features up front so embeddings can be one array.
        interactions: List[Tuple[List[str], List[str]]] = []
        positives: Set[Pair] = set()
        for obs in observations:
            interactions.append((_user_features(obs.ip), _item_features(obs.port)))
            positives.add(obs.pair())
        for names, item_names in interactions:
            for name in names + item_names:
                self._feature_id(name, grow=True)
        for port in self._ports:
            for name in _item_features(port):
                self._feature_id(name, grow=True)

        dim = config.embedding_dim
        count = len(self._feature_index)
        self._embeddings = (np_rng.standard_normal((count, dim)) * 0.05)
        self._biases = np.zeros(count)

        observation_list = list(observations)
        for _ in range(config.epochs):
            rng.shuffle(observation_list)
            for obs in observation_list:
                self._sgd_step(_user_features(obs.ip), _item_features(obs.port), 1.0)
                for _ in range(config.negatives_per_positive):
                    negative_port = rng.choice(self._ports)
                    if (obs.ip, negative_port) in positives:
                        continue
                    self._sgd_step(_user_features(obs.ip),
                                   _item_features(negative_port), 0.0)
        return self

    def _sgd_step(self, user_names: Sequence[str], item_names: Sequence[str],
                  label: float) -> None:
        assert self._embeddings is not None and self._biases is not None
        config = self.config
        user_vec, user_bias, user_ids = self._vector(user_names, grow=False)
        item_vec, item_bias, item_ids = self._vector(item_names, grow=False)
        if not user_ids or not item_ids:
            return
        score = float(user_vec @ item_vec) + user_bias + item_bias
        gradient = _sigmoid(score) - label
        lr = config.learning_rate
        reg = config.regularization
        for fid in user_ids:
            self._embeddings[fid] -= lr * (gradient * item_vec + reg * self._embeddings[fid])
            self._biases[fid] -= lr * gradient
        for fid in item_ids:
            self._embeddings[fid] -= lr * (gradient * user_vec + reg * self._embeddings[fid])
            self._biases[fid] -= lr * gradient

    # -- inference -----------------------------------------------------------------

    def score_ports(self, ip: int) -> List[Tuple[int, float]]:
        """Score every candidate port for one address, best first."""
        if self._embeddings is None:
            raise RuntimeError("fit() must be called before scoring")
        user_vec, user_bias, user_ids = self._vector(_user_features(ip), grow=False)
        scores: List[Tuple[int, float]] = []
        for port in self._ports:
            item_vec, item_bias, item_ids = self._vector(_item_features(port), grow=False)
            if not item_ids:
                continue
            score = float(user_vec @ item_vec) + user_bias + item_bias
            scores.append((port, score))
        scores.sort(key=lambda entry: (-entry[1], entry[0]))
        return scores

    def recommend(self, ip: int, count: Optional[int] = None) -> List[int]:
        """Top-N recommended ports for an address."""
        count = count or self.config.recommendations_per_ip
        return [port for port, _ in self.score_ports(ip)[:count]]


@dataclass
class RecommenderEvaluation:
    """Outcome of the Appendix A experiment."""

    services_found: int
    services_total: int
    fraction_found: float
    normalized_fraction: float
    probes: int


def evaluate_recommender(dataset: GroundTruthDataset,
                         seed_observations: Sequence[ScanObservation],
                         test_pairs: Set[Pair],
                         config: Optional[RecommenderConfig] = None) -> RecommenderEvaluation:
    """Train on the seed split and measure coverage of the test split.

    Mirrors Appendix A: the model generates ``recommendations_per_ip`` port
    predictions for every test address and we count how many true services
    those predictions hit (overall and normalized per port).
    """
    config = config or RecommenderConfig()
    candidate_ports = (dataset.port_domain if dataset.port_domain is not None
                       else tuple(sorted({port for _, port in dataset.pairs()})))
    model = HybridRecommender(config).fit(seed_observations, candidate_ports)

    test_ips = sorted({ip for ip, _ in test_pairs})
    found: Set[Pair] = set()
    probes = 0
    for ip in test_ips:
        for port in model.recommend(ip):
            probes += 1
            if (ip, port) in test_pairs:
                found.add((ip, port))

    truth_per_port: Dict[int, int] = {}
    found_per_port: Dict[int, int] = {}
    for _, port in test_pairs:
        truth_per_port[port] = truth_per_port.get(port, 0) + 1
    for _, port in found:
        found_per_port[port] = found_per_port.get(port, 0) + 1
    normalized = (sum(found_per_port.get(port, 0) / count
                      for port, count in truth_per_port.items()) / len(truth_per_port)
                  if truth_per_port else 0.0)
    fraction = len(found) / len(test_pairs) if test_pairs else 0.0
    return RecommenderEvaluation(
        services_found=len(found),
        services_total=len(test_pairs),
        fraction_found=fraction,
        normalized_fraction=normalized,
        probes=probes,
    )
