"""Baselines GPS is evaluated against.

* :mod:`repro.baselines.exhaustive` -- exhaustive scanning, the
  "optimal port-order" probing reference and the oracle predictor that the
  paper plots alongside GPS in Figure 2;
* :mod:`repro.baselines.gbdt` -- a from-scratch gradient-boosted decision tree
  classifier (the learning substrate of the XGBoost-style scanner);
* :mod:`repro.baselines.xgboost_scanner` -- a reimplementation of the Sarabi
  et al. sequential per-port classifier scanner compared against in
  Section 6.4 / Figure 4;
* :mod:`repro.baselines.tga` -- Entropy/IP-style target generation algorithms,
  used for the Section 2 verification experiment;
* :mod:`repro.baselines.recommender` -- the hybrid matrix-factorization
  recommender of Appendix A.
"""

from repro.baselines.exhaustive import (
    exhaustive_all_ports_curve,
    optimal_port_order_curve,
    oracle_curve,
    random_probe_precision,
)
from repro.baselines.gbdt import GradientBoostedTrees, GBDTConfig
from repro.baselines.xgboost_scanner import (
    PortScanOutcome,
    XGBoostScanner,
    XGBoostScannerConfig,
)
from repro.baselines.tga import TargetGenerationAlgorithm, TGAConfig, evaluate_tga
from repro.baselines.recommender import (
    HybridRecommender,
    RecommenderConfig,
    evaluate_recommender,
)

__all__ = [
    "exhaustive_all_ports_curve",
    "optimal_port_order_curve",
    "oracle_curve",
    "random_probe_precision",
    "GradientBoostedTrees",
    "GBDTConfig",
    "XGBoostScanner",
    "XGBoostScannerConfig",
    "PortScanOutcome",
    "TargetGenerationAlgorithm",
    "TGAConfig",
    "evaluate_tga",
    "HybridRecommender",
    "RecommenderConfig",
    "evaluate_recommender",
]
