"""Target Generation Algorithms (TGAs) adapted to IPv4, as in Section 2.

Entropy/IP and EIP learn the structure of known IPv6 addresses and generate
new candidate addresses that are likely to be responsive.  The GPS paper
verifies whether that approach transfers to IPv4 across densely-populated
ports by "predicting one IPv4 octet at a time instead of one IPv6 nibble",
training one model per port on 1,000 known addresses and generating 1M
candidates per port; the combined candidates find only 19 % of services.

This module implements that adaptation: a per-port first-order Markov model
over the four octets (octet *i* conditioned on octet *i-1*), trained on a
sample of known responsive addresses for the port and sampled to produce
candidate addresses.  :func:`evaluate_tga` replays the Section 2 experiment
against a synthetic ground-truth dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.builders import GroundTruthDataset


@dataclass(frozen=True)
class TGAConfig:
    """Parameters of the per-port target generation model.

    Attributes:
        train_addresses_per_port: number of known addresses used for training
            (the paper uses 1,000 randomly sub-sampled addresses).
        candidates_per_port: number of candidate addresses generated per port
            (the paper generates 1M -- an order of magnitude more than the
            responsive population of 90 % of ports; scale it to the synthetic
            universe accordingly).
        seed: RNG seed for sub-sampling and candidate generation.
    """

    train_addresses_per_port: int = 1000
    candidates_per_port: int = 20000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.train_addresses_per_port < 1:
            raise ValueError("train_addresses_per_port must be >= 1")
        if self.candidates_per_port < 1:
            raise ValueError("candidates_per_port must be >= 1")


def _octets(ip: int) -> Tuple[int, int, int, int]:
    return ((ip >> 24) & 0xFF, (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF)


def _from_octets(octets: Sequence[int]) -> int:
    value = 0
    for octet in octets:
        value = (value << 8) | (octet & 0xFF)
    return value


class TargetGenerationAlgorithm:
    """A per-port octet-wise Markov model over IPv4 addresses."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)
        # Transition tables: position -> previous octet -> list of next octets
        # (with multiplicity, so sampling follows the empirical distribution).
        self._first_octets: List[int] = []
        self._transitions: List[Dict[int, List[int]]] = [dict(), dict(), dict()]
        self._trained = False

    def fit(self, addresses: Sequence[int]) -> "TargetGenerationAlgorithm":
        """Learn octet distributions from known responsive addresses."""
        if not addresses:
            raise ValueError("cannot train a TGA on an empty address set")
        self._first_octets = []
        self._transitions = [dict(), dict(), dict()]
        for ip in addresses:
            octets = _octets(ip)
            self._first_octets.append(octets[0])
            for position in range(3):
                bucket = self._transitions[position].setdefault(octets[position], [])
                bucket.append(octets[position + 1])
        self._trained = True
        return self

    def generate(self, count: int) -> List[int]:
        """Sample candidate addresses from the learned structure (deduplicated)."""
        if not self._trained:
            raise RuntimeError("fit() must be called before generate()")
        if count < 0:
            raise ValueError("count must be non-negative")
        candidates: Set[int] = set()
        # Bounded attempts: sparse models may not be able to produce `count`
        # distinct addresses; mirror real TGA behaviour by stopping early.
        attempts = 0
        max_attempts = count * 8
        while len(candidates) < count and attempts < max_attempts:
            attempts += 1
            octets = [self._rng.choice(self._first_octets)]
            for position in range(3):
                options = self._transitions[position].get(octets[-1])
                if not options:
                    # Unseen prefix context: fall back to a uniform octet,
                    # which is what makes TGAs imprecise on sparse ports.
                    octets.append(self._rng.randrange(256))
                else:
                    octets.append(self._rng.choice(options))
            candidates.add(_from_octets(octets))
        return sorted(candidates)


@dataclass
class TGAEvaluation:
    """Outcome of the Section 2 TGA verification experiment.

    Attributes:
        services_found: ground-truth services hit by any candidate.
        services_total: total ground-truth services across evaluated ports.
        fraction_found: the headline "TGAs find only X % of services" number.
        probes: total candidate probes sent (the bandwidth cost).
        per_port: ``port -> (found, total)``.
    """

    services_found: int
    services_total: int
    fraction_found: float
    probes: int
    per_port: Dict[int, Tuple[int, int]] = field(default_factory=dict)


def candidates_budget_from_dataset(dataset: GroundTruthDataset,
                                   multiple: int = 10,
                                   percentile: float = 0.9) -> int:
    """Candidate count per port following the paper's §2 sizing rule.

    The paper generates "an order of magnitude more addresses than the number
    of IPs that respond across 90 % of ports": the per-port candidate budget is
    ``multiple`` times the ``percentile``-th percentile of per-port responsive
    populations.  Computing it from the evaluation dataset keeps the TGA
    experiment faithful when the synthetic universe is much smaller than the
    real Internet.
    """
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    if not 0.0 < percentile <= 1.0:
        raise ValueError("percentile must be in (0, 1]")
    populations: Dict[int, Set[int]] = {}
    for ip, port in dataset.pairs():
        populations.setdefault(port, set()).add(ip)
    if not populations:
        return multiple
    sizes = sorted(len(ips) for ips in populations.values())
    index = min(len(sizes) - 1, int(round(percentile * (len(sizes) - 1))))
    return max(1, multiple * sizes[index])


def estimate_training_acquisition_probes(dataset: GroundTruthDataset,
                                         train_addresses_per_port: int = 1000) -> Dict[int, int]:
    """Random-probing cost of *collecting* the per-port training data.

    The paper's core argument against TGAs (Section 2) is not only their low
    recall but the cost of obtaining their training input: gathering 1,000
    responsive addresses for a port via random probing requires roughly
    ``1000 / density`` probes, which across 90 % of ports exceeds a quarter of
    the address space per port.  This helper computes that estimate per port
    for a synthetic dataset (capped at the full address space; ports whose
    entire population is smaller than the requested training size can never
    supply enough training data no matter how much is probed).
    """
    if train_addresses_per_port < 1:
        raise ValueError("train_addresses_per_port must be >= 1")
    space = dataset.address_space_size
    populations: Dict[int, Set[int]] = {}
    for ip, port in dataset.pairs():
        populations.setdefault(port, set()).add(ip)
    estimates: Dict[int, int] = {}
    for port, ips in populations.items():
        density = len(ips) / space
        needed = min(train_addresses_per_port, len(ips))
        if density <= 0:
            estimates[port] = space
            continue
        estimates[port] = min(space, int(round(needed / density)))
    return estimates


def evaluate_tga(dataset: GroundTruthDataset,
                 config: Optional[TGAConfig] = None,
                 ports: Optional[Sequence[int]] = None) -> TGAEvaluation:
    """Replay the Section 2 experiment: train per-port TGAs, count what they find."""
    config = config or TGAConfig()
    rng = random.Random(config.seed)

    ips_by_port: Dict[int, Set[int]] = {}
    for ip, port in dataset.pairs():
        ips_by_port.setdefault(port, set()).add(ip)
    evaluated_ports = list(ports) if ports is not None else sorted(ips_by_port)

    found_total = 0
    truth_total = 0
    probes = 0
    per_port: Dict[int, Tuple[int, int]] = {}
    for port in evaluated_ports:
        truth_ips = ips_by_port.get(port, set())
        if not truth_ips:
            continue
        truth_total += len(truth_ips)
        training_pool = sorted(truth_ips)
        sample_size = min(config.train_addresses_per_port, len(training_pool))
        training = rng.sample(training_pool, sample_size)
        model = TargetGenerationAlgorithm(rng=random.Random(rng.randrange(2**31)))
        model.fit(training)
        candidates = model.generate(config.candidates_per_port)
        probes += len(candidates)
        found = len(set(candidates) & truth_ips)
        found_total += found
        per_port[port] = (found, len(truth_ips))

    fraction = found_total / truth_total if truth_total else 0.0
    return TGAEvaluation(services_found=found_total, services_total=truth_total,
                         fraction_found=fraction, probes=probes, per_port=per_port)
