"""Command-line interface for the GPS reproduction.

The CLI wraps the most common workflows so they can be run without writing
Python: a quickstart end-to-end GPS run, the Figure-2-style coverage
experiment on either ground-truth dataset, the GPS-versus-XGBoost comparison,
and the churn measurement.  Install the package and run::

    gps-repro quickstart
    gps-repro coverage --dataset lzr --scale medium
    gps-repro compare-xgboost --ports 8
    gps-repro churn --days 10
    gps-repro serve --port 8080
    gps-repro snapshot save --out snap/
    gps-repro snapshot load snap/

Every command is deterministic for a given ``--seed``.

Snapshots implement the paper's Section 6.5 deployment note -- "if a seed
scan is already available, GPS can forego collecting the initial seed scan,
reducing the overall runtime by 94%": ``--save-snapshot`` persists a run's
encoded seed columns and Table 2 artifacts (model, priors plan, prediction
index) to a versioned on-disk directory, ``--load-snapshot`` reuses the
saved seed without paying its scan cost, and ``serve --snapshot-dir``
warm-restarts the serving layer from the saved artifacts without
rebuilding anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.coverage import coverage_summary_rows, run_coverage_experiment
from repro.analysis.comparison import run_xgboost_comparison
from repro.analysis.limits import run_churn_measurement
from repro.analysis.reporting import format_ratio, format_table
from repro.analysis.scenarios import (
    MEDIUM_SCALE,
    SMALL_SCALE,
    make_censys_dataset,
    make_lzr_dataset,
    make_universe,
)
from repro.core.config import GPSConfig
from repro.core.gps import GPS
from repro.core.metrics import fraction_of_services, normalized_fraction_of_services
from repro.engine.runtime import RUNTIME_EVENT_BUS
from repro.internet.churn import ChurnConfig
from repro.scanner.pipeline import ScanPipeline
from repro.telemetry import Telemetry

_SCALES = {"small": SMALL_SCALE, "medium": MEDIUM_SCALE}


def _scale(name: str):
    return _SCALES[name]


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small",
                        help="experiment scale (universe size)")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed for universe generation")


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", choices=("serial", "thread", "pool"),
                        default=None,
                        help="run model/priors/prediction-index builds on the "
                             "persistent engine runtime with this backend "
                             "(results are identical; 'pool' keeps a warm "
                             "worker pool for the whole run)")
    parser.add_argument("--workers", type=int, default=0,
                        help="engine runtime worker count (0 = machine default; "
                             "only meaningful with --executor)")
    parser.add_argument("--shard-count", type=int, default=0,
                        help="shards the resident seed columns are partitioned "
                             "into (0 = one per worker; more shards than "
                             "workers lets the least-loaded placement balance "
                             "skewed universes; only meaningful with "
                             "--executor)")
    parser.add_argument("--verbose-runtime", action="store_true",
                        help="print the engine runtime's structured "
                             "supervision events (task errors with worker "
                             "tracebacks, worker crashes with exit codes, "
                             "respawn/reload/redispatch recovery steps) to "
                             "stderr")


def _print_runtime_event(event) -> None:
    """The ``--verbose-runtime`` sink: one stderr line per runtime event."""
    print(f"[repro.engine.runtime] {event}", file=sys.stderr)


def _configure_runtime_events(args: argparse.Namespace) -> None:
    """Subscribe a stderr sink to the runtime event bus on opt-in.

    Every supervision event (task errors with worker tracebacks, worker
    crashes with exit codes, respawn/reload/redispatch recovery steps)
    flows over :data:`~repro.engine.runtime.RUNTIME_EVENT_BUS`;
    ``--verbose-runtime`` attaches a print sink to that same stream -- the
    fields are exactly what the structured-logging path records.
    Idempotent: the bus deduplicates the sink across repeated CLI
    invocations in one process.
    """
    if not getattr(args, "verbose_runtime", False):
        return
    RUNTIME_EVENT_BUS.subscribe(_print_runtime_event)


def _trace_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """A live :class:`Telemetry` when ``--trace-out`` asked for one."""
    if getattr(args, "trace_out", None):
        return Telemetry()
    return None


def _write_trace(telemetry: Optional[Telemetry],
                 args: argparse.Namespace) -> None:
    """Export the collected span tree to the ``--trace-out`` file."""
    if telemetry is None:
        return
    telemetry.write_trace(args.trace_out)
    print(f"trace written to {args.trace_out} "
          f"({telemetry.tracer.span_count()} spans)", file=sys.stderr)


def _save_run_snapshot(directory, result, universe, status_encoder=None,
                       runtime=None, telemetry=None) -> dict:
    """Persist a run's encoded seed columns + Table 2 artifacts to ``directory``.

    The seed observations re-encode into columnar form (through
    ``status_encoder`` when the caller's pipeline is available, so status
    ids match live batches) and the host-feature relation is re-extracted so
    the snapshot carries everything a warm restart needs.  With a live
    ``runtime`` the host groups are additionally pre-sharded into the
    runtime's layout, making the saved shards mmap-loadable by an equally
    shaped pool.
    """
    from repro.core.features import extract_host_features_columns
    from repro.engine.snapshot import save_snapshot
    from repro.scanner.records import ObservationBatch

    config = result.config
    batch = ObservationBatch.from_observations(result.seed_observations,
                                               statuses=status_encoder)
    host_features = extract_host_features_columns(
        batch, universe.topology.asn_db, config.feature_config)
    shard_kwargs = {}
    if runtime is not None:
        shard_kwargs = {"shard_count": runtime.shard_count,
                        "placement_workers": runtime.num_workers}
    manifest = save_snapshot(directory, observations=batch,
                             host_features=host_features, model=result.model,
                             priors_plan=result.priors_plan,
                             index=result.feature_index,
                             step_size=config.step_size, telemetry=telemetry,
                             **shard_kwargs)
    print(f"snapshot saved to {directory} "
          f"({len(manifest['sections'])} sections)", file=sys.stderr)
    return manifest


def _load_snapshot_seed(directory):
    """Rebuild a seed-scan result from a snapshot's encoded seed columns.

    The reloaded seed carries both the object rows and the columnar batch,
    so every GPS ingest path (fused columnar, legacy object) consumes it
    exactly like a freshly collected seed -- except no probes are charged
    (the Section 6.5 seed-reuse saving).
    """
    from repro.engine.snapshot import open_snapshot
    from repro.scanner.pipeline import SeedScanResult

    snapshot = open_snapshot(directory)
    batch = snapshot.observation_batch()
    return SeedScanResult(observations=batch.materialize(),
                          sampled_ips=sorted(set(batch.ips)),
                          removed_pseudo_services=0,
                          batch=batch)


def _add_snapshot_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--save-snapshot", default=None, metavar="DIR",
                        help="after the run, persist the encoded seed "
                             "columns and the model/priors/index artifacts "
                             "as a versioned snapshot directory")
    parser.add_argument("--load-snapshot", default=None, metavar="DIR",
                        help="reuse the seed observations saved in this "
                             "snapshot instead of collecting a seed scan "
                             "(no seed bandwidth is charged -- the paper's "
                             "Section 6.5 deployment mode)")


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Run GPS end to end on a fresh synthetic universe and print a summary."""
    universe = make_universe(_scale(args.scale), seed=args.seed)
    telemetry = _trace_telemetry(args)
    pipeline = ScanPipeline(universe, telemetry=telemetry)
    _configure_runtime_events(args)
    engine_kwargs = {}
    if args.executor is not None:
        engine_kwargs = {"use_engine": True, "executor": args.executor,
                         "num_workers": args.workers,
                         "shard_count": args.shard_count}
    config = GPSConfig(seed_fraction=args.seed_fraction,
                       step_size=args.step_size, **engine_kwargs)
    seed = None
    if args.load_snapshot:
        seed = _load_snapshot_seed(args.load_snapshot)
        print(f"reusing {len(seed.observations)} seed observations from "
              f"snapshot {args.load_snapshot} (no seed scan charged)",
              file=sys.stderr)
    with GPS(pipeline, config, telemetry=telemetry) as gps:
        result = gps.run(seed=seed, seed_cost_probes=0 if seed else None)
        if args.save_snapshot:
            _save_run_snapshot(args.save_snapshot, result, universe,
                               status_encoder=pipeline.status_encoder,
                               runtime=gps.runtime(), telemetry=telemetry)
    _write_trace(telemetry, args)
    truth = set(universe.real_service_pairs())
    found = result.discovered_pairs()
    print(format_table(
        ("quantity", "value"),
        [
            ("hosts in universe", len(universe.hosts)),
            ("services in universe", len(truth)),
            ("seed observations", len(result.seed_observations)),
            ("priors scan entries", len(result.priors_plan)),
            ("predictions issued", len(result.predictions)),
            ("fraction of services found",
             f"{fraction_of_services(found, truth):.1%}"),
            ("normalized services found",
             f"{normalized_fraction_of_services(found, truth):.1%}"),
            ("bandwidth (100% scans)", f"{pipeline.ledger.full_scans():.1f}"),
            ("bandwidth of exhaustive all-port scanning", 65535),
        ],
        title="GPS quickstart",
    ))
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Run the Figure 2-style coverage experiment and print the summary rows."""
    scale = _scale(args.scale)
    universe = make_universe(scale, seed=args.seed)
    telemetry = _trace_telemetry(args)
    _configure_runtime_events(args)
    if args.dataset == "censys":
        dataset = make_censys_dataset(universe, scale)
        seed_fraction = args.seed_fraction or scale.default_seed_fraction
        seed_cost_mode = "scan"
    else:
        dataset = make_lzr_dataset(universe, scale)
        seed_fraction = args.seed_fraction or dataset.sample_fraction / 2
        seed_cost_mode = "available"
    seed_override = None
    if args.load_snapshot:
        seed_override = _load_snapshot_seed(args.load_snapshot)
        seed_cost_mode = "available"  # reused seeds charge nothing (Sec. 6.5)
        print(f"reusing {len(seed_override.observations)} seed observations "
              f"from snapshot {args.load_snapshot}", file=sys.stderr)
    experiment = run_coverage_experiment(universe, dataset, seed_fraction,
                                         step_size=args.step_size,
                                         seed_cost_mode=seed_cost_mode,
                                         executor=args.executor,
                                         num_workers=args.workers,
                                         shard_count=args.shard_count,
                                         telemetry=telemetry,
                                         seed_override=seed_override)
    if args.save_snapshot:
        _save_run_snapshot(args.save_snapshot, experiment.run, universe,
                           telemetry=telemetry)
    _write_trace(telemetry, args)
    print(format_table(
        ("coverage target", "GPS bandwidth (100% scans)", "savings vs optimal order"),
        coverage_summary_rows(experiment, targets=(0.5, 0.7, 0.8, 0.9)),
        title=f"Coverage on the {dataset.name} dataset "
              f"({seed_fraction:.1%} seed, /{args.step_size} step)",
    ))
    print(f"final fraction of services:  {experiment.final_fraction():.1%}")
    print(f"final normalized services:   {experiment.final_normalized_fraction():.1%}")
    print(f"total bandwidth:             "
          f"{experiment.gps_points[-1].full_scans:.1f} 100% scans")
    return 0


def cmd_compare_xgboost(args: argparse.Namespace) -> int:
    """Compare GPS against the XGBoost-style sequential scanner (Figure 4)."""
    scale = _scale(args.scale)
    universe = make_universe(scale, seed=args.seed)
    dataset = make_censys_dataset(universe, scale)
    ports = dataset.port_registry().top_ports(args.ports)
    comparison = run_xgboost_comparison(universe, dataset, ports=ports,
                                        seed_fraction=args.seed_fraction,
                                        step_size=args.step_size)
    print(format_table(
        ("port", "GPS prior bw", "XGB prior bw", "GPS port bw", "XGB port bw"),
        [(entry.port,
          f"{entry.gps_prior_full_scans:.2f}", f"{entry.xgb_prior_full_scans:.2f}",
          f"{entry.gps_port_full_scans:.4f}", f"{entry.xgb_port_full_scans:.4f}")
         for entry in comparison.ports],
        title="GPS vs XGBoost-style scanner (bandwidth in 100% scans)",
    ))
    print(f"average prior-bandwidth ratio (XGB/GPS): "
          f"{format_ratio(comparison.average_prior_savings())}")
    print(f"ports where GPS's target-port scan is cheaper: "
          f"{comparison.ports_where_gps_cheaper()} of {len(comparison.ports)}")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Measure service churn between two scans (Section 3)."""
    universe = make_universe(_scale(args.scale), seed=args.seed)
    measurement = run_churn_measurement(universe, ChurnConfig(days=args.days,
                                                              seed=args.seed))
    print(format_table(
        ("quantity", "value"),
        [
            ("days between scans", measurement.days),
            ("services that disappeared", f"{measurement.service_loss:.1%}"),
            ("normalized services that disappeared",
             f"{measurement.normalized_service_loss:.1%}"),
        ],
        title="Churn measurement",
    ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve GPS predictions over HTTP on a warm engine runtime.

    Builds one model named ``default`` from a synthetic universe's seed scan,
    keeps its shards resident, and answers lookups until interrupted.
    Imports live here so the asyncio serving stack is only paid for by this
    command.
    """
    from repro.serving.http import ServiceHost, serve_forever
    from repro.serving.service import ServingConfig

    _configure_runtime_events(args)
    universe = make_universe(_scale(args.scale), seed=args.seed)
    pipeline = ScanPipeline(universe)

    executor = args.executor or "serial"
    config = ServingConfig(executor=executor, num_workers=args.workers,
                           shard_count=args.shard_count,
                           telemetry_enabled=not args.no_telemetry)
    host = ServiceHost(config)
    gps_config = GPSConfig(seed_fraction=args.seed_fraction,
                           use_engine=True, executor=executor,
                           num_workers=args.workers,
                           shard_count=args.shard_count)
    if args.snapshot_dir:
        info = host.call(host.service.load_model_from_snapshot(
            "default", pipeline, args.snapshot_dir, gps_config))
        print(f"model 'default' warm-restarted from snapshot "
              f"{args.snapshot_dir} (format v{info.snapshot_version}): "
              f"{info.seed_services} seed services, "
              f"{info.index_entries} index entries, "
              f"loaded in {info.build_seconds:.2f}s "
              f"(resident shards: {info.resident_shards})")
    else:
        seed = pipeline.seed_scan(args.seed_fraction, seed=args.seed)
        info = host.call(host.service.load_model("default", pipeline, seed,
                                                 gps_config))
        print(f"model 'default' ready: {info.seed_services} seed services, "
              f"{info.index_entries} index entries, "
              f"built in {info.build_seconds:.2f}s "
              f"(resident shards: {info.resident_shards})")
    print(f"serving on http://{args.address}:{args.port} "
          "(GET /healthz /models /stats /metrics /lookup, "
          "POST /predict /scan); Ctrl-C to drain and stop")
    serve_forever(host, args.address, args.port)
    return 0


def cmd_snapshot_save(args: argparse.Namespace) -> int:
    """Build GPS artifacts on a synthetic universe and persist them.

    Equivalent to ``quickstart --save-snapshot`` without the summary table:
    one full run produces the encoded seed columns and the three Table 2
    artifacts, which are written to ``--out`` (with pre-sharded host groups
    when ``--executor`` keeps a runtime whose layout to mirror).
    """
    universe = make_universe(_scale(args.scale), seed=args.seed)
    pipeline = ScanPipeline(universe)
    _configure_runtime_events(args)
    engine_kwargs = {}
    if args.executor is not None:
        engine_kwargs = {"use_engine": True, "executor": args.executor,
                         "num_workers": args.workers,
                         "shard_count": args.shard_count}
    config = GPSConfig(seed_fraction=args.seed_fraction,
                       step_size=args.step_size, **engine_kwargs)
    with GPS(pipeline, config) as gps:
        result = gps.run()
        manifest = _save_run_snapshot(args.out, result, universe,
                                      status_encoder=pipeline.status_encoder,
                                      runtime=gps.runtime())
    sections = manifest["sections"]
    print(format_table(
        ("section", "columns", "rows"),
        [(name, len(body["columns"]),
          max((entry["rows"] for entry in body["columns"].values()),
              default=0))
         for name, body in sections.items()],
        title=f"Snapshot written to {args.out} "
              f"(format v{manifest['format_version']})",
    ))
    return 0


def cmd_snapshot_load(args: argparse.Namespace) -> int:
    """Open, verify and summarize a snapshot directory.

    Structural and checksum validation always run (``--no-verify`` skips
    only the crc pass); every artifact present is then fully rebuilt, so a
    clean exit proves the snapshot round-trips, not just that it parses.
    """
    from repro.engine.snapshot import open_snapshot

    snapshot = open_snapshot(args.directory, verify=not args.no_verify)
    rows = []
    for name in snapshot.sections():
        files = snapshot.column_files(name)
        rows.append((name, len(files), max((c.rows for c in files), default=0),
                     sum(c.nbytes for c in files)))
    print(format_table(
        ("section", "columns", "rows", "bytes"),
        rows,
        title=f"Snapshot at {args.directory} (format v{snapshot.version}, "
              f"checksums {'skipped' if args.no_verify else 'verified'})",
    ))
    artifacts = []
    if snapshot.has_section("observations"):
        artifacts.append(("seed observations", len(snapshot.observation_batch())))
    if snapshot.has_section("model"):
        artifacts.append(("model co-occurrence pairs",
                          len(snapshot.model().cooccurrence)))
    if snapshot.has_section("priors"):
        artifacts.append(("priors plan entries", len(snapshot.priors_plan())))
    if snapshot.has_section("index"):
        artifacts.append(("prediction index entries",
                          len(snapshot.prediction_index())))
    layout = snapshot.shard_layout()
    if layout is not None:
        artifacts.append(("resident shards (step /"
                          f"{layout['step_size']})", layout["shard_count"]))
    if artifacts:
        print(format_table(("artifact", "count"), artifacts,
                           title="Rebuilt artifacts"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="gps-repro",
        description="GPS (SIGCOMM 2022) reproduction: predict IPv4 services "
                    "across all ports on a synthetic Internet.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser("quickstart",
                                       help="run GPS end to end and print a summary")
    _add_common_arguments(quickstart)
    _add_executor_arguments(quickstart)
    quickstart.add_argument("--seed-fraction", type=float, default=0.05)
    quickstart.add_argument("--step-size", type=int, default=16)
    quickstart.add_argument("--trace-out", default=None, metavar="FILE",
                            help="record a span trace of the run (dataset "
                                 "build, feature extraction, model/priors/"
                                 "index builds, scan sweeps) and write it to "
                                 "FILE as JSON")
    _add_snapshot_arguments(quickstart)
    quickstart.set_defaults(func=cmd_quickstart)

    coverage = subparsers.add_parser("coverage",
                                     help="coverage-vs-bandwidth experiment (Figure 2)")
    _add_common_arguments(coverage)
    _add_executor_arguments(coverage)
    coverage.add_argument("--dataset", choices=("censys", "lzr"), default="censys")
    coverage.add_argument("--seed-fraction", type=float, default=None,
                          help="seed size (defaults to the scale's standard value)")
    coverage.add_argument("--step-size", type=int, default=16)
    coverage.add_argument("--trace-out", default=None, metavar="FILE",
                          help="record a span trace of the run and write it "
                               "to FILE as JSON")
    _add_snapshot_arguments(coverage)
    coverage.set_defaults(func=cmd_coverage)

    compare = subparsers.add_parser("compare-xgboost",
                                    help="GPS vs the sequential classifier (Figure 4)")
    _add_common_arguments(compare)
    compare.add_argument("--ports", type=int, default=10,
                         help="number of popular ports to compare on")
    compare.add_argument("--seed-fraction", type=float, default=0.02)
    compare.add_argument("--step-size", type=int, default=16)
    compare.set_defaults(func=cmd_compare_xgboost)

    churn = subparsers.add_parser("churn",
                                  help="service churn between scans (Section 3)")
    _add_common_arguments(churn)
    churn.add_argument("--days", type=int, default=10)
    churn.set_defaults(func=cmd_churn)

    serve = subparsers.add_parser("serve",
                                  help="serve GPS predictions over HTTP")
    _add_common_arguments(serve)
    _add_executor_arguments(serve)
    serve.add_argument("--address", default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port to listen on")
    serve.add_argument("--seed-fraction", type=float, default=0.05,
                       help="seed-scan size the default model is built from")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the serving telemetry (request counters, "
                            "latency histograms, GET /metrics); on by default "
                            "for the serve command")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="warm-restart the default model from this "
                            "snapshot directory instead of building it (the "
                            "pool mmaps saved shards when --executor/--shard-"
                            "count match the snapshot's layout)")
    serve.set_defaults(func=cmd_serve)

    snapshot = subparsers.add_parser(
        "snapshot", help="save or inspect versioned on-disk snapshots")
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command",
                                           required=True)

    snapshot_save = snapshot_sub.add_parser(
        "save", help="run GPS and persist its artifacts as a snapshot")
    _add_common_arguments(snapshot_save)
    _add_executor_arguments(snapshot_save)
    snapshot_save.add_argument("--seed-fraction", type=float, default=0.05)
    snapshot_save.add_argument("--step-size", type=int, default=16)
    snapshot_save.add_argument("--out", required=True, metavar="DIR",
                               help="snapshot directory to write")
    snapshot_save.set_defaults(func=cmd_snapshot_save)

    snapshot_load = snapshot_sub.add_parser(
        "load", help="open, verify and summarize a snapshot directory")
    snapshot_load.add_argument("directory", help="snapshot directory to open")
    snapshot_load.add_argument("--no-verify", action="store_true",
                               help="skip the per-file crc32 pass (structure "
                                    "and sizes are always validated)")
    snapshot_load.set_defaults(func=cmd_snapshot_load)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
