"""Simulated ZGrab: the layer-7 application handshake.

After LZR has confirmed a real protocol is being spoken, the GPS pipeline may
hand the connection to ZGrab to complete the full application-layer handshake
and collect the banner data GPS uses as features (TLS certificates, HTTP
headers, SSH banners, ...).  The simulator returns the ground-truth feature
dictionary of the service (or the synthetic pseudo-service page content when
the target is a pseudo service) and charges the ledger for the handshake
packets.
"""

from __future__ import annotations

import time
from types import MappingProxyType
from typing import Iterable, List, Optional, Tuple

from repro.engine.faults import ProbeLossModel
from repro.internet.banners import BannerFactory
from repro.internet.universe import Universe
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory
from repro.scanner.lzr import FingerprintBatch, FingerprintResult
from repro.scanner.records import ObservationBatch, ScanObservation

#: Packets exchanged to complete a typical application handshake and banner grab.
PROBES_PER_HANDSHAKE = 4

#: Loss-model layer tag (independent draws from the SYN and LZR layers).
LOSS_LAYER = "zgrab"


class ZGrabSimulator:
    """Collects application-layer features for fingerprinted services.

    With a seeded ``loss`` model, a handshake whose banner reply is dropped
    is re-run (charged as a retransmit) up to ``max_retries`` times; LZR
    already proved a service is listening, so retrying is always correct.
    The default (``loss=None``) path is byte-identical to the pre-loss
    simulator.
    """

    def __init__(self, universe: Universe, ledger: BandwidthLedger,
                 banner_factory: Optional[BannerFactory] = None,
                 loss: Optional[ProbeLossModel] = None, max_retries: int = 0,
                 retry_backoff_s: float = 0.0) -> None:
        self.universe = universe
        self.ledger = ledger
        self.banner_factory = banner_factory or BannerFactory(
            unique_body_fraction=universe.config.unique_body_fraction
        )
        self.loss = loss
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    def _handshake_attempts(self, ip: int, port: int) -> Tuple[int, bool]:
        """(attempts spent, banner observed) for one fingerprinted target."""
        if self.loss is None:
            return 1, True
        for attempt in range(self.max_retries + 1):
            if not self.loss.lost(LOSS_LAYER, ip, port, attempt):
                return attempt + 1, True
            if attempt < self.max_retries and self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s)
        return self.max_retries + 1, False

    def grab(self, fingerprint: FingerprintResult,
             category: ScanCategory = ScanCategory.OTHER) -> Optional[ScanObservation]:
        """Complete the layer-7 handshake for one fingerprinted target.

        Returns a :class:`~repro.scanner.records.ScanObservation`, or ``None``
        when the target stopped responding between fingerprinting and the
        application handshake (only possible for targets that were never real
        services to begin with).
        """
        if fingerprint.protocol is None:
            return None
        attempts, observed = self._handshake_attempts(fingerprint.ip,
                                                      fingerprint.port)
        self.ledger.record(category, probes=PROBES_PER_HANDSHAKE * attempts,
                           responses=PROBES_PER_HANDSHAKE if observed else 0,
                           retransmits=PROBES_PER_HANDSHAKE * (attempts - 1))
        if not observed:
            # Every attempt's banner was lost (impossible when the retry
            # budget covers the loss model's consecutive-loss bound).
            return None
        record = self.universe.lookup(fingerprint.ip, fingerprint.port)
        if record is not None:
            return ScanObservation(ip=record.ip, port=record.port,
                                   protocol=record.protocol,
                                   app_features=dict(record.app_features),
                                   ttl=record.ttl)
        host = self.universe.host(fingerprint.ip)
        if host is not None and self.universe.is_pseudo_responsive(fingerprint.ip,
                                                                   fingerprint.port):
            features = self.banner_factory.pseudo_service_features(
                fingerprint.ip, host.pseudo_incident_style, port=fingerprint.port
            )
            return ScanObservation(ip=fingerprint.ip, port=fingerprint.port,
                                   protocol="http", app_features=features,
                                   ttl=host.base_ttl)
        return None

    def grab_many(self, fingerprints: Iterable[FingerprintResult],
                  category: ScanCategory = ScanCategory.OTHER) -> List[ScanObservation]:
        """Complete handshakes for a batch of fingerprinted targets."""
        observations: List[ScanObservation] = []
        for fingerprint in fingerprints:
            observation = self.grab(fingerprint, category=category)
            if observation is not None:
                observations.append(observation)
        return observations

    def grab_batch(self, fingerprints: Iterable[FingerprintResult],
                   category: ScanCategory = ScanCategory.OTHER,
                   ) -> List[ScanObservation]:
        """Batched :meth:`grab_many` (the batched prediction scan, Section 5.4).

        Produces the same observations in the same order and charges the
        ledger identically, but resolves each target with one host lookup
        and records the handshake cost once for the whole batch instead of
        once per target.
        """
        observations: List[ScanObservation] = []
        hosts_get = self.universe.hosts.get
        lossy = self.loss is not None
        handshakes = 0
        answered = 0
        retried = 0
        for fingerprint in fingerprints:
            if fingerprint.protocol is None:
                continue
            handshakes += 1
            ip, port = fingerprint.ip, fingerprint.port
            if lossy:
                attempts, observed = self._handshake_attempts(ip, port)
                retried += attempts - 1
                if not observed:
                    continue
            answered += 1
            host = hosts_get(ip)
            if host is None:
                continue
            record = host.services.get(port)
            if record is not None:
                observations.append(ScanObservation(
                    ip=record.ip, port=record.port, protocol=record.protocol,
                    app_features=dict(record.app_features), ttl=record.ttl))
                continue
            if host.is_pseudo_responsive_on(port):
                features = self.banner_factory.pseudo_service_features(
                    ip, host.pseudo_incident_style, port=port
                )
                observations.append(ScanObservation(ip=ip, port=port,
                                                    protocol="http",
                                                    app_features=features,
                                                    ttl=host.base_ttl))
        self.ledger.record(
            category, probes=PROBES_PER_HANDSHAKE * (handshakes + retried),
            responses=PROBES_PER_HANDSHAKE * (answered if lossy else handshakes),
            retransmits=PROBES_PER_HANDSHAKE * retried)
        return observations

    def grab_batch_columns(self, fingerprints: FingerprintBatch,
                           category: ScanCategory = ScanCategory.OTHER,
                           ) -> ObservationBatch:
        """Columnar :meth:`grab_batch`: fold banner grabs into an observation batch.

        Same targets handshaked in the same order and identical ledger
        charges, but per hit the work is one host lookup plus five list
        appends: real services resolve their banner through the universe's
        identity-cached interner (no dict copy); the static pseudo page
        interns by content (collapsing to one id universe-wide) while
        incident-style pseudo pages -- unique per target, so interning
        buys nothing -- ride as batch-local banners and die with the batch.
        Protocol status ids and TTLs pass through from the fingerprint
        columns -- they were read from the same ground-truth records.
        """
        universe = self.universe
        batch = ObservationBatch(banners=universe.banners,
                                 statuses=fingerprints.statuses)
        b_ips, b_ports = batch.ips, batch.ports
        b_status, b_banners, b_ttls = batch.status, batch.banner_ids, batch.ttls
        hosts_get = universe.hosts.get
        banner_id_of = universe.banner_id_of
        intern_pseudo = universe.banners.intern_value
        pseudo_features = self.banner_factory.pseudo_service_features
        # Every fingerprint row bears a protocol, so every row is handshaked
        # (and charged) even if the target stopped resolving since.
        handshakes = len(fingerprints)
        lossy = self.loss is not None
        answered = 0
        retried = 0
        for ip, port, status_id, ttl in zip(fingerprints.ips, fingerprints.ports,
                                            fingerprints.status, fingerprints.ttls):
            if lossy:
                attempts, observed = self._handshake_attempts(ip, port)
                retried += attempts - 1
                if not observed:
                    continue
                answered += 1
            host = hosts_get(ip)
            if host is None:
                continue
            record = host.services.get(port)
            if record is not None:
                banner_id = banner_id_of(record)
            elif host.is_pseudo_responsive_on(port):
                features = pseudo_features(ip, host.pseudo_incident_style,
                                           port=port)
                if host.pseudo_incident_style:
                    banner_id = batch.add_local_banner(MappingProxyType(features))
                else:
                    banner_id = intern_pseudo(features)
            else:
                continue
            b_ips.append(ip)
            b_ports.append(port)
            b_status.append(status_id)
            b_banners.append(banner_id)
            b_ttls.append(ttl)
        self.ledger.record(
            category, probes=PROBES_PER_HANDSHAKE * (handshakes + retried),
            responses=PROBES_PER_HANDSHAKE * (answered if lossy else handshakes),
            retransmits=PROBES_PER_HANDSHAKE * retried)
        return batch
