"""Pseudo-service filtering (Appendix B).

A substantial number of hosts "successfully" answer application handshakes on
more than a thousand contiguous ports while hosting no real service at all --
block pages, CDN default pages, "no service exists here" responders.  If those
observations reached the seed set, GPS would learn to predict pseudo services
instead of real ones, so the paper filters them before training:

1. strip dynamic fields (dates, cookies, TLS randomness) from the banner data
   and remove all services on a host that share the same filtered content;
2. remove *every* service of any host that still serves more than ten
   services, which the paper reports identifies pseudo-service hosts with
   100 % recall and 99 % precision.

The second rule also removes the handful of genuinely service-dense hosts
(the 1 % precision loss); the :class:`FilterReport` keeps enough bookkeeping
to measure that trade-off against the synthetic ground truth in tests and the
Appendix B benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.scanner.records import ScanObservation, observations_by_host

#: Banner fields that are expected to vary between otherwise identical
#: responses (the paper's "expected dynamic fields": HTTP Date, cookies, TLS
#: random bytes).  The synthetic banners do not emit these keys, but the filter
#: strips them anyway so that real-scan data with those fields present would be
#: handled identically.
DEFAULT_DYNAMIC_FIELDS = ("http_date", "http_cookie", "tls_random")


@dataclass
class FilterReport:
    """What the pseudo-service filter removed and why.

    Attributes:
        kept: observations that survived filtering.
        removed_duplicate_content: observations removed because every service
            on their host shared identical (dynamic-field-stripped) content.
        removed_dense_host: observations removed because their host served
            more than ``max_services_per_host`` services.
        flagged_hosts: addresses of hosts that had any observation removed.
    """

    kept: List[ScanObservation] = field(default_factory=list)
    removed_duplicate_content: List[ScanObservation] = field(default_factory=list)
    removed_dense_host: List[ScanObservation] = field(default_factory=list)
    flagged_hosts: Set[int] = field(default_factory=set)

    def removed_count(self) -> int:
        """Total number of observations removed."""
        return len(self.removed_duplicate_content) + len(self.removed_dense_host)


class PseudoServiceFilter:
    """Implements the Appendix B filtering procedure."""

    def __init__(self, max_services_per_host: int = 10,
                 dynamic_fields: Sequence[str] = DEFAULT_DYNAMIC_FIELDS,
                 min_duplicate_services: int = 5) -> None:
        """Create a filter.

        Args:
            max_services_per_host: hosts serving more than this many services
                have all their services removed (the paper uses 10).
            dynamic_fields: banner keys stripped before comparing content.
            min_duplicate_services: minimum number of identical-content
                services on a host before the duplicate-content rule fires;
                prevents a host that legitimately serves the same page on
                80 and 443 from being filtered.
        """
        if max_services_per_host < 1:
            raise ValueError("max_services_per_host must be >= 1")
        if min_duplicate_services < 2:
            raise ValueError("min_duplicate_services must be >= 2")
        self.max_services_per_host = max_services_per_host
        self.dynamic_fields = tuple(dynamic_fields)
        self.min_duplicate_services = min_duplicate_services

    # -- helpers ------------------------------------------------------------------

    def _stripped_content(self, observation: ScanObservation) -> Tuple[Tuple[str, str], ...]:
        """Banner content with dynamic fields removed, as a hashable key."""
        return tuple(sorted(
            (key, value) for key, value in observation.app_features.items()
            if key not in self.dynamic_fields
        ))

    # -- main entry point ------------------------------------------------------------

    def apply(self, observations: Iterable[ScanObservation]) -> FilterReport:
        """Filter a set of observations, returning a full report."""
        report = FilterReport()
        for ip, host_observations in observations_by_host(observations).items():
            # Rule 2 first: dense hosts are dropped wholesale.
            if len(host_observations) > self.max_services_per_host:
                report.removed_dense_host.extend(host_observations)
                report.flagged_hosts.add(ip)
                continue

            # Rule 1: identical filtered content across many of the host's services.
            content_groups: Dict[Tuple[Tuple[str, str], ...], List[ScanObservation]] = {}
            for observation in host_observations:
                content_groups.setdefault(self._stripped_content(observation), []).append(observation)
            removed_here: Set[Tuple[int, int]] = set()
            for group in content_groups.values():
                if len(group) >= self.min_duplicate_services:
                    report.removed_duplicate_content.extend(group)
                    removed_here.update(obs.pair() for obs in group)
            if removed_here:
                report.flagged_hosts.add(ip)
            report.kept.extend(
                obs for obs in host_observations if obs.pair() not in removed_here
            )
        return report

    def filter(self, observations: Iterable[ScanObservation]) -> List[ScanObservation]:
        """Filter and return only the surviving observations."""
        return self.apply(observations).kept


def filter_quality(report: FilterReport,
                   pseudo_hosts: Set[int]) -> Mapping[str, float]:
    """Recall/precision of the filter against ground-truth pseudo hosts.

    ``pseudo_hosts`` is the set of addresses the universe generator marked as
    pseudo-service hosts.  Recall is the fraction of those hosts the filter
    flagged; precision is the fraction of flagged hosts that really were
    pseudo hosts.  The paper reports 100 % recall and 99 % precision for the
    ">10 services" rule.
    """
    flagged = report.flagged_hosts
    if not flagged:
        return {"recall": 1.0 if not pseudo_hosts else 0.0, "precision": 1.0}
    flagged_pseudo = len(flagged & pseudo_hosts)
    recall = flagged_pseudo / len(pseudo_hosts) if pseudo_hosts else 1.0
    precision = flagged_pseudo / len(flagged)
    return {"recall": recall, "precision": precision}
