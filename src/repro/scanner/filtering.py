"""Pseudo-service filtering (Appendix B).

A substantial number of hosts "successfully" answer application handshakes on
more than a thousand contiguous ports while hosting no real service at all --
block pages, CDN default pages, "no service exists here" responders.  If those
observations reached the seed set, GPS would learn to predict pseudo services
instead of real ones, so the paper filters them before training:

1. strip dynamic fields (dates, cookies, TLS randomness) from the banner data
   and remove all services on a host that share the same filtered content;
2. remove *every* service of any host that still serves more than ten
   services, which the paper reports identifies pseudo-service hosts with
   100 % recall and 99 % precision.

The second rule also removes the handful of genuinely service-dense hosts
(the 1 % precision loss); the :class:`FilterReport` keeps enough bookkeeping
to measure that trade-off against the synthetic ground truth in tests and the
Appendix B benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.internet.banners import BannerInterner
from repro.scanner.records import (
    ObservationBatch,
    ScanObservation,
    observations_by_host,
)

#: Banner fields that are expected to vary between otherwise identical
#: responses (the paper's "expected dynamic fields": HTTP Date, cookies, TLS
#: random bytes).  The synthetic banners do not emit these keys, but the filter
#: strips them anyway so that real-scan data with those fields present would be
#: handled identically.
DEFAULT_DYNAMIC_FIELDS = ("http_date", "http_cookie", "tls_random")


@dataclass
class FilterReport:
    """What the pseudo-service filter removed and why.

    Attributes:
        kept: observations that survived filtering.
        removed_duplicate_content: observations removed because every service
            on their host shared identical (dynamic-field-stripped) content.
        removed_dense_host: observations removed because their host served
            more than ``max_services_per_host`` services.
        flagged_hosts: addresses of hosts that had any observation removed.
    """

    kept: List[ScanObservation] = field(default_factory=list)
    removed_duplicate_content: List[ScanObservation] = field(default_factory=list)
    removed_dense_host: List[ScanObservation] = field(default_factory=list)
    flagged_hosts: Set[int] = field(default_factory=set)

    def removed_count(self) -> int:
        """Total number of observations removed."""
        return len(self.removed_duplicate_content) + len(self.removed_dense_host)


class PseudoServiceFilter:
    """Implements the Appendix B filtering procedure."""

    def __init__(self, max_services_per_host: int = 10,
                 dynamic_fields: Sequence[str] = DEFAULT_DYNAMIC_FIELDS,
                 min_duplicate_services: int = 5) -> None:
        """Create a filter.

        Args:
            max_services_per_host: hosts serving more than this many services
                have all their services removed (the paper uses 10).
            dynamic_fields: banner keys stripped before comparing content.
            min_duplicate_services: minimum number of identical-content
                services on a host before the duplicate-content rule fires;
                prevents a host that legitimately serves the same page on
                80 and 443 from being filtered.
        """
        if max_services_per_host < 1:
            raise ValueError("max_services_per_host must be >= 1")
        if min_duplicate_services < 2:
            raise ValueError("min_duplicate_services must be >= 2")
        self.max_services_per_host = max_services_per_host
        self.dynamic_fields = tuple(dynamic_fields)
        self.min_duplicate_services = min_duplicate_services
        # Stripped-content keys memoized per interned banner id (columnar
        # path): a banner's key is a pure function of its content, so it is
        # computed once per *distinct* banner instead of once per observation.
        self._content_keys: Dict[int, Tuple[Tuple[str, str], ...]] = {}
        self._content_keys_interner: Optional[BannerInterner] = None

    # -- helpers ------------------------------------------------------------------

    def _stripped_content(self, observation: ScanObservation) -> Tuple[Tuple[str, str], ...]:
        """Banner content with dynamic fields removed, as a hashable key."""
        return tuple(sorted(
            (key, value) for key, value in observation.app_features.items()
            if key not in self.dynamic_fields
        ))

    # -- main entry point ------------------------------------------------------------

    def apply(self, observations: Iterable[ScanObservation]) -> FilterReport:
        """Filter a set of observations, returning a full report."""
        report = FilterReport()
        for ip, host_observations in observations_by_host(observations).items():
            # Rule 2 first: dense hosts are dropped wholesale.
            if len(host_observations) > self.max_services_per_host:
                report.removed_dense_host.extend(host_observations)
                report.flagged_hosts.add(ip)
                continue

            # Rule 1: identical filtered content across many of the host's services.
            content_groups: Dict[Tuple[Tuple[str, str], ...], List[ScanObservation]] = {}
            for observation in host_observations:
                content_groups.setdefault(self._stripped_content(observation), []).append(observation)
            removed_here: Set[Tuple[int, int]] = set()
            for group in content_groups.values():
                if len(group) >= self.min_duplicate_services:
                    report.removed_duplicate_content.extend(group)
                    removed_here.update(obs.pair() for obs in group)
            if removed_here:
                report.flagged_hosts.add(ip)
            report.kept.extend(
                obs for obs in host_observations if obs.pair() not in removed_here
            )
        return report

    def filter(self, observations: Iterable[ScanObservation]) -> List[ScanObservation]:
        """Filter and return only the surviving observations."""
        return self.apply(observations).kept

    # -- columnar entry point ----------------------------------------------------------

    def _banner_content_keys(self, banners: BannerInterner) -> Dict[int, Tuple]:
        """The per-banner-id stripped-content memo, reset on interner change."""
        if self._content_keys_interner is not banners:
            self._content_keys = {}
            self._content_keys_interner = banners
        return self._content_keys

    def _partition_batch(self, batch: ObservationBatch,
                         ) -> Tuple[List[int], List[int], List[int], Set[int]]:
        """Split a batch's row indices by filter outcome.

        Returns ``(kept, removed_duplicate, removed_dense, flagged_hosts)``
        row-index lists.  The grouping is one sort-based pass over the flat
        columns: every ip is assigned its first-seen rank, all row indices
        sort once by ``(rank, port)`` (stable, so equal ports keep probe
        order), and hosts are the runs of equal ips in that order -- no
        per-host list-of-lists is ever built.  ``kept`` therefore comes back
        in host first-seen order with ports ascending within each host,
        exactly the order :meth:`apply` emits.
        """
        ips, ports = batch.ips, batch.ports
        banner_ids = batch.banner_ids
        rank: Dict[int, int] = {}
        for ip in ips:
            if ip not in rank:
                rank[ip] = len(rank)
        order = sorted(range(len(ips)),
                       key=lambda i: (rank[ips[i]], ports[i]))

        content_keys = self._banner_content_keys(batch.banners)
        content_keys_get = content_keys.get
        dynamic_fields = self.dynamic_fields
        banner_features = batch.banners.features
        local_banners = batch.local_banners
        kept: List[int] = []
        removed_duplicate: List[int] = []
        removed_dense: List[int] = []
        flagged: Set[int] = set()
        total = len(order)
        lo = 0
        while lo < total:
            # One run of equal ips == one host's rows, ports ascending.
            ip = ips[order[lo]]
            hi = lo + 1
            while hi < total and ips[order[hi]] == ip:
                hi += 1
            indices = order[lo:hi]
            lo = hi
            # Rule 2 first: dense hosts are dropped wholesale.
            if len(indices) > self.max_services_per_host:
                removed_dense.extend(indices)
                flagged.add(ip)
                continue
            # A host with fewer rows than the duplicate threshold cannot
            # form a removable content group; keep it without resolving any
            # content keys (the overwhelmingly common case in a prediction
            # scan, where most hosts contribute one or two targets).
            if len(indices) < self.min_duplicate_services:
                kept.extend(indices)
                continue
            # Rule 1: identical stripped content across many of the host's
            # services; keys resolve through the per-banner-id memo.
            groups: Dict[Tuple, List[int]] = {}
            for index in indices:
                banner_id = banner_ids[index]
                if banner_id >= 0:
                    key = content_keys_get(banner_id)
                    if key is None:
                        key = tuple(sorted(
                            item for item in banner_features(banner_id).items()
                            if item[0] not in dynamic_fields
                        ))
                        content_keys[banner_id] = key
                else:
                    # Batch-local banner (unique to one target): compute the
                    # key directly; memoizing it would outlive the batch.
                    key = tuple(sorted(
                        item
                        for item in local_banners[-banner_id - 1].items()
                        if item[0] not in dynamic_fields
                    ))
                group = groups.get(key)
                if group is None:
                    group = groups[key] = []
                group.append(index)
            removed: Set[int] = set()
            for group in groups.values():
                if len(group) >= self.min_duplicate_services:
                    removed.update(group)
            if removed:
                removed_duplicate.extend(i for i in indices if i in removed)
                flagged.add(ip)
                kept.extend(i for i in indices if i not in removed)
            else:
                kept.extend(indices)
        return kept, removed_duplicate, removed_dense, flagged

    def filter_batch(self, batch: ObservationBatch) -> List[ScanObservation]:
        """Columnar :meth:`filter`: apply both rules to an observation batch.

        Produces exactly ``self.filter(batch.materialize())`` -- same
        surviving observations in the same order -- but the filtering runs on
        the batch's flat columns (one sort-based grouping pass, see
        :meth:`_partition_batch`), the stripped-content key is computed once
        per *distinct* interned banner id (then memoized across batches)
        instead of once per observation, and only the surviving rows are ever
        materialized into :class:`~repro.scanner.records.ScanObservation`
        objects.

        Duplicate (ip, port) rows cannot disagree: the simulated universe is
        deterministic per target, so equal pairs always carry equal banner
        ids and land in the same content group -- index-wise removal is
        therefore identical to :meth:`apply`'s pair-wise removal.
        """
        kept, _, _, _ = self._partition_batch(batch)
        row = batch.row
        return [row(i) for i in kept]

    def apply_batch(self, batch: ObservationBatch,
                    ) -> Tuple[ObservationBatch, FilterReport]:
        """Columnar :meth:`apply`: filter a batch, keeping the columnar form.

        Returns ``(kept_batch, report)``: the surviving rows as a new
        :class:`~repro.scanner.records.ObservationBatch` sharing the input's
        banner interner and status encoder, plus a :class:`FilterReport`
        whose removed lists and ``flagged_hosts`` contain exactly the rows
        :meth:`apply` over the materialized input would remove (removed rows
        come back in host/port order rather than content-group order).
        ``report.kept`` is deliberately left empty
        -- the kept rows already exist as the returned batch, and
        materializing them twice would defeat the point of staying columnar
        (``removed_count()`` never consults ``kept``).
        """
        kept, removed_duplicate, removed_dense, flagged = (
            self._partition_batch(batch))
        row = batch.row
        report = FilterReport(
            removed_duplicate_content=[row(i) for i in removed_duplicate],
            removed_dense_host=[row(i) for i in removed_dense],
            flagged_hosts=flagged,
        )
        return batch.select(kept), report


def filter_quality(report: FilterReport,
                   pseudo_hosts: Set[int]) -> Mapping[str, float]:
    """Recall/precision of the filter against ground-truth pseudo hosts.

    ``pseudo_hosts`` is the set of addresses the universe generator marked as
    pseudo-service hosts.  Recall is the fraction of those hosts the filter
    flagged; precision is the fraction of flagged hosts that really were
    pseudo hosts.  The paper reports 100 % recall and 99 % precision for the
    ">10 services" rule.
    """
    flagged = report.flagged_hosts
    if not flagged:
        return {"recall": 1.0 if not pseudo_hosts else 0.0, "precision": 1.0}
    flagged_pseudo = len(flagged & pseudo_hosts)
    recall = flagged_pseudo / len(pseudo_hosts) if pseudo_hosts else 1.0
    precision = flagged_pseudo / len(flagged)
    return {"recall": recall, "precision": precision}
