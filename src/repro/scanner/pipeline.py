"""The end-to-end scan pipeline: ZMap -> LZR -> ZGrab with bandwidth accounting.

:class:`ScanPipeline` is the only interface through which GPS, the baselines
and the dataset builders touch the synthetic universe.  It exposes the three
scan shapes the paper's system needs:

* :meth:`ScanPipeline.seed_scan` -- a uniform random address sample swept
  across all (or a subset of) ports, fingerprinted, banner-grabbed and
  pseudo-service-filtered: the "seed set" of Section 5.1;
* :meth:`ScanPipeline.scan_prefix` -- an exhaustive sweep of one port over one
  subnetwork: the building block of the priors scan (Section 5.3);
* :meth:`ScanPipeline.scan_pairs` -- targeted probes of predicted (ip, port)
  pairs: the prediction scan (Section 5.4).  Passing ``batch_prefix_len``
  (or calling :meth:`ScanPipeline.scan_pair_batches` with pre-grouped
  :class:`~repro.scanner.records.ProbeBatch` objects) runs the same probes
  through the batched scanner layers, which amortize ground-truth lookups,
  middlebox checks and ledger charges across each per-(prefix, port) batch
  instead of paying them per pair.

Every probe sent is charged to a :class:`~repro.scanner.bandwidth.BandwidthLedger`
so that each experiment can report cost in the paper's unit of "100 % scans".
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.encoding import DictionaryEncoder
from repro.engine.faults import FaultPlan
from repro.internet.banners import BannerFactory
from repro.internet.universe import Universe
from repro.net.ipv4 import prefix_size, subnet_key_parts
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory
from repro.scanner.filtering import PseudoServiceFilter
from repro.scanner.lzr import LZRSimulator
from repro.scanner.records import (
    ObservationBatch,
    ProbeBatch,
    ScanObservation,
    group_pairs,
)
from repro.scanner.zgrab import ZGrabSimulator
from repro.scanner.zmap import ZMapSimulator
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: If a host SYN-ACKs on more than this many ports in a single sweep, LZR
#: samples a handful of them before deciding the host is a middlebox, instead
#: of fingerprinting every port individually.
MIDDLEBOX_SUSPECT_PORT_COUNT = 30000
MIDDLEBOX_SAMPLE_PORTS = 10


@dataclass
class SeedScanResult:
    """Outcome of a seed scan.

    Attributes:
        observations: filtered, fully-featured service observations.
        sampled_ips: the addresses that were probed (responsive or not).
        removed_pseudo_services: number of observations the Appendix B filter
            removed.
        ports_scanned: the ports each sampled address was probed on (``None``
            means all 65,535 ports).
        batch: the same observations in columnar form.  Live seed scans
            produce it natively (the sweep, the fingerprint/grab layers and
            the pseudo-service filter all run columnar) and dataset-split
            seeds slice the dataset's columns.  Row ``i`` of the batch
            materializes to ``observations[i]``; consumers that can stay
            columnar (GPS's fused feature ingest) read this and skip the
            object rows.
    """

    observations: List[ScanObservation]
    sampled_ips: List[int]
    removed_pseudo_services: int
    ports_scanned: Optional[Tuple[int, ...]] = None
    batch: Optional[ObservationBatch] = None


class ScanPipeline:
    """Chains the simulated ZMap, LZR and ZGrab against one universe."""

    def __init__(self, universe: Universe,
                 ledger: Optional[BandwidthLedger] = None,
                 pseudo_filter: Optional[PseudoServiceFilter] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.universe = universe
        self.ledger = ledger or BandwidthLedger(
            address_space_size=universe.address_space_size()
        )
        # The telemetry bridge taps the ledger's single recording choke
        # point: every probe/response/retransmit any scanner layer charges
        # mirrors into live per-category counters, and the top-level scan
        # shapes time themselves into per-shape sweep histograms.  Scan
        # results and ledger totals are unaffected either way.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            self.ledger.observer = self._observe_bandwidth
        banner_factory = BannerFactory(
            unique_body_fraction=universe.config.unique_body_fraction
        )
        # A fault plan turns the pipeline lossy: each layer draws seeded,
        # independent loss decisions and retries unanswered targets with
        # backoff.  The loss model bounds consecutive losses below the retry
        # budget (FaultPlan validates this), so scan results stay identical
        # to the lossless run -- only the ledger shows the retransmits.
        self.fault_plan = fault_plan
        loss = fault_plan.loss_model() if fault_plan is not None else None
        retries = fault_plan.max_probe_retries if loss is not None else 0
        backoff = fault_plan.retry_backoff_s if loss is not None else 0.0
        self.zmap = ZMapSimulator(universe, self.ledger, loss=loss,
                                  max_retries=retries, retry_backoff_s=backoff)
        self.lzr = LZRSimulator(universe, self.ledger, loss=loss,
                                max_retries=retries, retry_backoff_s=backoff)
        self.zgrab = ZGrabSimulator(universe, self.ledger, banner_factory,
                                    loss=loss, max_retries=retries,
                                    retry_backoff_s=backoff)
        self.pseudo_filter = pseudo_filter or PseudoServiceFilter()
        # One protocol-status id space per pipeline, so status ids stay
        # stable across every columnar batch this pipeline produces.
        self._status_encoder = DictionaryEncoder()

    @property
    def status_encoder(self) -> DictionaryEncoder:
        """The pipeline-wide protocol-status id space.

        Consumers folding object rows back into columns
        (:meth:`~repro.scanner.records.ObservationBatch.from_observations`)
        pass this so their batches speak the same status ids as every batch
        the pipeline produced, instead of re-encoding into a fresh space.
        """
        return self._status_encoder

    # -- address sampling -------------------------------------------------------------

    def sample_addresses(self, fraction: float, rng: random.Random) -> List[int]:
        """Uniformly sample a fraction of the announced address space."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"sample fraction out of range: {fraction}")
        ranges: List[Tuple[int, int]] = []
        for system in self.universe.topology.systems:
            for base, length in system.prefixes:
                ranges.append((base, prefix_size(length)))
        total = sum(size for _, size in ranges)
        count = max(1, int(round(total * fraction)))
        count = min(count, total)
        picks: set[int] = set()
        while len(picks) < count:
            offset = rng.randrange(total)
            for base, size in ranges:
                if offset < size:
                    picks.add(base + offset)
                    break
                offset -= size
        return sorted(picks)

    # -- scan shapes -------------------------------------------------------------------

    def seed_scan(self, sample_fraction: float, seed: int = 0,
                  ports: Optional[Sequence[int]] = None,
                  apply_filter: bool = True) -> SeedScanResult:
        """Collect a seed set: random address sample swept across ports.

        Args:
            sample_fraction: fraction of the announced address space to probe.
            seed: RNG seed for the address sample.
            ports: restrict the sweep to these ports (``None`` = all 65,535,
                the paper's all-port seed scan; the Censys-style experiments
                pass the top-2K port list).
            apply_filter: run the Appendix B pseudo-service filter on the
                resulting observations (the paper always does).
        """
        sweep_t0 = time.perf_counter() if self.telemetry.enabled else None
        rng = random.Random(seed)
        sampled = self.sample_addresses(sample_fraction, rng)
        port_tuple = tuple(ports) if ports is not None else None
        batch = self._sweep_hosts_columnar(sampled, port_tuple, ScanCategory.SEED)
        removed = 0
        if apply_filter:
            batch, report = self.pseudo_filter.apply_batch(batch)
            removed = report.removed_count()
        if sweep_t0 is not None:
            self._observe_sweep("seed", time.perf_counter() - sweep_t0)
        return SeedScanResult(observations=batch.materialize(),
                              sampled_ips=sampled,
                              removed_pseudo_services=removed,
                              ports_scanned=port_tuple, batch=batch)

    def scan_prefix(self, port: int, subnet: int | Tuple[int, int],
                    category: ScanCategory = ScanCategory.PRIORS,
                    apply_filter: bool = True) -> List[ScanObservation]:
        """Exhaustively scan one port across one subnetwork.

        ``subnet`` is either a packed subnet key (see
        :func:`repro.net.ipv4.subnet_key`) or a ``(base, prefix_len)`` tuple.
        """
        sweep_t0 = time.perf_counter() if self.telemetry.enabled else None
        if isinstance(subnet, tuple):
            base, length = subnet
        else:
            base, length = subnet_key_parts(subnet)
        responders = self.zmap.scan_prefix(port, base, length, category=category)
        fingerprints = self.lzr.fingerprint_many(
            ((ip, port) for ip in responders), category=category
        )
        observations = self.zgrab.grab_many(fingerprints, category=category)
        if apply_filter:
            observations = self.pseudo_filter.filter(observations)
        if sweep_t0 is not None:
            self._observe_sweep("prefix", time.perf_counter() - sweep_t0)
        return observations

    def scan_pairs(self, pairs: Iterable[Tuple[int, int]],
                   category: ScanCategory = ScanCategory.PREDICTION,
                   apply_filter: bool = True,
                   batch_prefix_len: Optional[int] = None) -> List[ScanObservation]:
        """Probe specific (ip, port) targets and banner-grab the responders.

        Args:
            pairs: the (ip, port) targets, probed in order.
            category: ledger category the probes are charged to.
            apply_filter: run the Appendix B pseudo-service filter.
            batch_prefix_len: when set, group the pairs into per-(subnetwork,
                port) batches of that prefix length and run them through the
                batched scanner layers (Section 5.4's prediction scan is
                GPS's default use of this).  The same probes are sent, the
                same services are observed and the ledger totals are
                identical; only the per-pair bookkeeping is amortized, and
                results come back in batch order rather than strict pair
                order.
        """
        if batch_prefix_len is not None:
            # Delegates to scan_pair_batches, which times itself -- no
            # double-counted sweep.
            return self.scan_pair_batches(group_pairs(pairs, batch_prefix_len),
                                          category=category,
                                          apply_filter=apply_filter)
        sweep_t0 = time.perf_counter() if self.telemetry.enabled else None
        hits = self.zmap.scan_pairs(pairs, category=category)
        fingerprints = self.lzr.fingerprint_many(hits, category=category)
        observations = self.zgrab.grab_many(fingerprints, category=category)
        if apply_filter:
            observations = self.pseudo_filter.filter(observations)
        if sweep_t0 is not None:
            self._observe_sweep("pairs", time.perf_counter() - sweep_t0)
        return observations

    def scan_pair_batches(self, batches: Sequence[ProbeBatch],
                          category: ScanCategory = ScanCategory.PREDICTION,
                          apply_filter: bool = True) -> List[ScanObservation]:
        """Probe pre-grouped per-(prefix, port) batches (Section 5.4, batched).

        Equivalent to :meth:`scan_pairs` over the flattened batches -- same
        observations (in batch order) and identical ledger charges -- but the
        whole pass is *columnar*: ZMap resolves responders into flat
        (ip, port) columns with ranged universe queries, LZR and ZGrab fold
        outcomes into parallel int columns (protocol-status ids, interned
        banner ids) instead of allocating per-hit objects, and
        :class:`~repro.scanner.records.ScanObservation` rows materialize only
        here, at the API boundary.  :meth:`scan_pair_batches_columnar`
        exposes the batch itself for consumers that can stay columnar.
        """
        sweep_t0 = time.perf_counter() if self.telemetry.enabled else None
        batch = self.scan_pair_batches_columnar(batches, category=category)
        if apply_filter:
            # The columnar filter memoizes content keys per interned banner
            # id and materializes only the surviving rows.
            observations = self.pseudo_filter.filter_batch(batch)
        else:
            observations = batch.materialize()
        if sweep_t0 is not None:
            self._observe_sweep("pair_batches", time.perf_counter() - sweep_t0)
        return observations

    def scan_pair_batches_columnar(self, batches: Sequence[ProbeBatch],
                                   category: ScanCategory = ScanCategory.PREDICTION,
                                   ) -> ObservationBatch:
        """Probe pre-grouped batches, returning the raw columnar observations.

        The unfiltered columnar form of :meth:`scan_pair_batches`: per hit
        the three layers together perform two host-table lookups and a
        handful of list appends -- no :class:`FingerprintResult` or
        :class:`ScanObservation` objects, no banner-dict copies.
        """
        hit_ips, hit_ports = self.zmap.scan_pair_batch_columns(batches,
                                                               category=category)
        fingerprints = self.lzr.fingerprint_batch_columns(
            hit_ips, hit_ports, category=category, statuses=self._status_encoder)
        return self.zgrab.grab_batch_columns(fingerprints, category=category)

    def exhaustive_port_scan(self, port: int,
                             category: ScanCategory = ScanCategory.EXHAUSTIVE,
                             apply_filter: bool = True) -> List[ScanObservation]:
        """A 100 % scan of one port (the exhaustive baseline's unit of work)."""
        observations: List[ScanObservation] = []
        for system in self.universe.topology.systems:
            for base, length in system.prefixes:
                observations.extend(
                    self.scan_prefix(port, (base, length), category=category,
                                     apply_filter=False)
                )
        if apply_filter:
            observations = self.pseudo_filter.filter(observations)
        return observations

    # -- internals ---------------------------------------------------------------------

    def _observe_bandwidth(self, category: ScanCategory, probes: int,
                           responses: int, retransmits: int) -> None:
        """Ledger observer: mirror one record() into live counters."""
        tel = self.telemetry
        if probes:
            tel.counter("scan_probes_total", "Probes sent, by scan category",
                        category=category.value).inc(probes)
        if responses:
            tel.counter("scan_responses_total",
                        "Responsive probes, by scan category",
                        category=category.value).inc(responses)
        if retransmits:
            tel.counter("scan_retransmits_total",
                        "Probes re-sent after simulated loss",
                        category=category.value).inc(retransmits)

    def _observe_sweep(self, shape: str, seconds: float) -> None:
        """Record one top-level scan shape's wall-clock cost."""
        tel = self.telemetry
        tel.counter("scan_sweeps_total", "Top-level scan calls, by shape",
                    shape=shape).inc()
        tel.histogram("scan_sweep_seconds",
                      "Wall-clock time of one top-level scan call",
                      shape=shape).observe(seconds)

    def _sweep_hosts_columnar(self, ips: Sequence[int],
                              ports: Optional[Tuple[int, ...]],
                              category: ScanCategory) -> ObservationBatch:
        """Probe each address across the port set, staying columnar throughout.

        The SYN sweep runs per host (the middlebox shortcut needs per-host
        results), accumulating every responsive (ip, port) target into two
        flat columns; fingerprinting and banner-grabbing then fold the whole
        sweep through the batched columnar layers in one pass each --
        identical targets, row order and ledger charges to chaining
        ``fingerprint_many`` / ``grab_many`` per host (the LZR/ZGrab loss
        draws are pure functions of the target, not of batching), without
        ever allocating per-hit result objects.
        """
        target_ips: List[int] = []
        target_ports: List[int] = []
        for ip in ips:
            responsive_ports = self.zmap.scan_host_ports(ip, ports=ports,
                                                         category=category)
            if not responsive_ports:
                continue
            if len(responsive_ports) > MIDDLEBOX_SUSPECT_PORT_COUNT:
                # LZR middlebox shortcut: sample a few ports; if none ever
                # produce data the host is acking everything and is dropped.
                sample = responsive_ports[:MIDDLEBOX_SAMPLE_PORTS]
                sampled_results = self.lzr.fingerprint_many(
                    ((ip, port) for port in sample), category=category
                )
                if not sampled_results:
                    continue
            target_ips.extend([ip] * len(responsive_ports))
            target_ports.extend(responsive_ports)
        fingerprints = self.lzr.fingerprint_batch_columns(
            target_ips, target_ports, category=category,
            statuses=self._status_encoder)
        return self.zgrab.grab_batch_columns(fingerprints, category=category)
