"""Scan observation records: what a completed probe yields.

A :class:`ScanObservation` is the unit of data every downstream consumer (the
pseudo-service filter, the dataset builders, GPS's feature extraction, the
baselines) operates on.  It deliberately contains only what a real scan could
observe -- the address, port, fingerprinted protocol, application-layer banner
fields and the IP TTL -- and never any ground-truth-only information such as
the device profile that generated the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.net.ipv4 import subnet_key


@dataclass(frozen=True)
class ScanObservation:
    """One fully-handshaked service observation.

    Attributes:
        ip: probed address.
        port: probed port.
        protocol: protocol fingerprinted by LZR (``"http"``, ``"ssh"``, ...).
        app_features: application-layer feature values collected by ZGrab
            (Table 1 keys; absent keys mean the feature was not observable).
        ttl: IP TTL seen in the response (used for port-forwarding analysis).
    """

    ip: int
    port: int
    protocol: str
    app_features: Mapping[str, str] = field(default_factory=dict)
    ttl: int = 64

    def pair(self) -> Tuple[int, int]:
        """The (ip, port) identity of this observation."""
        return (self.ip, self.port)

    def feature(self, key: str, default: str = "") -> str:
        """Convenience accessor for an application-layer feature value."""
        return self.app_features.get(key, default)


@dataclass(frozen=True)
class ProbeBatch:
    """A group of probe targets sharing one port and one subnetwork.

    The prediction scan (Section 5.4) probes targeted (ip, port) pairs; pairs
    that share a port and fall in the same subnetwork can be served by one
    batched pass through the scanner layers, amortizing ground-truth lookups
    and bandwidth-ledger charges that a pair-by-pair scan pays per probe.

    Attributes:
        port: the port every target in the batch is probed on.
        subnet: packed subnet key (see :func:`repro.net.ipv4.subnet_key`) the
            targets share -- informational for logs/ordering; the scanners
            only rely on the addresses being near each other.
        ips: target addresses, in the order they were submitted.
    """

    port: int
    subnet: int
    ips: Tuple[int, ...]

    def pairs(self) -> List[Tuple[int, int]]:
        """The batch flattened back into (ip, port) pairs."""
        return [(ip, self.port) for ip in self.ips]

    def __len__(self) -> int:
        return len(self.ips)


def group_pairs(pairs: Iterable[Tuple[int, int]],
                prefix_len: int = 16) -> List[ProbeBatch]:
    """Group (ip, port) pairs into per-(subnetwork, port) probe batches.

    Batches appear in first-seen order and addresses keep their submitted
    order inside each batch, so the grouping is deterministic and the probe
    schedule stays faithful to the caller's (e.g. probability-ordered)
    intent at batch granularity.
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix_len must be 0-32: {prefix_len}")
    # Bucketing shifts the prefix bits out instead of calling subnet_key per
    # pair; the canonical subnet key is derived once per batch below.  This
    # loop runs once per predicted probe, so it must stay cheap relative to
    # the universe lookups the batches exist to amortize.
    shift = 32 - prefix_len
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for ip, port in pairs:
        grouped.setdefault((port, ip >> shift), []).append(ip)
    return [ProbeBatch(port=port, subnet=subnet_key(ips[0], prefix_len),
                       ips=tuple(ips))
            for (port, _), ips in grouped.items()]


def observations_by_host(observations: Iterable[ScanObservation]) -> Dict[int, List[ScanObservation]]:
    """Group observations by address.

    Both the pseudo-service filter (per-host service counts) and GPS's model
    building (per-host port co-occurrence) start from this grouping.
    """
    grouped: Dict[int, List[ScanObservation]] = {}
    for obs in observations:
        grouped.setdefault(obs.ip, []).append(obs)
    for obs_list in grouped.values():
        obs_list.sort(key=lambda o: o.port)
    return grouped


def unique_pairs(observations: Iterable[ScanObservation]) -> List[Tuple[int, int]]:
    """Deduplicated, sorted (ip, port) pairs of a set of observations."""
    return sorted({obs.pair() for obs in observations})
