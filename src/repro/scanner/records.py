"""Scan observation records: what a completed probe yields.

A :class:`ScanObservation` is the unit of data every downstream consumer (the
pseudo-service filter, the dataset builders, GPS's feature extraction, the
baselines) operates on.  It deliberately contains only what a real scan could
observe -- the address, port, fingerprinted protocol, application-layer banner
fields and the IP TTL -- and never any ground-truth-only information such as
the device profile that generated the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple


@dataclass(frozen=True)
class ScanObservation:
    """One fully-handshaked service observation.

    Attributes:
        ip: probed address.
        port: probed port.
        protocol: protocol fingerprinted by LZR (``"http"``, ``"ssh"``, ...).
        app_features: application-layer feature values collected by ZGrab
            (Table 1 keys; absent keys mean the feature was not observable).
        ttl: IP TTL seen in the response (used for port-forwarding analysis).
    """

    ip: int
    port: int
    protocol: str
    app_features: Mapping[str, str] = field(default_factory=dict)
    ttl: int = 64

    def pair(self) -> Tuple[int, int]:
        """The (ip, port) identity of this observation."""
        return (self.ip, self.port)

    def feature(self, key: str, default: str = "") -> str:
        """Convenience accessor for an application-layer feature value."""
        return self.app_features.get(key, default)


def observations_by_host(observations: Iterable[ScanObservation]) -> Dict[int, List[ScanObservation]]:
    """Group observations by address.

    Both the pseudo-service filter (per-host service counts) and GPS's model
    building (per-host port co-occurrence) start from this grouping.
    """
    grouped: Dict[int, List[ScanObservation]] = {}
    for obs in observations:
        grouped.setdefault(obs.ip, []).append(obs)
    for obs_list in grouped.values():
        obs_list.sort(key=lambda o: o.port)
    return grouped


def unique_pairs(observations: Iterable[ScanObservation]) -> List[Tuple[int, int]]:
    """Deduplicated, sorted (ip, port) pairs of a set of observations."""
    return sorted({obs.pair() for obs in observations})
