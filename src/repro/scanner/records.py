"""Scan observation records: what a completed probe yields.

A :class:`ScanObservation` is the unit of data every downstream consumer (the
pseudo-service filter, the dataset builders, GPS's feature extraction, the
baselines) operates on.  It deliberately contains only what a real scan could
observe -- the address, port, fingerprinted protocol, application-layer banner
fields and the IP TTL -- and never any ground-truth-only information such as
the device profile that generated the host.

:class:`ObservationBatch` is the *columnar* form the batched scanner layers
accumulate into: flat parallel int64 columns (address, port, encoded protocol
status, interned banner id, TTL) instead of one object per hit, with lazy
per-row :class:`ScanObservation` views.  The columns are
:class:`~repro.engine.columns.IntColumn` buffers -- machine-native
``array('q')`` storage, one word per element -- so bulk consumers (the fused
fold kernels, shard shipping) read them through the buffer protocol instead
of boxing Python ints.  Keeping per-hit work O(1) appends is what lets the
scan loop track the batched ZMap layer's throughput (the paper's Section 5.4
/ Table 2 story); observations only materialize at the pipeline's API
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.engine.columns import IntColumn
from repro.engine.encoding import DictionaryEncoder
from repro.internet.banners import BannerInterner
from repro.net.ipv4 import subnet_key


@dataclass(frozen=True)
class ScanObservation:
    """One fully-handshaked service observation.

    Attributes:
        ip: probed address.
        port: probed port.
        protocol: protocol fingerprinted by LZR (``"http"``, ``"ssh"``, ...).
        app_features: application-layer feature values collected by ZGrab
            (Table 1 keys; absent keys mean the feature was not observable).
        ttl: IP TTL seen in the response (used for port-forwarding analysis).
    """

    ip: int
    port: int
    protocol: str
    app_features: Mapping[str, str] = field(default_factory=dict)
    ttl: int = 64

    def pair(self) -> Tuple[int, int]:
        """The (ip, port) identity of this observation."""
        return (self.ip, self.port)

    def feature(self, key: str, default: str = "") -> str:
        """Convenience accessor for an application-layer feature value."""
        return self.app_features.get(key, default)


@dataclass
class ObservationBatch:
    """A batch of service observations stored as flat parallel columns.

    The batched scanner layers fold hits straight into these columns -- one
    ``list.append`` per column per hit -- instead of allocating a
    :class:`ScanObservation` (and copying its banner dict) per hit.  Rows are
    materialized lazily: :meth:`row` builds one observation on demand and
    :meth:`materialize` builds them all, which the scan pipeline does exactly
    once at its API boundary.

    Attributes:
        banners: the interner non-negative banner ids refer to (normally the
            universe's).
        statuses: the protocol-status encoder ``status`` values refer to;
            shared across batches so ids are stable within a pipeline.
        ips: per-row address.
        ports: per-row port.
        status: per-row fingerprint status: the LZR-fingerprinted protocol,
            dictionary-encoded through ``statuses``.
        banner_ids: per-row banner id.  Non-negative ids resolve through
            ``banners`` (see :class:`~repro.internet.banners.BannerInterner`);
            negative ids index ``local_banners`` (see
            :meth:`add_local_banner`).
        ttls: per-row observed IP TTL.
        local_banners: banners carried by the batch itself -- transient
            pages unique to one target (incident-style pseudo services),
            which would bloat a universe-lifetime interner for no dedupe
            benefit.  They live exactly as long as the batch.
    """

    banners: BannerInterner
    statuses: DictionaryEncoder = field(default_factory=DictionaryEncoder)
    ips: IntColumn = field(default_factory=IntColumn)
    ports: IntColumn = field(default_factory=IntColumn)
    status: IntColumn = field(default_factory=IntColumn)
    banner_ids: IntColumn = field(default_factory=IntColumn)
    ttls: IntColumn = field(default_factory=IntColumn)
    local_banners: List[Mapping[str, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ips)

    def append(self, ip: int, port: int, status_id: int, banner_id: int,
               ttl: int) -> None:
        """Fold one hit into the columns (five appends, no allocation)."""
        self.ips.append(ip)
        self.ports.append(port)
        self.status.append(status_id)
        self.banner_ids.append(banner_id)
        self.ttls.append(ttl)

    def status_id(self, protocol: str) -> int:
        """Encode a protocol string into the batch's status id space."""
        return self.statuses.encode(protocol)

    def add_local_banner(self, features: Mapping[str, str]) -> int:
        """Carry a transient banner in the batch, returning its (negative) id.

        For pages unique to a single target, interning into the shared
        :class:`~repro.internet.banners.BannerInterner` would pin one entry
        per target forever; batch-local banners die with the batch instead.
        """
        self.local_banners.append(features)
        return -len(self.local_banners)

    def banner_features(self, i: int) -> Mapping[str, str]:
        """Resolve row ``i``'s banner mapping (interned or batch-local)."""
        banner_id = self.banner_ids[i]
        if banner_id >= 0:
            return self.banners.features(banner_id)
        return self.local_banners[-banner_id - 1]

    def pairs(self) -> List[Tuple[int, int]]:
        """The (ip, port) identities of the batch's rows, in row order."""
        return list(zip(self.ips, self.ports))

    def select(self, indices: Iterable[int]) -> "ObservationBatch":
        """A new batch holding the given rows, in the given order.

        A pure column slice: the interner, the status encoder and the
        batch-local banner table are *shared* with this batch (banner and
        status ids stay valid verbatim, no status re-encoding happens), so
        selecting rows never touches a banner mapping.  This is what the
        columnar dataset layer uses for port restrictions and seed/test
        splits.  An empty selection returns immediately with the shared
        tables and empty columns.
        """
        out = ObservationBatch(banners=self.banners, statuses=self.statuses,
                               local_banners=self.local_banners)
        rows = indices if isinstance(indices, (list, tuple)) else list(indices)
        if not rows:
            return out
        ips, ports, status = self.ips, self.ports, self.status
        banner_ids, ttls = self.banner_ids, self.ttls
        out.ips.extend(ips[i] for i in rows)
        out.ports.extend(ports[i] for i in rows)
        out.status.extend(status[i] for i in rows)
        out.banner_ids.extend(banner_ids[i] for i in rows)
        out.ttls.extend(ttls[i] for i in rows)
        return out

    @classmethod
    def from_observations(cls, observations: Iterable[ScanObservation],
                          banners: Optional[BannerInterner] = None,
                          statuses: Optional[DictionaryEncoder] = None,
                          ) -> "ObservationBatch":
        """Fold object rows into columns (the inverse of :meth:`materialize`).

        Banner mappings intern through :meth:`BannerInterner.intern`, which
        identity-caches: rows previously materialized from an interner view
        (dataset rows, columnar scan output) resolve their banner id with a
        single dict lookup, while foreign dicts intern by content.  Used by
        consumers that can stay columnar (GPS's fused feature ingest) when
        handed an object-row API boundary.
        """
        batch = cls(banners=banners if banners is not None else BannerInterner(),
                    statuses=statuses if statuses is not None else DictionaryEncoder())
        intern = batch.banners.intern
        encode = batch.statuses.encode
        for obs in observations:
            batch.ips.append(obs.ip)
            batch.ports.append(obs.port)
            batch.status.append(encode(obs.protocol))
            batch.banner_ids.append(intern(obs.app_features))
            batch.ttls.append(obs.ttl)
        return batch

    def row(self, i: int) -> ScanObservation:
        """Materialize one row as a :class:`ScanObservation` (lazy view).

        The observation's ``app_features`` is the interner's (or the
        batch's) read-only view of the banner -- shared, not copied; equal
        by ``==`` to the dict the pairwise path copies.
        """
        return ScanObservation(
            ip=self.ips[i],
            port=self.ports[i],
            protocol=self.statuses.decode(self.status[i]),
            app_features=self.banner_features(i),
            ttl=self.ttls[i],
        )

    def iter_rows(self) -> Iterator[ScanObservation]:
        """Iterate lazily materialized rows in order."""
        decode_status = self.statuses.decode
        interned_features = self.banners.features
        local_banners = self.local_banners
        for ip, port, status_id, banner_id, ttl in zip(
                self.ips, self.ports, self.status, self.banner_ids, self.ttls):
            features = (interned_features(banner_id) if banner_id >= 0
                        else local_banners[-banner_id - 1])
            yield ScanObservation(ip=ip, port=port,
                                  protocol=decode_status(status_id),
                                  app_features=features,
                                  ttl=ttl)

    def materialize(self) -> List[ScanObservation]:
        """Materialize every row (the pipeline's API-boundary step)."""
        return list(self.iter_rows())


@dataclass(frozen=True)
class ProbeBatch:
    """A group of probe targets sharing one port and one subnetwork.

    The prediction scan (Section 5.4) probes targeted (ip, port) pairs; pairs
    that share a port and fall in the same subnetwork can be served by one
    batched pass through the scanner layers, amortizing ground-truth lookups
    and bandwidth-ledger charges that a pair-by-pair scan pays per probe.

    Attributes:
        port: the port every target in the batch is probed on.
        subnet: packed subnet key (see :func:`repro.net.ipv4.subnet_key`) the
            targets share -- informational for logs/ordering; the scanners
            only rely on the addresses being near each other.
        ips: target addresses, in the order they were submitted.
    """

    port: int
    subnet: int
    ips: Tuple[int, ...]

    def pairs(self) -> List[Tuple[int, int]]:
        """The batch flattened back into (ip, port) pairs."""
        return [(ip, self.port) for ip in self.ips]

    def __len__(self) -> int:
        return len(self.ips)


def group_pairs(pairs: Iterable[Tuple[int, int]],
                prefix_len: int = 16) -> List[ProbeBatch]:
    """Group (ip, port) pairs into per-(subnetwork, port) probe batches.

    Batches appear in first-seen order and addresses keep their submitted
    order inside each batch, so the grouping is deterministic and the probe
    schedule stays faithful to the caller's (e.g. probability-ordered)
    intent at batch granularity.
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix_len must be 0-32: {prefix_len}")
    # Bucketing shifts the prefix bits out instead of calling subnet_key per
    # pair; the canonical subnet key is derived once per batch below.  This
    # loop runs once per predicted probe, so it must stay cheap relative to
    # the universe lookups the batches exist to amortize.
    shift = 32 - prefix_len
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for ip, port in pairs:
        grouped.setdefault((port, ip >> shift), []).append(ip)
    return [ProbeBatch(port=port, subnet=subnet_key(ips[0], prefix_len),
                       ips=tuple(ips))
            for (port, _), ips in grouped.items()]


def observations_by_host(observations: Iterable[ScanObservation]) -> Dict[int, List[ScanObservation]]:
    """Group observations by address.

    Both the pseudo-service filter (per-host service counts) and GPS's model
    building (per-host port co-occurrence) start from this grouping.
    """
    grouped: Dict[int, List[ScanObservation]] = {}
    for obs in observations:
        grouped.setdefault(obs.ip, []).append(obs)
    for obs_list in grouped.values():
        obs_list.sort(key=lambda o: o.port)
    return grouped


def unique_pairs(observations: Iterable[ScanObservation]) -> List[Tuple[int, int]]:
    """Deduplicated, sorted (ip, port) pairs of a set of observations."""
    return sorted({obs.pair() for obs in observations})
