"""Bandwidth accounting for simulated scans.

Every result in the paper is stated as a coverage-versus-bandwidth trade-off,
with bandwidth expressed in "number of 100 % scans" -- one unit being a full
sweep of the address space on a single port (3.7 billion probes on the real
Internet; the announced address space of the synthetic universe here).  The
:class:`BandwidthLedger` counts raw probes per scan phase and converts them to
that unit, and additionally models wall-clock scan time at a configurable
probe rate (the paper uses 1 Gb/s for the reference curves and 50 Mb/s for the
high-precision prediction scans).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

#: Approximate bytes on the wire per probe (SYN + SYN-ACK + RST bookkeeping);
#: only used to convert probe counts into seconds at a given line rate.
BYTES_PER_PROBE = 60
BITS_PER_PROBE = BYTES_PER_PROBE * 8


class ScanCategory(str, enum.Enum):
    """Which phase of the GPS pipeline a probe belongs to."""

    SEED = "seed"
    PRIORS = "priors"
    PREDICTION = "prediction"
    EXHAUSTIVE = "exhaustive"
    OTHER = "other"


@dataclass
class BandwidthLedger:
    """Tracks probes sent per category and converts them into paper units.

    Attributes:
        address_space_size: number of addresses in one "100 % scan" unit.
        probes: per-category probe counts.
        responses: per-category count of responsive probes (used for
            precision: responsive probes / probes sent).
        retransmits: per-category count of probes that were *re*-sent because
            an earlier attempt went unanswered (simulated packet loss).
            Retransmits are charged -- they are real bandwidth, so they are
            included in ``probes`` too -- but the retry loops in the scanner
            layers only retransmit unanswered targets, so a response is
            never double-counted (duplicate responses are deduplicated at
            the layer that retries, and ``responses <= probes`` stays an
            invariant under loss).
        observer: optional callback invoked after every :meth:`record` with
            ``(category, probes, responses, retransmits)``.  The telemetry
            bridge: :meth:`record` is the single choke point every probe
            already flows through, so one hook mirrors the whole ledger into
            live counters without touching any scanner layer.  Excluded from
            comparison/repr -- an observed ledger still equals its
            unobserved twin.
    """

    address_space_size: int
    probes: Dict[ScanCategory, int] = field(default_factory=dict)
    responses: Dict[ScanCategory, int] = field(default_factory=dict)
    retransmits: Dict[ScanCategory, int] = field(default_factory=dict)
    observer: Optional[Callable[[ScanCategory, int, int, int], None]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.address_space_size <= 0:
            raise ValueError("address_space_size must be positive")

    def record(self, category: ScanCategory, probes: int, responses: int = 0,
               retransmits: int = 0) -> None:
        """Record ``probes`` sent (and ``responses`` received) in a category.

        ``retransmits`` says how many of the ``probes`` were re-sends of
        earlier unanswered attempts; they are part of the probe count (the
        bandwidth is spent either way) and additionally tracked so loss-rate
        experiments can report the retry overhead separately.
        """
        if probes < 0 or responses < 0 or retransmits < 0:
            raise ValueError("probe/response counts must be non-negative")
        if responses > probes:
            raise ValueError("cannot receive more responses than probes sent")
        if retransmits > probes:
            raise ValueError("retransmits cannot exceed probes sent")
        self.probes[category] = self.probes.get(category, 0) + probes
        self.responses[category] = self.responses.get(category, 0) + responses
        if retransmits:
            self.retransmits[category] = (
                self.retransmits.get(category, 0) + retransmits)
        if self.observer is not None:
            self.observer(category, probes, responses, retransmits)

    def total_probes(self, category: ScanCategory | None = None) -> int:
        """Total probes sent (optionally restricted to one category)."""
        if category is not None:
            return self.probes.get(category, 0)
        return sum(self.probes.values())

    def total_responses(self, category: ScanCategory | None = None) -> int:
        """Total responsive probes (optionally restricted to one category)."""
        if category is not None:
            return self.responses.get(category, 0)
        return sum(self.responses.values())

    def total_retransmits(self, category: ScanCategory | None = None) -> int:
        """Total retransmitted probes (optionally restricted to one category)."""
        if category is not None:
            return self.retransmits.get(category, 0)
        return sum(self.retransmits.values())

    def full_scans(self, category: ScanCategory | None = None) -> float:
        """Bandwidth in the paper's unit of "number of 100 % scans"."""
        return self.total_probes(category) / self.address_space_size

    def precision(self, category: ScanCategory | None = None) -> float:
        """Fraction of sent probes that found a responsive service."""
        probes = self.total_probes(category)
        if probes == 0:
            return 0.0
        return self.total_responses(category) / probes

    def wall_time_seconds(self, rate_bits_per_second: float = 1e9,
                          category: ScanCategory | None = None) -> float:
        """Time to send the recorded probes at a given line rate."""
        if rate_bits_per_second <= 0:
            raise ValueError("rate must be positive")
        return self.total_probes(category) * BITS_PER_PROBE / rate_bits_per_second

    def snapshot(self) -> Mapping[str, float]:
        """A plain-dict summary used by reports and tests."""
        return {
            "total_probes": float(self.total_probes()),
            "total_responses": float(self.total_responses()),
            "total_retransmits": float(self.total_retransmits()),
            "full_scans": self.full_scans(),
            "precision": self.precision(),
            **{
                f"full_scans_{category.value}": self.full_scans(category)
                for category in ScanCategory
                if category in self.probes
            },
        }

    def merged_with(self, other: "BandwidthLedger") -> "BandwidthLedger":
        """Combine two ledgers measured against the same address space."""
        if other.address_space_size != self.address_space_size:
            raise ValueError("cannot merge ledgers with different address spaces")
        merged = BandwidthLedger(address_space_size=self.address_space_size)
        for source in (self, other):
            for category, count in source.probes.items():
                merged.record(category, count, source.responses.get(category, 0),
                              source.retransmits.get(category, 0))
        return merged
