"""Simulated LZR: middlebox filtering and service fingerprinting.

LZR (Izhikevich et al., USENIX Security 2021) takes over the TCP connection a
SYN scanner opened and decides, with one or two extra packets, whether a real
service is listening and what protocol it speaks.  This matters enormously
when scanning unassigned ports: a SYN-ACK alone may come from a middlebox or
an idle socket, and completing a full layer-7 handshake on every SYN-ACK would
waste bandwidth.

The simulator reproduces LZR's observable behaviour:

* **middleboxes** never produce data -- the fingerprint is ``None`` and the
  target is dropped before any layer-7 work is spent on it;
* **real services** yield their true protocol;
* **pseudo services** look like real HTTP services at this layer; weeding them
  out is the job of the dataset-level filter (Appendix B), not LZR.

Each fingerprint attempt costs a small, fixed number of probes which is
charged to the same ledger category as the scan that discovered the target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.encoding import DictionaryEncoder
from repro.engine.faults import ProbeLossModel
from repro.internet.universe import Universe
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory

#: Extra packets LZR exchanges per responsive target (ACK + data / RST).
PROBES_PER_FINGERPRINT = 2

#: Loss-model layer tag (independent draws from the SYN and ZGrab layers).
LOSS_LAYER = "lzr"


@dataclass(frozen=True)
class FingerprintResult:
    """Outcome of fingerprinting one SYN-ACKing (ip, port) target.

    Attributes:
        ip: target address.
        port: target port.
        protocol: fingerprinted protocol, or ``None`` when no service is
            actually listening (middlebox or dead socket).
        is_real_service: whether a real, ground-truth service is behind the
            target (pseudo services report their apparent protocol but are not
            real; downstream filtering removes them by behaviour).
        ttl: observed IP TTL.
    """

    ip: int
    port: int
    protocol: Optional[str]
    is_real_service: bool
    ttl: int


@dataclass
class FingerprintBatch:
    """Columnar fingerprint outcomes: the LZR stage of an observation batch.

    Flat parallel columns for the protocol-bearing targets of one batched
    pass (middlebox / no-data targets are dropped, as in
    :meth:`LZRSimulator.fingerprint_many`).  ``status`` holds the
    fingerprinted protocol dictionary-encoded through ``statuses`` -- the
    same encoder the downstream :class:`~repro.scanner.records.ObservationBatch`
    decodes with, so ids flow through the ZGrab stage untouched.
    """

    statuses: DictionaryEncoder = field(default_factory=DictionaryEncoder)
    ips: List[int] = field(default_factory=list)
    ports: List[int] = field(default_factory=list)
    status: List[int] = field(default_factory=list)
    ttls: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ips)


class LZRSimulator:
    """Fingerprints SYN-ACKing targets against the ground-truth universe.

    With a seeded ``loss`` model, the data reply of a *responsive* target can
    be dropped; LZR then re-runs the handshake (charged as a retransmit) up
    to ``max_retries`` times.  A no-data target (middlebox, dead socket) is
    never retried: its silence is a definitive answer, not a timeout.  The
    default (``loss=None``) path is byte-identical to the pre-loss simulator.
    """

    def __init__(self, universe: Universe, ledger: BandwidthLedger,
                 loss: Optional[ProbeLossModel] = None, max_retries: int = 0,
                 retry_backoff_s: float = 0.0) -> None:
        self.universe = universe
        self.ledger = ledger
        self.loss = loss
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    def _handshake_attempts(self, ip: int, port: int) -> Tuple[int, bool]:
        """(attempts spent, response observed) for one responsive target."""
        if self.loss is None:
            return 1, True
        for attempt in range(self.max_retries + 1):
            if not self.loss.lost(LOSS_LAYER, ip, port, attempt):
                return attempt + 1, True
            if attempt < self.max_retries and self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s)
        return self.max_retries + 1, False

    def fingerprint(self, ip: int, port: int,
                    category: ScanCategory = ScanCategory.OTHER) -> FingerprintResult:
        """Fingerprint a single target, charging the ledger for the handshake."""
        record = self.universe.lookup(ip, port)
        responded = record is not None or self.universe.is_pseudo_responsive(ip, port)
        attempts, observed = (self._handshake_attempts(ip, port)
                              if responded else (1, False))
        if not observed:
            # Every attempt's reply was lost: indistinguishable on the wire
            # from a dead socket, so the target reports no protocol (cannot
            # happen when the retry budget covers the loss model's bound).
            record, responded = None, False
        self.ledger.record(category, probes=PROBES_PER_FINGERPRINT * attempts,
                           responses=PROBES_PER_FINGERPRINT if responded else 0,
                           retransmits=PROBES_PER_FINGERPRINT * (attempts - 1))
        if record is not None:
            return FingerprintResult(ip=ip, port=port, protocol=record.protocol,
                                     is_real_service=True, ttl=record.ttl)
        if responded and self.universe.is_pseudo_responsive(ip, port):
            host = self.universe.host(ip)
            ttl = host.base_ttl if host is not None else 64
            return FingerprintResult(ip=ip, port=port, protocol="http",
                                     is_real_service=False, ttl=ttl)
        # Middlebox or stale SYN-ACK: no data ever arrives.
        host = self.universe.host(ip)
        ttl = host.base_ttl if host is not None else 64
        return FingerprintResult(ip=ip, port=port, protocol=None,
                                 is_real_service=False, ttl=ttl)

    def fingerprint_many(self, targets: Iterable[Tuple[int, int]],
                         category: ScanCategory = ScanCategory.OTHER) -> List[FingerprintResult]:
        """Fingerprint a batch of targets, keeping only those that spoke a protocol.

        Targets that produced no data (middleboxes) are dropped, mirroring how
        LZR prevents them from reaching ZGrab in the real pipeline.
        """
        results: List[FingerprintResult] = []
        for ip, port in targets:
            result = self.fingerprint(ip, port, category=category)
            if result.protocol is not None:
                results.append(result)
        return results

    def fingerprint_batch(self, targets: Iterable[Tuple[int, int]],
                          category: ScanCategory = ScanCategory.OTHER,
                          ) -> List[FingerprintResult]:
        """Batched :meth:`fingerprint_many` (the batched prediction scan, Section 5.4).

        Produces the same protocol-bearing results in the same order and
        charges the ledger identically, but resolves each target with a
        single host lookup (instead of separate service/pseudo/host queries)
        and records the handshake cost once for the whole batch.  The
        middlebox check collapses to the same lookup: a middlebox host has no
        services and no pseudo range, so it falls through to "no data" and is
        dropped without further queries.
        """
        results: List[FingerprintResult] = []
        hosts_get = self.universe.hosts.get
        lossy = self.loss is not None
        sent = 0
        responded = 0
        retried = 0
        for ip, port in targets:
            sent += 1
            host = hosts_get(ip)
            if host is None:
                continue
            record = host.services.get(port)
            if record is not None:
                if lossy:
                    attempts, observed = self._handshake_attempts(ip, port)
                    retried += attempts - 1
                    if not observed:
                        continue
                responded += 1
                results.append(FingerprintResult(ip=ip, port=port,
                                                 protocol=record.protocol,
                                                 is_real_service=True,
                                                 ttl=record.ttl))
                continue
            if host.is_pseudo_responsive_on(port):
                if lossy:
                    attempts, observed = self._handshake_attempts(ip, port)
                    retried += attempts - 1
                    if not observed:
                        continue
                responded += 1
                results.append(FingerprintResult(ip=ip, port=port, protocol="http",
                                                 is_real_service=False,
                                                 ttl=host.base_ttl))
        self.ledger.record(category,
                           probes=PROBES_PER_FINGERPRINT * (sent + retried),
                           responses=PROBES_PER_FINGERPRINT * responded,
                           retransmits=PROBES_PER_FINGERPRINT * retried)
        return results

    def fingerprint_batch_columns(self, ips: Sequence[int], ports: Sequence[int],
                                  category: ScanCategory = ScanCategory.OTHER,
                                  statuses: Optional[DictionaryEncoder] = None,
                                  ) -> FingerprintBatch:
        """Columnar :meth:`fingerprint_batch`: fold outcomes into flat columns.

        Same targets fingerprinted, same protocol-bearing rows kept in the
        same order, identical ledger charges -- but per surviving target the
        work is four list appends instead of a :class:`FingerprintResult`
        allocation.  ``statuses`` lets a pipeline share one protocol-id space
        across batches; by default each batch gets its own encoder.
        """
        # "is not None", not truthiness: a shared encoder that is still empty
        # must not be silently replaced (DictionaryEncoder defines __len__).
        batch = FingerprintBatch(
            statuses=statuses if statuses is not None else DictionaryEncoder())
        encode_status = batch.statuses.encode
        pseudo_status = encode_status("http")
        b_ips, b_ports = batch.ips, batch.ports
        b_status, b_ttls = batch.status, batch.ttls
        hosts_get = self.universe.hosts.get
        lossy = self.loss is not None
        responded = 0
        retried = 0
        for ip, port in zip(ips, ports):
            host = hosts_get(ip)
            if host is None:
                continue
            record = host.services.get(port)
            if record is not None:
                if lossy:
                    attempts, observed = self._handshake_attempts(ip, port)
                    retried += attempts - 1
                    if not observed:
                        continue
                responded += 1
                b_ips.append(ip)
                b_ports.append(port)
                b_status.append(encode_status(record.protocol))
                b_ttls.append(record.ttl)
                continue
            if host.is_pseudo_responsive_on(port):
                if lossy:
                    attempts, observed = self._handshake_attempts(ip, port)
                    retried += attempts - 1
                    if not observed:
                        continue
                responded += 1
                b_ips.append(ip)
                b_ports.append(port)
                b_status.append(pseudo_status)
                b_ttls.append(host.base_ttl)
        self.ledger.record(category,
                           probes=PROBES_PER_FINGERPRINT * (len(ips) + retried),
                           responses=PROBES_PER_FINGERPRINT * responded,
                           retransmits=PROBES_PER_FINGERPRINT * retried)
        return batch
