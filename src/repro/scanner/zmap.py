"""Simulated ZMap: the stateless layer-4 SYN scanner.

ZMap's role in the GPS pipeline (Section 5.5) is to discover which probes are
answered at all; it knows nothing about the service behind a SYN-ACK.  The
simulator mirrors that: every method returns only (address, port) pairs that
would SYN-ACK, and charges the bandwidth ledger for every probe *sent*, not
every response received -- the distinction is what drives the paper's
precision results (exhaustive scanning wastes almost all of its probes on
dark space).

The real ZMap also carries a fixed IP-ID fingerprint (54321) so that network
operators can block it; the simulator exposes the same constant for parity
with the paper's ethics discussion (Section 3) and so the value shows up in
documentation and tests.
"""

from __future__ import annotations

import time
from itertools import repeat
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.faults import ProbeLossModel
from repro.internet.universe import Universe
from repro.net.ports import MAX_PORT, is_valid_port
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory
from repro.scanner.records import ProbeBatch

#: The IP-ID value ZMap stamps on every probe, allowing operators to filter it.
ZMAP_IP_ID_FINGERPRINT = 54321

#: Loss-model layer tag: decisions are per (layer, ip, port, attempt), so the
#: SYN sweep, LZR and ZGrab draw independent losses for the same target.
LOSS_LAYER = "zmap"


class ZMapSimulator:
    """Layer-4 SYN scanning against a :class:`~repro.internet.universe.Universe`.

    ``loss`` plugs in a seeded :class:`~repro.engine.faults.ProbeLossModel`;
    every scan shape then runs bounded retry rounds -- each round retransmits
    exactly the probes that went unanswered (true responders whose reply was
    dropped *and* dark space, which can never be told apart on the wire) and
    charges the ledger for them as retransmits.  Because the loss model bounds
    consecutive losses per target, a retry budget of at least that depth
    makes every scan's responder set identical to the lossless run; the
    default (``loss=None``) is byte-identical to the pre-loss simulator.
    """

    def __init__(self, universe: Universe, ledger: BandwidthLedger,
                 loss: Optional[ProbeLossModel] = None, max_retries: int = 0,
                 retry_backoff_s: float = 0.0) -> None:
        self.universe = universe
        self.ledger = ledger
        self.ip_id = ZMAP_IP_ID_FINGERPRINT
        self.loss = loss
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    def _backoff(self) -> None:
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s)

    def _sweep_with_loss(self, responders: Sequence[int], port: int,
                         probes: int, category: ScanCategory) -> List[int]:
        """Retry rounds over one port's sweep: ``responders`` are the ground
        truth, ``probes`` the round-0 probe count (responders + dark space).

        Returns the observed responders in their original order, charging one
        ledger record per round.  Only unanswered probes retransmit, so no
        response is ever counted twice.
        """
        loss = self.loss
        observed: set = set()
        missing: Sequence[int] = responders
        outstanding = probes
        for attempt in range(self.max_retries + 1):
            got = [ip for ip in missing
                   if not loss.lost(LOSS_LAYER, ip, port, attempt)]
            self.ledger.record(category, probes=outstanding,
                               responses=len(got),
                               retransmits=outstanding if attempt else 0)
            observed.update(got)
            outstanding -= len(got)
            missing = [ip for ip in missing if ip not in observed]
            if not missing:
                break
            self._backoff()
        return [ip for ip in responders if ip in observed]

    # -- scan shapes -----------------------------------------------------------------

    def scan_prefix(self, port: int, base: int, prefix_len: int,
                    category: ScanCategory = ScanCategory.PRIORS) -> List[int]:
        """Exhaustively sweep one port across ``base/prefix_len``.

        Returns the addresses that SYN-ACKed.  The ledger is charged one probe
        per *announced* address in the prefix regardless of how many respond
        (probing unannounced space would not be part of a real deployment's
        target list, and charging for it would distort the "100 % scan" unit).
        """
        if not is_valid_port(port):
            raise ValueError(f"invalid port: {port}")
        responders = self.universe.responders_in_prefix(port, base, prefix_len)
        probes = self.universe.announced_overlap(base, prefix_len)
        if self.loss is not None:
            return self._sweep_with_loss(responders, port, probes, category)
        self.ledger.record(category, probes=probes, responses=len(responders))
        return responders

    def scan_host_ports(self, ip: int, ports: Sequence[int] | None = None,
                        category: ScanCategory = ScanCategory.SEED) -> List[int]:
        """Probe one host across a set of ports (default: all 65,535).

        This is the per-host sweep used when collecting a seed scan: the cost
        is one probe per port probed, and the return value is the list of
        ports that SYN-ACKed.
        """
        host = self.universe.host(ip)
        if ports is None:
            probes_sent = MAX_PORT
            if host is None:
                responsive: List[int] = []
            elif host.is_middlebox:
                responsive = list(range(1, MAX_PORT + 1))
            else:
                responsive = sorted(set(host.services)
                                    | set(self._pseudo_ports(ip)))
        else:
            for port in ports:
                if not is_valid_port(port):
                    raise ValueError(f"invalid port: {port}")
            probes_sent = len(ports)
            responsive = [port for port in ports if self.universe.syn_ack(ip, port)]
        if self.loss is not None:
            # One host, many ports: the per-round loss decision keys on the
            # port (the address is fixed), mirroring _sweep_with_loss.
            loss = self.loss
            observed: set = set()
            missing: Sequence[int] = responsive
            outstanding = probes_sent
            for attempt in range(self.max_retries + 1):
                got = [port for port in missing
                       if not loss.lost(LOSS_LAYER, ip, port, attempt)]
                self.ledger.record(category, probes=outstanding,
                                   responses=len(got),
                                   retransmits=outstanding if attempt else 0)
                observed.update(got)
                outstanding -= len(got)
                missing = [port for port in missing if port not in observed]
                if not missing:
                    break
                self._backoff()
            return [port for port in responsive if port in observed]
        self.ledger.record(category, probes=probes_sent, responses=len(responsive))
        return responsive

    def scan_pairs(self, pairs: Iterable[Tuple[int, int]],
                   category: ScanCategory = ScanCategory.PREDICTION) -> List[Tuple[int, int]]:
        """Probe specific (ip, port) pairs (the prediction scan shape)."""
        sent = 0
        hits: List[Tuple[int, int]] = []
        observed = self.universe.syn_ack_observed if self.loss is not None else None
        retransmits = 0
        for ip, port in pairs:
            if not is_valid_port(port):
                raise ValueError(f"invalid port: {port}")
            sent += 1
            if observed is not None:
                # Per-target retry: retransmit until the SYN-ACK gets through
                # or the budget runs out; a non-responder is never retried
                # (no reply is indistinguishable from loss only for targets
                # that would answer -- dark targets time out either way and
                # the pair scan gives up after the first timeout window).
                for attempt in range(self.max_retries + 1):
                    if not self.universe.syn_ack(ip, port):
                        break
                    if observed(ip, port, self.loss, attempt):
                        hits.append((ip, port))
                        break
                    if attempt < self.max_retries:
                        sent += 1
                        retransmits += 1
                        self._backoff()
            elif self.universe.syn_ack(ip, port):
                hits.append((ip, port))
        self.ledger.record(category, probes=sent, responses=len(hits),
                           retransmits=retransmits)
        return hits

    def scan_pair_batches(self, batches: Iterable[ProbeBatch],
                          category: ScanCategory = ScanCategory.PREDICTION,
                          ) -> List[Tuple[int, int]]:
        """Probe per-(prefix, port) batches (the batched prediction scan, Section 5.4).

        Sends exactly the probes :meth:`scan_pairs` would send for the
        flattened batches and returns the same SYN-ACKing pairs (in batch
        order), but resolves each batch with one ranged ground-truth query
        (:meth:`~repro.internet.universe.Universe.syn_ack_many`), validates
        the port once per batch, and charges the ledger once for the whole
        call -- the per-pair bookkeeping the unbatched path pays on every
        probe is amortized across each batch.
        """
        sent = 0
        retransmits = 0
        hits: List[Tuple[int, int]] = []
        for batch in batches:
            port = batch.port
            if not is_valid_port(port):
                raise ValueError(f"invalid port: {port}")
            sent += len(batch.ips)
            responders = self.universe.syn_ack_many(batch.ips, port)
            if self.loss is not None:
                responders, extra = self._retry_responders(responders, port)
                sent += extra
                retransmits += extra
            hits.extend((ip, port) for ip in responders)
        self.ledger.record(category, probes=sent, responses=len(hits),
                           retransmits=retransmits)
        return hits

    def scan_pair_batch_columns(self, batches: Iterable[ProbeBatch],
                                category: ScanCategory = ScanCategory.PREDICTION,
                                ) -> Tuple[List[int], List[int]]:
        """Columnar :meth:`scan_pair_batches`: hits as parallel (ips, ports) columns.

        Identical probes, responders and ledger charges, but the hits are
        folded into two flat int columns instead of a list of per-hit tuples
        -- the shape the columnar LZR/ZGrab layers consume
        (:class:`~repro.scanner.records.ObservationBatch` downstream).
        """
        sent = 0
        retransmits = 0
        hit_ips: List[int] = []
        hit_ports: List[int] = []
        syn_ack_many = self.universe.syn_ack_many
        for batch in batches:
            port = batch.port
            if not is_valid_port(port):
                raise ValueError(f"invalid port: {port}")
            sent += len(batch.ips)
            responders = syn_ack_many(batch.ips, port)
            if self.loss is not None:
                responders, extra = self._retry_responders(responders, port)
                sent += extra
                retransmits += extra
            if responders:
                hit_ips.extend(responders)
                hit_ports.extend(repeat(port, len(responders)))
        self.ledger.record(category, probes=sent, responses=len(hit_ips),
                           retransmits=retransmits)
        return hit_ips, hit_ports

    def _retry_responders(self, responders: Sequence[int], port: int,
                          ) -> Tuple[List[int], int]:
        """Per-responder retry loop for the batched shapes.

        Each true responder whose SYN-ACK the loss model drops is re-probed
        (up to the budget); the return value is the observed responders in
        input order plus the number of retransmitted probes.  With the loss
        model's bounded consecutive losses and an adequate budget the
        observed list always equals ``responders``.
        """
        loss = self.loss
        kept: List[int] = []
        extra = 0
        for ip in responders:
            for attempt in range(self.max_retries + 1):
                if not loss.lost(LOSS_LAYER, ip, port, attempt):
                    kept.append(ip)
                    break
                if attempt < self.max_retries:
                    extra += 1
                    self._backoff()
        return kept, extra

    # -- helpers ----------------------------------------------------------------------

    def _pseudo_ports(self, ip: int) -> List[int]:
        host = self.universe.host(ip)
        if host is None or host.pseudo_port_range is None:
            return []
        lo, hi = host.pseudo_port_range
        return list(range(lo, hi + 1))
