"""Simulated scanning substrate: ZMap + LZR + ZGrab against the synthetic universe.

The paper's implementation chains three tools (Section 5.5): ZMap performs the
stateless layer-4 SYN scan, LZR takes over the TCP connection to filter
middleboxes and fingerprint the protocol actually spoken, and ZGrab completes
the layer-7 handshake to collect application-layer features.  This package
reproduces that pipeline against the synthetic universe, with per-probe
bandwidth accounting so every experiment can report cost in the paper's unit
of "number of 100 % scans".

The public entry point is :class:`~repro.scanner.pipeline.ScanPipeline`, which
exposes exactly the scan shapes GPS needs:

* ``seed_scan`` -- a random IP sample swept across all (or the top-N) ports;
* ``scan_prefix`` -- an exhaustive sweep of one port over one subnetwork
  (the priors scan of Section 5.3);
* ``scan_pairs`` -- targeted probes of predicted ``(ip, port)`` pairs
  (the prediction scan of Section 5.4).
"""

from repro.scanner.records import (
    ObservationBatch,
    ProbeBatch,
    ScanObservation,
    group_pairs,
    observations_by_host,
)
from repro.scanner.bandwidth import BandwidthLedger, ScanCategory
from repro.scanner.zmap import ZMapSimulator
from repro.scanner.lzr import LZRSimulator, FingerprintBatch, FingerprintResult
from repro.scanner.zgrab import ZGrabSimulator
from repro.scanner.filtering import PseudoServiceFilter, FilterReport
from repro.scanner.pipeline import ScanPipeline

__all__ = [
    "ObservationBatch",
    "ProbeBatch",
    "ScanObservation",
    "group_pairs",
    "observations_by_host",
    "BandwidthLedger",
    "ScanCategory",
    "ZMapSimulator",
    "LZRSimulator",
    "FingerprintBatch",
    "FingerprintResult",
    "ZGrabSimulator",
    "PseudoServiceFilter",
    "FilterReport",
    "ScanPipeline",
]
