"""Seed/test splitting (the paper's evaluation methodology, Section 6.1).

"To create seed-scans and test sets for each dataset, we randomly assign each
IP address, and its accompanying services, to either a seed or test set."  The
seed fraction is stated relative to the *address space* (a "2 % Censys seed
set", a "0.5 % LZR seed set"), so for a dataset that itself covers only a
fraction of the space the per-host selection probability is
``seed_fraction / dataset.sample_fraction``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.datasets.builders import GroundTruthDataset
from repro.scanner.pipeline import SeedScanResult
from repro.scanner.records import ScanObservation


@dataclass
class SeedTestSplit:
    """A seed/test split of a ground-truth dataset.

    Attributes:
        dataset: the dataset that was split.
        seed_fraction: the requested seed size, as a fraction of the address
            space (not of the dataset's hosts).
        seed_observations: services of the addresses assigned to the seed.
        test_observations: services of the remaining addresses.
        seed_ips: addresses assigned to the seed.
    """

    dataset: GroundTruthDataset
    seed_fraction: float
    seed_observations: List[ScanObservation]
    test_observations: List[ScanObservation]
    seed_ips: List[int]

    def seed_scan_result(self) -> SeedScanResult:
        """Package the seed half in the shape GPS's orchestrator accepts.

        When the dataset is columnar-backed (every built dataset is), the
        seed also ships in columnar form: the dataset's columns are sliced
        by the seed addresses (rows in dataset order, exactly the rows
        ``seed_observations`` holds) -- a cheap int-append pass -- so GPS's
        fused feature ingest reads flat columns instead of re-deriving them
        from object rows.  An object-backed dataset (loaded observation
        sets) ships only rows; forcing its banners through the interner
        here would charge every run for columns that only fused-engine
        runs read.
        """
        batch = None
        if self.dataset.has_columns():
            columns = self.dataset.columns()
            seed_ips = set(self.seed_ips)
            ips = columns.ips
            batch = columns.select(
                i for i in range(len(ips)) if ips[i] in seed_ips)
        return SeedScanResult(
            observations=list(self.seed_observations),
            sampled_ips=list(self.seed_ips),
            removed_pseudo_services=0,
            ports_scanned=self.dataset.port_domain,
            batch=batch,
        )

    def test_pairs(self) -> Set[Tuple[int, int]]:
        """(ip, port) pairs of the test half."""
        return {obs.pair() for obs in self.test_observations}


def split_seed_test(dataset: GroundTruthDataset, seed_fraction: float,
                    seed: int = 0) -> SeedTestSplit:
    """Randomly assign each dataset address to the seed or the test set.

    Args:
        dataset: the ground-truth dataset to split.
        seed_fraction: seed size as a fraction of the address space; must not
            exceed the fraction of the space the dataset covers.
        seed: RNG seed for the assignment.
    """
    if not 0.0 < seed_fraction <= dataset.sample_fraction:
        raise ValueError(
            f"seed_fraction {seed_fraction} must be in (0, {dataset.sample_fraction}] "
            f"for dataset {dataset.name!r}"
        )
    rng = random.Random(seed)
    selection_probability = seed_fraction / dataset.sample_fraction
    seed_ips = {
        ip for ip in dataset.ips() if rng.random() < selection_probability
    }
    seed_observations = [obs for obs in dataset.observations if obs.ip in seed_ips]
    test_observations = [obs for obs in dataset.observations if obs.ip not in seed_ips]
    return SeedTestSplit(
        dataset=dataset,
        seed_fraction=seed_fraction,
        seed_observations=seed_observations,
        test_observations=test_observations,
        seed_ips=sorted(seed_ips),
    )


def seed_scan_cost_probes(dataset: GroundTruthDataset, seed_fraction: float,
                          all_port_count: int = 65535) -> int:
    """Probes a random seed scan of this size would have cost (Section 5.1).

    The cost is ``seed_fraction x address space x ports swept``: random
    probing pays for every (address, port) probe whether or not anything
    answers.  Used to charge GPS for a dataset-split seed as if it had been
    collected by scanning.
    """
    if seed_fraction <= 0:
        raise ValueError("seed_fraction must be positive")
    port_count = len(dataset.port_domain) if dataset.port_domain else all_port_count
    return int(round(seed_fraction * dataset.address_space_size * port_count))
