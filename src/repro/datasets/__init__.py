"""Ground-truth datasets and seed/test splitting.

The paper evaluates GPS against two ground-truth datasets (Section 6.1):

* the **Censys Universal dataset** -- 100 % IPv4 scans of the ~2K most popular
  ports;
* a **1 % LZR scan** of the IPv4 address space across all 65K ports, filtered
  to ports with more than two responsive addresses.

Neither is available offline, so :func:`build_censys_like` and
:func:`build_lzr_like` construct the analogous datasets from the synthetic
universe: the former takes every real service on the top-N most populated
ports, the latter takes the services of a random address sample across all
ports.  Both are filtered for real services by construction (pseudo services
never enter the ground truth), mirroring the paper's Appendix B filtering.

:func:`split_seed_test` reproduces the paper's evaluation methodology: each
address (and all its services) is randomly assigned to either the seed set or
the test set.
"""

from repro.datasets.builders import (
    GroundTruthDataset,
    build_censys_like,
    build_lzr_like,
    build_full_dataset,
)
from repro.datasets.split import SeedTestSplit, split_seed_test, seed_scan_cost_probes
from repro.datasets.io import load_observations_jsonl, save_observations_jsonl

__all__ = [
    "GroundTruthDataset",
    "build_censys_like",
    "build_lzr_like",
    "build_full_dataset",
    "SeedTestSplit",
    "split_seed_test",
    "seed_scan_cost_probes",
    "load_observations_jsonl",
    "save_observations_jsonl",
]
