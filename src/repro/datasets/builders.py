"""Ground-truth dataset builders.

A :class:`GroundTruthDataset` is what every experiment evaluates against: a
named set of fully-featured service observations, the port domain it covers,
and the fraction of the address space it observed.  Building a dataset does
not consume scan bandwidth -- it plays the role of the reference data (Censys,
the authors' month-long LZR scan) that the paper treats as ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.internet.universe import Universe
from repro.net.ports import PortRegistry
from repro.scanner.records import ScanObservation

Pair = Tuple[int, int]


@dataclass
class GroundTruthDataset:
    """A ground-truth dataset plus the metadata experiments need.

    Attributes:
        name: dataset label (``"censys-like"``, ``"lzr-like"``, ...).
        observations: every service in the dataset, with full features.
        port_domain: ports the dataset covers (``None`` = all 65,535).
        sample_fraction: fraction of the address space the dataset observed
            (1.0 for a Censys-style 100 % scan, 0.01 for an LZR-style 1 % scan).
        address_space_size: size of one "100 % scan" unit for this universe.
    """

    name: str
    observations: List[ScanObservation]
    port_domain: Optional[Tuple[int, ...]]
    sample_fraction: float
    address_space_size: int
    _pairs: Optional[Set[Pair]] = field(default=None, repr=False)

    def pairs(self) -> Set[Pair]:
        """All (ip, port) services in the dataset (cached)."""
        if self._pairs is None:
            self._pairs = {obs.pair() for obs in self.observations}
        return self._pairs

    def ips(self) -> List[int]:
        """Distinct responsive addresses in the dataset, ascending."""
        return sorted({obs.ip for obs in self.observations})

    def port_registry(self) -> PortRegistry:
        """Per-port service counts within the dataset."""
        return PortRegistry.from_ports(port for _, port in self.pairs())

    def service_count(self) -> int:
        """Total number of services in the dataset."""
        return len(self.observations)

    def restricted_to_ports(self, ports: Sequence[int], name: Optional[str] = None) -> "GroundTruthDataset":
        """A copy containing only services on the given ports."""
        allowed = set(ports)
        return GroundTruthDataset(
            name=name or f"{self.name}-restricted",
            observations=[obs for obs in self.observations if obs.port in allowed],
            port_domain=tuple(sorted(allowed)),
            sample_fraction=self.sample_fraction,
            address_space_size=self.address_space_size,
        )

    def filtered_min_responsive_ips(self, minimum: int,
                                    name: Optional[str] = None) -> "GroundTruthDataset":
        """Keep only ports with at least ``minimum`` responsive addresses.

        The paper's LZR evaluation keeps ports with *greater than two*
        responsive addresses, i.e. ``minimum=3``.  The filter narrows the
        evaluation ground truth but not the dataset's *scan* domain: a seed
        scan across all ports still pays for all ports, so ``port_domain`` is
        left unchanged.
        """
        counts: Dict[int, Set[int]] = {}
        for obs in self.observations:
            counts.setdefault(obs.port, set()).add(obs.ip)
        allowed = {port for port, ips in counts.items() if len(ips) >= minimum}
        return GroundTruthDataset(
            name=name or f"{self.name}-min{minimum}",
            observations=[obs for obs in self.observations if obs.port in allowed],
            port_domain=self.port_domain,
            sample_fraction=self.sample_fraction,
            address_space_size=self.address_space_size,
        )


def _observation_from_record(record) -> ScanObservation:
    return ScanObservation(ip=record.ip, port=record.port, protocol=record.protocol,
                           app_features=dict(record.app_features), ttl=record.ttl)


def build_full_dataset(universe: Universe, name: str = "full") -> GroundTruthDataset:
    """Every real service in the universe (the omniscient reference)."""
    observations = [_observation_from_record(record) for record in universe.real_services()]
    return GroundTruthDataset(
        name=name,
        observations=observations,
        port_domain=None,
        sample_fraction=1.0,
        address_space_size=universe.address_space_size(),
    )


def build_censys_like(universe: Universe, top_ports: int = 2000,
                      name: str = "censys-like") -> GroundTruthDataset:
    """A Censys-style dataset: 100 % coverage of the top-N most populated ports."""
    if top_ports < 1:
        raise ValueError("top_ports must be >= 1")
    registry = universe.port_registry()
    ports = tuple(sorted(registry.top_ports(top_ports)))
    allowed = set(ports)
    observations = [
        _observation_from_record(record)
        for record in universe.real_services()
        if record.port in allowed
    ]
    return GroundTruthDataset(
        name=name,
        observations=observations,
        port_domain=ports,
        sample_fraction=1.0,
        address_space_size=universe.address_space_size(),
    )


def build_lzr_like(universe: Universe, sample_fraction: float = 0.01,
                   seed: int = 11, min_responsive_ips: int = 3,
                   name: str = "lzr-like") -> GroundTruthDataset:
    """An LZR-style dataset: an address-sample scan across all ports.

    Args:
        universe: the ground-truth universe to sample.
        sample_fraction: fraction of the announced address space the scan
            covered (the paper uses 1 %).
        seed: RNG seed for the address sample.
        min_responsive_ips: minimum responsive addresses per port for the port
            to be kept (the paper keeps ports with more than two, i.e. 3).
        name: dataset label.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction out of range")
    rng = random.Random(seed)
    space = universe.address_space_size()
    target = max(1, int(round(space * sample_fraction)))

    # Sampling uniformly from announced space and keeping the hits is
    # equivalent to sampling each responsive host independently with
    # probability ``sample_fraction`` -- which is how we draw it, so the
    # builder does not need to enumerate millions of dark addresses.
    sampled_hosts = [
        ip for ip in universe.all_ips() if rng.random() < sample_fraction
    ]
    sampled_set = set(sampled_hosts)
    observations = [
        _observation_from_record(record)
        for record in universe.real_services()
        if record.ip in sampled_set
    ]
    dataset = GroundTruthDataset(
        name=name,
        observations=observations,
        port_domain=None,
        sample_fraction=target / space,
        address_space_size=space,
    )
    if min_responsive_ips > 1:
        dataset = dataset.filtered_min_responsive_ips(min_responsive_ips, name=name)
    return dataset
