"""Ground-truth dataset builders.

A :class:`GroundTruthDataset` is what every experiment evaluates against: a
named set of fully-featured service observations, the port domain it covers,
and the fraction of the address space it observed.  Building a dataset does
not consume scan bandwidth -- it plays the role of the reference data (Censys,
the authors' month-long LZR scan) that the paper treats as ground truth.

Datasets are **columnar**: the builders fold the universe's service records
straight into :class:`~repro.scanner.records.ObservationBatch` parallel
columns (address, port, encoded protocol status, interned banner id, TTL)
through the universe's banner interner -- no per-service
:class:`~repro.scanner.records.ScanObservation` object and no banner-dict
copy is ever made.  The object API remains as lazy views (``observations``
materializes rows once, on first access) and stays the equivalence oracle:
a materialized row compares equal to what the historical object builder
produced.  Derived datasets (port restriction, the min-responsive filter)
are pure column slices sharing the parent's interner.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.internet.universe import Universe
from repro.net.ports import PortRegistry
from repro.scanner.records import ObservationBatch, ScanObservation

Pair = Tuple[int, int]


class GroundTruthDataset:
    """A ground-truth dataset plus the metadata experiments need.

    Attributes:
        name: dataset label (``"censys-like"``, ``"lzr-like"``, ...).
        port_domain: ports the dataset covers (``None`` = all 65,535).
        sample_fraction: fraction of the address space the dataset observed
            (1.0 for a Censys-style 100 % scan, 0.01 for an LZR-style 1 % scan).
        address_space_size: size of one "100 % scan" unit for this universe.

    The service data lives in exactly one of two backings: columnar
    (an :class:`~repro.scanner.records.ObservationBatch`, what the builders
    produce) or object rows (a list of
    :class:`~repro.scanner.records.ScanObservation`, the historical form --
    still accepted so loaded/handcrafted observation sets keep working and
    the tests have an oracle to compare against).  Whichever backing is
    missing is derived lazily and cached: ``observations`` materializes the
    columns once, :meth:`columns` folds object rows into a batch once.
    """

    def __init__(self, name: str,
                 observations: Optional[List[ScanObservation]] = None,
                 port_domain: Optional[Tuple[int, ...]] = None,
                 sample_fraction: float = 1.0,
                 address_space_size: int = 0,
                 columns: Optional[ObservationBatch] = None) -> None:
        if observations is None and columns is None:
            raise ValueError("a dataset needs observations or columns")
        self.name = name
        self.port_domain = port_domain
        self.sample_fraction = sample_fraction
        self.address_space_size = address_space_size
        self._columns = columns
        self._observations: Optional[List[ScanObservation]] = (
            list(observations) if observations is not None else None)
        self._pairs: Optional[Set[Pair]] = None

    # -- representations -------------------------------------------------------------

    @property
    def observations(self) -> List[ScanObservation]:
        """Every service in the dataset, as (lazily materialized) object rows."""
        if self._observations is None:
            self._observations = self._columns.materialize()
        return self._observations

    def columns(self) -> ObservationBatch:
        """The dataset's columnar backing (built once from rows if needed)."""
        if self._columns is None:
            self._columns = ObservationBatch.from_observations(self._observations)
        return self._columns

    def has_columns(self) -> bool:
        """Whether a columnar backing already exists (without building one).

        Consumers that merely *prefer* columns (the seed split's batch
        slice) check this so an object-backed dataset is not forced to
        intern every banner for a run that may never read the columns.
        """
        return self._columns is not None

    # -- queries ---------------------------------------------------------------------

    def pairs(self) -> Set[Pair]:
        """All (ip, port) services in the dataset (cached)."""
        if self._pairs is None:
            if self._columns is not None:
                self._pairs = set(zip(self._columns.ips, self._columns.ports))
            else:
                self._pairs = {obs.pair() for obs in self._observations}
        return self._pairs

    def ips(self) -> List[int]:
        """Distinct responsive addresses in the dataset, ascending."""
        if self._columns is not None:
            return sorted(set(self._columns.ips))
        return sorted({obs.ip for obs in self._observations})

    def port_registry(self) -> PortRegistry:
        """Per-port service counts within the dataset."""
        return PortRegistry.from_ports(port for _, port in self.pairs())

    def service_count(self) -> int:
        """Total number of services in the dataset."""
        if self._columns is not None:
            return len(self._columns)
        return len(self._observations)

    # -- derived datasets ------------------------------------------------------------

    def _restricted(self, allowed: Set[int], name: str,
                    port_domain: Optional[Tuple[int, ...]]) -> "GroundTruthDataset":
        """A copy keeping only services on ``allowed`` ports.

        Columnar datasets slice columns (sharing the interner, never
        touching a banner); object-backed datasets filter rows, exactly as
        the historical builder did -- the round-trip property tests compare
        the two.
        """
        if self._columns is not None:
            ports = self._columns.ports
            kept = self._columns.select(
                i for i in range(len(ports)) if ports[i] in allowed)
            return GroundTruthDataset(
                name=name, columns=kept, port_domain=port_domain,
                sample_fraction=self.sample_fraction,
                address_space_size=self.address_space_size,
            )
        return GroundTruthDataset(
            name=name,
            observations=[obs for obs in self._observations if obs.port in allowed],
            port_domain=port_domain,
            sample_fraction=self.sample_fraction,
            address_space_size=self.address_space_size,
        )

    def restricted_to_ports(self, ports: Sequence[int],
                            name: Optional[str] = None) -> "GroundTruthDataset":
        """A copy containing only services on the given ports."""
        allowed = set(ports)
        return self._restricted(allowed, name or f"{self.name}-restricted",
                                tuple(sorted(allowed)))

    def filtered_min_responsive_ips(self, minimum: int,
                                    name: Optional[str] = None) -> "GroundTruthDataset":
        """Keep only ports with at least ``minimum`` responsive addresses.

        The paper's LZR evaluation keeps ports with *greater than two*
        responsive addresses, i.e. ``minimum=3``.  The filter narrows the
        evaluation ground truth but not the dataset's *scan* domain: a seed
        scan across all ports still pays for all ports, so ``port_domain`` is
        left unchanged.
        """
        counts: Dict[int, Set[int]] = {}
        if self._columns is not None:
            for ip, port in zip(self._columns.ips, self._columns.ports):
                counts.setdefault(port, set()).add(ip)
        else:
            for obs in self._observations:
                counts.setdefault(obs.port, set()).add(obs.ip)
        allowed = {port for port, ips in counts.items() if len(ips) >= minimum}
        return self._restricted(allowed, name or f"{self.name}-min{minimum}",
                                self.port_domain)


def _observation_from_record(record) -> ScanObservation:
    """The historical object-row builder, kept as the equivalence oracle.

    Copies the record's banner dict per observation -- exactly what the
    pre-columnar builders did; the columnar round-trip tests and the dataset
    benchmark use it as the object-path baseline.
    """
    return ScanObservation(ip=record.ip, port=record.port, protocol=record.protocol,
                           app_features=dict(record.app_features), ttl=record.ttl)


def _columns_from_records(universe: Universe, records: Iterable) -> ObservationBatch:
    """Fold service records straight into observation columns.

    Per record: five list appends plus one identity-cached banner-id lookup
    (ground-truth banners are pre-interned when the universe's indices are
    built), so building a dataset is O(1) per service with no banner-dict
    copies -- the same contract the columnar scan path keeps per hit.
    """
    batch = ObservationBatch(banners=universe.banners)
    banner_id_of = universe.banner_id_of
    status_of = batch.statuses.encode
    ips, ports, status = batch.ips, batch.ports, batch.status
    banner_ids, ttls = batch.banner_ids, batch.ttls
    for record in records:
        ips.append(record.ip)
        ports.append(record.port)
        status.append(status_of(record.protocol))
        banner_ids.append(banner_id_of(record))
        ttls.append(record.ttl)
    return batch


def build_full_dataset(universe: Universe, name: str = "full") -> GroundTruthDataset:
    """Every real service in the universe (the omniscient reference)."""
    return GroundTruthDataset(
        name=name,
        columns=_columns_from_records(universe, universe.real_services()),
        port_domain=None,
        sample_fraction=1.0,
        address_space_size=universe.address_space_size(),
    )


def build_censys_like(universe: Universe, top_ports: int = 2000,
                      name: str = "censys-like") -> GroundTruthDataset:
    """A Censys-style dataset: 100 % coverage of the top-N most populated ports."""
    if top_ports < 1:
        raise ValueError("top_ports must be >= 1")
    registry = universe.port_registry()
    ports = tuple(sorted(registry.top_ports(top_ports)))
    allowed = set(ports)
    columns = _columns_from_records(
        universe,
        (record for record in universe.real_services() if record.port in allowed),
    )
    return GroundTruthDataset(
        name=name,
        columns=columns,
        port_domain=ports,
        sample_fraction=1.0,
        address_space_size=universe.address_space_size(),
    )


def build_lzr_like(universe: Universe, sample_fraction: float = 0.01,
                   seed: int = 11, min_responsive_ips: int = 3,
                   name: str = "lzr-like") -> GroundTruthDataset:
    """An LZR-style dataset: an address-sample scan across all ports.

    Args:
        universe: the ground-truth universe to sample.
        sample_fraction: fraction of the announced address space the scan
            covered (the paper uses 1 %).
        seed: RNG seed for the address sample.
        min_responsive_ips: minimum responsive addresses per port for the port
            to be kept (the paper keeps ports with more than two, i.e. 3).
        name: dataset label.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction out of range")
    rng = random.Random(seed)
    space = universe.address_space_size()
    target = max(1, int(round(space * sample_fraction)))

    # Sampling uniformly from announced space and keeping the hits is
    # equivalent to sampling each responsive host independently with
    # probability ``sample_fraction`` -- which is how we draw it, so the
    # builder does not need to enumerate millions of dark addresses.
    sampled_set = {
        ip for ip in universe.all_ips() if rng.random() < sample_fraction
    }
    columns = _columns_from_records(
        universe,
        (record for record in universe.real_services() if record.ip in sampled_set),
    )
    dataset = GroundTruthDataset(
        name=name,
        columns=columns,
        port_domain=None,
        sample_fraction=target / space,
        address_space_size=space,
    )
    if min_responsive_ips > 1:
        dataset = dataset.filtered_min_responsive_ips(min_responsive_ips, name=name)
    return dataset
