"""Dataset serialization: JSON-lines persistence for scan observations.

GPS deployments reuse seed scans ("if a seed scan is already available, GPS
can forego collecting the initial seed scan, reducing the overall runtime by
94 %", Section 6.5).  The reproduction supports the same workflow by saving
and reloading observation sets as JSON lines, one observation per line, so
expensive synthetic scans can be cached between experiments.

Two load paths exist. :func:`load_observations_jsonl` boxes one
:class:`~repro.scanner.records.ScanObservation` per row -- the simple
object-path oracle.  :func:`load_observation_batch` folds the same JSONL
straight into :class:`~repro.scanner.records.ObservationBatch` columns (five
appends + one banner intern per row, no per-row dataclass, no per-row
feature-dict copy), sharing the caller's status encoder so ids line up with
the rest of the pipeline; the equivalence suite pins the two paths
row-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.engine.encoding import DictionaryEncoder
from repro.internet.banners import BannerInterner
from repro.scanner.records import ObservationBatch, ScanObservation

PathLike = Union[str, Path]


def observation_to_dict(observation: ScanObservation) -> dict:
    """Convert an observation to a JSON-serialisable dict."""
    return {
        "ip": observation.ip,
        "port": observation.port,
        "protocol": observation.protocol,
        "app_features": dict(observation.app_features),
        "ttl": observation.ttl,
    }


def observation_from_dict(record: dict) -> ScanObservation:
    """Rebuild an observation from its dict form, validating required fields."""
    try:
        ip = int(record["ip"])
        port = int(record["port"])
        protocol = str(record["protocol"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed observation record: {record!r}") from exc
    if not 1 <= port <= 65535:
        raise ValueError(f"invalid port in record: {port}")
    app_features = record.get("app_features", {})
    if not isinstance(app_features, dict):
        raise ValueError("app_features must be a mapping")
    return ScanObservation(
        ip=ip,
        port=port,
        protocol=protocol,
        app_features={str(k): str(v) for k, v in app_features.items()},
        ttl=int(record.get("ttl", 64)),
    )


def save_observations_jsonl(observations: Iterable[ScanObservation],
                            path: PathLike) -> int:
    """Write observations as JSON lines; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for observation in observations:
            handle.write(json.dumps(observation_to_dict(observation), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_observations_jsonl(path: PathLike) -> List[ScanObservation]:
    """Load observations previously written by :func:`save_observations_jsonl`."""
    path = Path(path)
    observations: List[ScanObservation] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
            observations.append(observation_from_dict(record))
    return observations


def load_observation_batch(path: PathLike,
                           banners: Optional[BannerInterner] = None,
                           statuses: Optional[DictionaryEncoder] = None,
                           ) -> ObservationBatch:
    """Stream a JSONL observation file straight into columnar form.

    Each line folds directly into the batch's columns: ip/port/ttl append as
    machine ints, the protocol dictionary-encodes through ``statuses`` (pass
    the pipeline's encoder so status ids line up with live scan batches),
    and the banner dict interns by content through ``banners`` -- equal
    banners across rows collapse to one interned mapping instead of one
    boxed dict per row.  No :class:`ScanObservation` is ever allocated.

    Validation matches :func:`observation_from_dict` exactly (missing or
    non-numeric fields, out-of-range ports and non-mapping ``app_features``
    raise ``ValueError`` naming the record), and the loaded batch is
    row-identical to ``ObservationBatch.from_observations(
    load_observations_jsonl(path))`` -- the object loader stays the
    equivalence oracle.
    """
    path = Path(path)
    batch = ObservationBatch(
        banners=banners if banners is not None else BannerInterner(),
        statuses=statuses if statuses is not None else DictionaryEncoder())
    encode_status = batch.statuses.encode
    intern_banner = batch.banners.intern_value
    append = batch.append
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
            try:
                ip = int(record["ip"])
                port = int(record["port"])
                protocol = str(record["protocol"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"malformed observation record: {record!r}") from exc
            if not 1 <= port <= 65535:
                raise ValueError(f"invalid port in record: {port}")
            app_features = record.get("app_features", {})
            if not isinstance(app_features, dict):
                raise ValueError("app_features must be a mapping")
            append(ip, port, encode_status(protocol),
                   intern_banner({str(k): str(v)
                                  for k, v in app_features.items()}),
                   int(record.get("ttl", 64)))
    return batch
