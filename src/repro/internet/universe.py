"""The synthetic ground-truth universe of hosts and services.

A :class:`Universe` is the reproduction's stand-in for "the IPv4 Internet at a
point in time": a set of hosts, each with an address, an originating AS, a
device profile and a set of listening services with application-layer content.
The scanners in :mod:`repro.scanner` only ever interact with the universe
through point probes and prefix queries, so GPS and the baselines exercise the
same code path they would against live targets.

Three populations are generated, mirroring the phenomena the paper describes:

* **Real hosts** drawn from device profiles (the predictable structure GPS
  learns), clustered into subnets of compatible autonomous systems;
* **Pseudo-service hosts** (Appendix B): hosts that complete handshakes on
  more than a thousand contiguous ports but serve no real content;
* **Middleboxes** (handled by LZR): devices that SYN-ACK on every port but
  never complete an application handshake.

Scale note: the paper's universe is 3.7 billion addresses; the synthetic one
defaults to tens of thousands of hosts inside a few dozen /16s.  All metrics
in the reproduction are relative (fractions of services, bandwidth in units of
"100 % scans" of the synthetic address space), so the scale change preserves
the shape of every result while keeping experiments laptop-sized.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from bisect import bisect_left, bisect_right

from repro.internet.banners import BannerFactory, BannerInterner
from repro.internet.profiles import DeviceProfile, default_profiles
from repro.internet.topology import (
    AutonomousSystem,
    Topology,
    TopologyConfig,
    generate_topology,
)
from repro.net.ipv4 import prefix_of, prefix_size
from repro.net.ports import MAX_PORT, PortRegistry

#: Device classes that gravitate towards access (residential/mobile) networks
#: versus datacenter-style (hosting/enterprise/academic) networks.
_ACCESS_CLASSES = {"router", "iot", "camera", "embedded"}
_DATACENTER_CLASSES = {"server", "database", "nas"}


@dataclass(frozen=True)
class ServiceRecord:
    """One real (ip, port) service in the ground truth.

    Attributes:
        ip: host address.
        port: listening port.
        protocol: protocol actually spoken (LZR fingerprint result).
        app_features: application-layer feature values (Table 1 keys).
        ttl: IP TTL observed from this service; differing TTLs across a host's
            services indicate port forwarding (paper Section 7).
    """

    ip: int
    port: int
    protocol: str
    app_features: Dict[str, str]
    ttl: int = 64


@dataclass
class Host:
    """A host in the synthetic universe."""

    ip: int
    asn: int
    profile_name: str
    services: Dict[int, ServiceRecord] = field(default_factory=dict)
    base_ttl: int = 64
    pseudo_port_range: Optional[Tuple[int, int]] = None
    pseudo_incident_style: bool = False
    is_middlebox: bool = False

    def open_ports(self) -> List[int]:
        """Ports with real services, ascending."""
        return sorted(self.services)

    def is_pseudo_host(self) -> bool:
        """Whether the host serves pseudo services (Appendix B)."""
        return self.pseudo_port_range is not None

    def is_pseudo_responsive_on(self, port: int) -> bool:
        """Whether this host would answer ``port`` with a pseudo service.

        The single definition of pseudo-responsiveness: both the point-probe
        path (:meth:`Universe.is_pseudo_responsive`) and the batched scanner
        layers (which already hold the ``Host``) route through it, so the
        two paths cannot drift.
        """
        span = self.pseudo_port_range
        return span is not None and span[0] <= port <= span[1]


@dataclass(frozen=True)
class UniverseConfig:
    """Parameters controlling universe generation.

    Attributes:
        host_count: number of real (profile-driven) hosts to generate.
        seed: RNG seed; generation is fully deterministic given the config.
        topology: topology generation parameters.
        pseudo_host_fraction: extra hosts (relative to ``host_count``) that are
            pseudo-service hosts.
        pseudo_port_span: width of the contiguous pseudo-service port range
            (the paper observes spans greater than 1,000 ports).
        pseudo_incident_fraction: fraction of pseudo hosts whose pages embed a
            random incident ID (the hard-to-filter long tail of Appendix B).
        middlebox_fraction: extra hosts that are SYN-ACK-everything middleboxes.
        subnet_cluster_len: prefix length of the pools hosts of a profile are
            clustered into inside an AS (models "services appear together in
            networks", Section 4).
        cluster_pools_per_profile_as: number of such pools per (profile, AS).
        cluster_probability: probability a host lands in one of its profile's
            pools rather than anywhere in the AS.
        unique_body_fraction: see :class:`~repro.internet.banners.BannerFactory`.
    """

    host_count: int = 20000
    seed: int = 1
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    profiles: Optional[Tuple[DeviceProfile, ...]] = None
    pseudo_host_fraction: float = 0.02
    pseudo_port_span: int = 1200
    pseudo_incident_fraction: float = 0.2
    middlebox_fraction: float = 0.01
    subnet_cluster_len: int = 24
    cluster_pools_per_profile_as: int = 4
    cluster_probability: float = 0.8
    unique_body_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.host_count < 1:
            raise ValueError("host_count must be >= 1")
        if not 0.0 <= self.pseudo_host_fraction <= 1.0:
            raise ValueError("pseudo_host_fraction out of range")
        if not 0.0 <= self.middlebox_fraction <= 1.0:
            raise ValueError("middlebox_fraction out of range")
        if not 1 <= self.pseudo_port_span <= MAX_PORT:
            raise ValueError("pseudo_port_span out of range")
        if not 16 <= self.subnet_cluster_len <= 30:
            raise ValueError("subnet_cluster_len must be within /16-/30")
        if not 0.0 <= self.cluster_probability <= 1.0:
            raise ValueError("cluster_probability out of range")


class Universe:
    """Ground-truth container with the query interface the scanners need."""

    def __init__(self, hosts: Dict[int, Host], topology: Topology,
                 config: UniverseConfig) -> None:
        self.hosts = hosts
        self.topology = topology
        self.config = config
        # port -> sorted list of IPs with a *real* service on that port.
        self._port_index: Dict[int, List[int]] = {}
        self._pseudo_ips: List[int] = []
        self._middlebox_ips: List[int] = []
        # Banner interner: every ground-truth banner dict is assigned a dense
        # integer id once, so the columnar scan layers ship ids instead of
        # copying dicts per hit (see repro.scanner.records.ObservationBatch).
        self.banners = BannerInterner()
        self._rebuild_indices()

    # -- index maintenance ---------------------------------------------------------

    def _rebuild_indices(self) -> None:
        port_index: Dict[int, List[int]] = {}
        pseudo: List[int] = []
        middlebox: List[int] = []
        intern_banner = self.banners.intern
        for ip, host in self.hosts.items():
            for port, record in host.services.items():
                port_index.setdefault(port, []).append(ip)
                # Pre-intern every ground-truth banner so a scan hit resolves
                # its banner id with one identity-cache lookup.
                intern_banner(record.app_features)
            if host.is_pseudo_host():
                pseudo.append(ip)
            if host.is_middlebox:
                middlebox.append(ip)
        for ips in port_index.values():
            ips.sort()
        self._port_index = port_index
        self._pseudo_ips = sorted(pseudo)
        self._middlebox_ips = sorted(middlebox)

    # -- basic lookups ---------------------------------------------------------------

    def host(self, ip: int) -> Optional[Host]:
        """Return the host at ``ip`` (or ``None`` when the address is dark)."""
        return self.hosts.get(ip)

    def lookup(self, ip: int, port: int) -> Optional[ServiceRecord]:
        """Return the real service at ``(ip, port)`` or ``None``."""
        host = self.hosts.get(ip)
        if host is None:
            return None
        return host.services.get(port)

    def banner_id_of(self, record: ServiceRecord) -> int:
        """Dense interned id of a service record's banner dict.

        Records present at index-build time hit the identity cache (one
        int-keyed dict lookup); records added afterwards (churn) intern
        lazily on first use, so callers never need to re-index first.
        """
        return self.banners.intern(record.app_features)

    def is_pseudo_responsive(self, ip: int, port: int) -> bool:
        """Whether ``(ip, port)`` would answer with a pseudo service."""
        host = self.hosts.get(ip)
        return host is not None and host.is_pseudo_responsive_on(port)

    def is_middlebox(self, ip: int) -> bool:
        """Whether ``ip`` is a SYN-ACK-everything middlebox."""
        host = self.hosts.get(ip)
        return host is not None and host.is_middlebox

    def asn_of(self, ip: int) -> int:
        """ASN originating ``ip`` (0 when unannounced)."""
        return self.topology.asn_db.asn_of(ip)

    # -- aggregate views --------------------------------------------------------------

    def all_ips(self) -> List[int]:
        """All host addresses (real, pseudo and middlebox), ascending."""
        return sorted(self.hosts)

    def real_service_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate all real ``(ip, port)`` pairs in the ground truth."""
        for ip, host in self.hosts.items():
            for port in host.services:
                yield ip, port

    def real_services(self) -> Iterator[ServiceRecord]:
        """Iterate all real service records."""
        for host in self.hosts.values():
            yield from host.services.values()

    def service_count(self) -> int:
        """Total number of real services."""
        return sum(len(host.services) for host in self.hosts.values())

    def ports_in_use(self) -> List[int]:
        """Ports with at least one real service, ascending."""
        return sorted(self._port_index)

    def ips_on_port(self, port: int) -> List[int]:
        """Sorted addresses with a real service on ``port``."""
        return list(self._port_index.get(port, ()))

    def port_registry(self) -> PortRegistry:
        """Per-port real-service counts (used by popularity-ordered baselines)."""
        return PortRegistry.from_counts(
            {port: len(ips) for port, ips in self._port_index.items()}
        )

    def address_space_size(self) -> int:
        """Size of the announced address space (the denominator of a "100 % scan")."""
        return self.topology.total_address_capacity()

    def announced_overlap(self, base: int, prefix_len: int) -> int:
        """Number of announced addresses inside ``base/prefix_len``.

        Exhaustively scanning a prefix only costs probes for addresses that
        exist in the simulated Internet; a ``/0`` step size therefore costs
        exactly one "100 % scan" rather than 2**32 probes.
        """
        lo = prefix_of(base, prefix_len)
        hi = lo + prefix_size(prefix_len)
        total = 0
        for system in self.topology.systems:
            for p_base, p_len in system.prefixes:
                p_lo = p_base
                p_hi = p_base + prefix_size(p_len)
                overlap = min(hi, p_hi) - max(lo, p_lo)
                if overlap > 0:
                    total += overlap
        return total

    # -- prefix queries (what the simulated ZMap uses) -------------------------------

    def responders_in_prefix(self, port: int, base: int, prefix_len: int) -> List[int]:
        """Addresses inside ``base/prefix_len`` that would SYN-ACK on ``port``.

        Includes real services, pseudo services whose port range covers
        ``port``, and middleboxes (which SYN-ACK on everything).  The caller
        pays the bandwidth cost of the exhaustive sweep; this method only
        avoids enumerating dark addresses.
        """
        lo = prefix_of(base, prefix_len)
        hi = lo + prefix_size(prefix_len)
        out: List[int] = []
        ips = self._port_index.get(port)
        if ips:
            out.extend(ips[bisect_left(ips, lo):bisect_right(ips, hi - 1)])
        for pool in (self._pseudo_ips, self._middlebox_ips):
            for ip in pool[bisect_left(pool, lo):bisect_right(pool, hi - 1)]:
                host = self.hosts[ip]
                if host.is_middlebox or self.is_pseudo_responsive(ip, port):
                    if port not in host.services:
                        out.append(ip)
        return sorted(set(out))

    def syn_ack(self, ip: int, port: int) -> bool:
        """Whether a single SYN probe to ``(ip, port)`` would be answered."""
        host = self.hosts.get(ip)
        if host is None:
            return False
        if host.is_middlebox:
            return True
        if port in host.services:
            return True
        return self.is_pseudo_responsive(ip, port)

    def syn_ack_observed(self, ip: int, port: int, loss: Any,
                         attempt: int = 0) -> bool:
        """:meth:`syn_ack` as *observed* through a lossy network.

        ``loss`` is a :class:`~repro.engine.faults.ProbeLossModel` (or
        ``None`` for a perfect network): a target only counts as responsive
        when it would answer *and* the model does not drop this attempt's
        reply.  The decision is a pure function of ``(seed, ip, port,
        attempt)``, so every scanner layer observing the same attempt agrees
        on what was lost -- the property the retry-equivalence tests pin.
        """
        if not self.syn_ack(ip, port):
            return False
        return loss is None or not loss.lost("zmap", ip, port, attempt)

    def syn_ack_many(self, ips: Sequence[int], port: int) -> List[int]:
        """Batched :meth:`syn_ack`: the subset of ``ips`` answering on ``port``.

        Returns responders in input order (duplicates included, like repeated
        point probes).  Instead of one host-table lookup per address, the
        sorted per-port, middlebox and pseudo-host indices are bisected once
        to the batch's address range and misses -- the overwhelming majority
        of targets in a prediction scan -- cost three membership tests in
        those small windows.  Batches too small to amortize the bisects fall
        back to point probes, so callers can batch unconditionally.  The
        caller still pays bandwidth for every probe sent; this method only
        amortizes the ground-truth lookups, which is what makes
        per-(prefix, port) batching worthwhile for the scanners.
        """
        if not ips:
            return []
        if len(ips) < 8:
            syn_ack = self.syn_ack
            return [ip for ip in ips if syn_ack(ip, port)]
        lo, hi = min(ips), max(ips)

        def window(pool: List[int]) -> Set[int]:
            return set(pool[bisect_left(pool, lo):bisect_right(pool, hi)])

        open_ips = window(self._port_index.get(port, []))
        middleboxes = window(self._middlebox_ips)
        pseudo = window(self._pseudo_ips)
        out: List[int] = []
        for ip in ips:
            if ip in open_ips or ip in middleboxes:
                out.append(ip)
            elif ip in pseudo and self.hosts[ip].is_pseudo_responsive_on(port):
                out.append(ip)
        return out

    def describe(self) -> Dict[str, int]:
        """Summary statistics used in docs, logs and tests."""
        return {
            "hosts": len(self.hosts),
            "real_services": self.service_count(),
            "ports_in_use": len(self._port_index),
            "pseudo_hosts": len(self._pseudo_ips),
            "middleboxes": len(self._middlebox_ips),
            "autonomous_systems": len(self.topology),
            "address_space": self.address_space_size(),
        }


# -- generation ------------------------------------------------------------------------


def _compatible_ases(profile: DeviceProfile, topology: Topology,
                     rng: random.Random) -> List[AutonomousSystem]:
    """Pick the ASes a profile is concentrated in, respecting category affinity."""
    if profile.device_class in _ACCESS_CLASSES:
        preferred = topology.by_category("residential") + topology.by_category("mobile")
    elif profile.device_class in _DATACENTER_CLASSES:
        preferred = (topology.by_category("hosting")
                     + topology.by_category("enterprise")
                     + topology.by_category("academic"))
    else:
        preferred = list(topology.systems)
    if not preferred:
        preferred = list(topology.systems)
    count = min(profile.preferred_as_count, len(preferred))
    return rng.sample(preferred, count)


def _allocate_address(profile: DeviceProfile, system: AutonomousSystem,
                      pools: Dict[Tuple[str, int], List[int]],
                      used: Set[int], config: UniverseConfig,
                      topology: Topology, rng: random.Random) -> int:
    """Pick a free address for a host, clustering it into per-profile pools."""
    key = (profile.name, system.asn)
    if key not in pools:
        pool_bases: List[int] = []
        for _ in range(config.cluster_pools_per_profile_as):
            anchor = topology.random_address(system.asn, rng)
            pool_bases.append(prefix_of(anchor, config.subnet_cluster_len))
        pools[key] = pool_bases
    for _ in range(64):
        if rng.random() < config.cluster_probability:
            base = rng.choice(pools[key])
            candidate = base + rng.randrange(prefix_size(config.subnet_cluster_len))
        else:
            candidate = topology.random_address(system.asn, rng)
        if candidate not in used:
            return candidate
    # Extremely dense pool: fall back to a linear scan from a random anchor.
    candidate = topology.random_address(system.asn, rng)
    while candidate in used:
        candidate += 1
    return candidate


def _as_specific_port(profile: DeviceProfile, bundle_port: int, asn: int) -> int:
    """Deterministic non-standard port for a bundle deployed in a given AS.

    Models ISP-customised firmware: the same device family listens on a
    different high port in every network, so the long tail of uncommon ports
    stays predictable from (banner, network) features while being invisible to
    popularity-ordered port scanning.
    """
    digest = hashlib.sha256(f"{profile.name}|{bundle_port}|{asn}".encode()).digest()
    return 1024 + int.from_bytes(digest[:4], "big") % (MAX_PORT - 1024)


def _host_services(profile: DeviceProfile, ip: int, asn: int, base_ttl: int,
                   banner_factory: BannerFactory,
                   rng: random.Random) -> Dict[int, ServiceRecord]:
    """Instantiate a host's services from its profile's port bundles."""
    services: Dict[int, ServiceRecord] = {}
    for bundle in profile.bundles:
        if rng.random() >= bundle.probability:
            continue
        if bundle.random_port:
            port = rng.randrange(1024, MAX_PORT + 1)
            # Forwarded services traverse extra hops: their observed TTL
            # differs from the host's other services (paper Section 7).
            ttl = max(8, base_ttl - rng.randrange(1, 6))
        elif bundle.as_specific:
            port = _as_specific_port(profile, bundle.port, asn)
            ttl = base_ttl
        else:
            port = bundle.port
            ttl = base_ttl
        if port in services:
            continue
        features = banner_factory.features_for(profile, bundle.protocol,
                                                bundle.banner_variant, ip)
        services[port] = ServiceRecord(ip=ip, port=port, protocol=bundle.protocol,
                                       app_features=features, ttl=ttl)
    if not services:
        # Every generated host exposes at least one service; otherwise it would
        # be indistinguishable from dark space and contribute nothing.
        bundle = profile.bundles[0]
        features = banner_factory.features_for(profile, bundle.protocol,
                                               bundle.banner_variant, ip)
        services[bundle.port] = ServiceRecord(ip=ip, port=bundle.port,
                                              protocol=bundle.protocol,
                                              app_features=features, ttl=base_ttl)
    return services


def generate_universe(config: UniverseConfig) -> Universe:
    """Generate a ground-truth universe from ``config`` (deterministically)."""
    rng = random.Random(config.seed)
    topology = generate_topology(config.topology, rng)
    profiles = list(config.profiles) if config.profiles else default_profiles()
    banner_factory = BannerFactory(unique_body_fraction=config.unique_body_fraction)

    profile_ases = {p.name: _compatible_ases(p, topology, rng) for p in profiles}
    weights = [p.weight for p in profiles]

    hosts: Dict[int, Host] = {}
    used: Set[int] = set()
    pools: Dict[Tuple[str, int], List[int]] = {}

    for _ in range(config.host_count):
        profile = rng.choices(profiles, weights=weights, k=1)[0]
        if rng.random() < profile.network_concentration:
            system = rng.choice(profile_ases[profile.name])
        else:
            system = rng.choice(topology.systems)
        ip = _allocate_address(profile, system, pools, used, config, topology, rng)
        used.add(ip)
        base_ttl = rng.choice((64, 64, 64, 128, 255))
        services = _host_services(profile, ip, system.asn, base_ttl, banner_factory, rng)
        hosts[ip] = Host(ip=ip, asn=system.asn, profile_name=profile.name,
                         services=services, base_ttl=base_ttl)

    # Pseudo-service hosts (Appendix B).
    pseudo_count = int(round(config.host_count * config.pseudo_host_fraction))
    for _ in range(pseudo_count):
        system = rng.choice(topology.systems)
        ip = topology.random_address(system.asn, rng)
        while ip in used:
            ip = topology.random_address(system.asn, rng)
        used.add(ip)
        start = rng.randrange(1, MAX_PORT - config.pseudo_port_span)
        incident = rng.random() < config.pseudo_incident_fraction
        hosts[ip] = Host(ip=ip, asn=system.asn, profile_name="pseudo_host",
                         services={}, base_ttl=64,
                         pseudo_port_range=(start, start + config.pseudo_port_span - 1),
                         pseudo_incident_style=incident)

    # Middleboxes: SYN-ACK everything, never complete an application handshake.
    middlebox_count = int(round(config.host_count * config.middlebox_fraction))
    for _ in range(middlebox_count):
        system = rng.choice(topology.systems)
        ip = topology.random_address(system.asn, rng)
        while ip in used:
            ip = topology.random_address(system.asn, rng)
        used.add(ip)
        hosts[ip] = Host(ip=ip, asn=system.asn, profile_name="middlebox",
                         services={}, base_ttl=255, is_middlebox=True)

    return Universe(hosts=hosts, topology=topology, config=config)
