"""Device profiles: the generative source of predictable port/feature structure.

Section 4 of the paper observes that IoT devices and routers dominate the
majority of ports and that their ports are "manufactured to be open" -- i.e. a
device model determines a bundle of ports and the application-layer content
served on them.  That is exactly how the synthetic universe is generated: each
host is drawn from a :class:`DeviceProfile`, and the profile determines

* which ports the host opens (each :class:`PortBundle` opens with some
  probability, optionally on a *randomised* port to model port-forwarding and
  FRITZ!Box-style "random TCP port for HTTPS" behaviour);
* what protocol is spoken on each port and which banner template is used;
* how strongly the profile is concentrated in particular networks (some
  devices, like the paper's Freebox example, live in a single AS; others, like
  Android TVs, are spread across many).

The default catalogue below is loosely modelled on the device mix the paper
describes (home routers with CWMP/7547, IoT cameras, NAS boxes, hosting
servers, databases on alternate ports, telnet-speaking modems on 2323, ...).
It is intentionally a *catalogue*, not a hard-coded universe: tests and
experiments can pass their own profiles to stress specific structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PortBundle:
    """One (possibly optional) service a device profile may expose.

    Attributes:
        port: the port the service normally listens on.
        protocol: protocol spoken on the port (``"http"``, ``"ssh"``, ...);
            used by the banner factory to synthesise application-layer data.
        probability: probability that a host of this profile opens the bundle.
        banner_variant: index selecting among the profile's banner templates,
            so that two bundles of the same protocol can carry different
            content (e.g. an admin page vs. a CWMP endpoint).
        random_port: when ``True`` the service is placed on a uniformly random
            high port instead of ``port``, modelling port-forwarding and
            security-through-obscurity configurations (paper Section 7).
        as_specific: when ``True`` the listening port is derived
            deterministically from the (profile, bundle, AS) triple instead of
            being ``port`` itself.  This models ISP-customised firmware: the
            same device family exposes its management service on a different
            non-standard port in every network it is deployed in, which is
            exactly the structure behind the paper's long tail of services on
            uncommon ports -- predictable from the banner plus the network
            (Expressions 6-7), invisible to per-port popularity scanning.
    """

    port: int
    protocol: str
    probability: float = 1.0
    banner_variant: int = 0
    random_port: bool = False
    as_specific: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.port <= 65535:
            raise ValueError(f"invalid port in bundle: {self.port}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")


@dataclass(frozen=True)
class DeviceProfile:
    """A device/vendor template from which hosts are generated.

    Attributes:
        name: unique profile identifier (e.g. ``"home_router_av"``).
        vendor: manufacturer string surfaced in banners and TLS organisations.
        device_class: coarse category (``"router"``, ``"iot"``, ``"server"``,
            ``"database"``, ``"camera"``, ``"nas"``, ``"embedded"``).
        bundles: the port bundles the profile may expose.
        weight: relative share of hosts generated from this profile.
        network_concentration: how strongly the profile clusters in networks.
            ``1.0`` means hosts of this profile appear only in the small set of
            ASes assigned to it (maximally predictable from the network
            feature); ``0.0`` means hosts are spread uniformly across the
            topology (the network feature carries no information).
        preferred_as_count: how many ASes the profile is concentrated in when
            ``network_concentration`` > 0.
        os_name: operating system string surfaced in SSH/HTTP banners.
    """

    name: str
    vendor: str
    device_class: str
    bundles: Tuple[PortBundle, ...]
    weight: float = 1.0
    network_concentration: float = 0.7
    preferred_as_count: int = 2
    os_name: str = "linux"

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"profile weight must be positive: {self.weight}")
        if not 0.0 <= self.network_concentration <= 1.0:
            raise ValueError(
                f"network_concentration out of range: {self.network_concentration}"
            )
        if self.preferred_as_count < 1:
            raise ValueError("preferred_as_count must be >= 1")
        if not self.bundles:
            raise ValueError(f"profile {self.name!r} has no port bundles")

    def ports(self) -> List[int]:
        """Nominal ports of all bundles (ignoring random-port placement)."""
        return [bundle.port for bundle in self.bundles]


def _bundle(port: int, protocol: str, probability: float = 1.0,
            variant: int = 0, random_port: bool = False,
            as_specific: bool = False) -> PortBundle:
    return PortBundle(port=port, protocol=protocol, probability=probability,
                      banner_variant=variant, random_port=random_port,
                      as_specific=as_specific)


def default_profiles() -> List[DeviceProfile]:
    """The built-in device catalogue used by the stock experiments.

    The catalogue mixes highly predictable device families (fixed port bundles,
    strong network concentration) with noisy ones (random ports, weak
    concentration) so that the bandwidth/coverage trade-off curves of the paper
    have the same qualitative shape: the first services are cheap to predict,
    the long tail is expensive.
    """
    profiles: List[DeviceProfile] = [
        # --- Home routers / CPE -------------------------------------------------
        DeviceProfile(
            name="home_router_av",
            vendor="AVM",
            device_class="router",
            os_name="fritzos",
            weight=14.0,
            network_concentration=0.85,
            preferred_as_count=3,
            bundles=(
                _bundle(80, "http", 0.3),
                _bundle(7547, "cwmp", 0.85),
                _bundle(52869, "http", 0.6, variant=4, as_specific=True),
                _bundle(49000, "http", 0.85, variant=2, as_specific=True),
                _bundle(5060, "sip", 0.45),
                _bundle(443, "https", 0.25, variant=1),
                # "FRITZ!Box sets up a random TCP port for HTTPS" (paper §7).
                _bundle(8443, "https", 0.25, variant=1, random_port=True),
            ),
        ),
        DeviceProfile(
            name="home_router_generic",
            vendor="NetHome",
            device_class="router",
            os_name="linux-embedded",
            weight=12.0,
            network_concentration=0.7,
            preferred_as_count=4,
            bundles=(
                _bundle(8291, "http", 0.85, variant=2, as_specific=True),
                _bundle(7547, "cwmp", 0.8),
                _bundle(80, "http", 0.3),
                _bundle(8080, "http", 0.35, variant=1),
                _bundle(58000, "cwmp", 0.55, variant=1, as_specific=True),
                _bundle(2000, "cisco-sccp", 0.45),
                _bundle(23, "telnet", 0.3),
                _bundle(53, "dns", 0.3),
            ),
        ),
        DeviceProfile(
            name="isp_freebox",
            vendor="Free",
            device_class="router",
            os_name="freebox-os",
            weight=6.0,
            # "Freebox devices only appear in the Free network" (paper §5.2).
            network_concentration=1.0,
            preferred_as_count=1,
            bundles=(
                _bundle(80, "http", 0.35),
                _bundle(443, "https", 0.35),
                _bundle(8082, "http", 0.85, variant=1),
                _bundle(44880, "rtsp", 0.5, variant=1, as_specific=True),
                _bundle(14147, "http", 0.7, variant=3, as_specific=True),
                _bundle(554, "rtsp", 0.45),
            ),
        ),
        DeviceProfile(
            name="telnet_modem_2323",
            vendor="Distributel",
            device_class="embedded",
            os_name="busybox",
            weight=5.0,
            network_concentration=0.95,
            preferred_as_count=1,
            bundles=(
                # Mirrors the paper's §6.6 example: telnet banner on 23
                # predicts HTTP content on 8082.
                _bundle(23, "telnet", 0.95),
                _bundle(2323, "telnet", 0.6, variant=1),
                _bundle(8082, "http", 0.9),
                _bundle(30005, "http", 0.5, variant=1, as_specific=True),
            ),
        ),
        # --- IoT -----------------------------------------------------------------
        DeviceProfile(
            name="ip_camera",
            vendor="OptiCam",
            device_class="camera",
            os_name="linux-embedded",
            weight=12.0,
            network_concentration=0.55,
            preferred_as_count=6,
            bundles=(
                _bundle(37777, "http", 0.9, variant=2, as_specific=True),
                _bundle(34567, "http", 0.75, variant=3, as_specific=True),
                _bundle(554, "rtsp", 0.85),
                _bundle(8899, "http", 0.5, variant=1, as_specific=True),
                _bundle(80, "http", 0.25),
                _bundle(3702, "http", 0.5, variant=4, as_specific=True),
                _bundle(23, "telnet", 0.35),
            ),
        ),
        DeviceProfile(
            name="dvr_nvr",
            vendor="SecuRecord",
            device_class="iot",
            os_name="linux-embedded",
            weight=9.0,
            network_concentration=0.5,
            preferred_as_count=5,
            bundles=(
                _bundle(9530, "http", 0.85, variant=2, as_specific=True),
                _bundle(8000, "http", 0.8, variant=1),
                _bundle(554, "rtsp", 0.7),
                _bundle(9000, "http", 0.5, variant=2, as_specific=True),
                _bundle(80, "http", 0.25),
                _bundle(23, "telnet", 0.3),
            ),
        ),
        DeviceProfile(
            name="smart_tv",
            vendor="ViewBox",
            device_class="iot",
            os_name="android",
            weight=5.0,
            # Android TVs appear in many subnetworks (paper §5.2) -- the
            # network feature is weakly predictive for this profile.
            network_concentration=0.1,
            preferred_as_count=12,
            bundles=(
                _bundle(8008, "http", 0.85),
                _bundle(8009, "http", 0.7, variant=1, as_specific=True),
                _bundle(9080, "http", 0.45, variant=2, as_specific=True),
                _bundle(8443, "https", 0.35),
            ),
        ),
        DeviceProfile(
            name="printer",
            vendor="PrintWorks",
            device_class="iot",
            os_name="rtos",
            weight=4.0,
            network_concentration=0.4,
            preferred_as_count=8,
            bundles=(
                _bundle(631, "ipp", 0.9),
                _bundle(9100, "jetdirect", 0.85),
                _bundle(8611, "http", 0.55, variant=1, as_specific=True),
                _bundle(80, "http", 0.3),
                _bundle(10611, "ipp", 0.5, variant=2, as_specific=True),
                _bundle(443, "https", 0.25),
            ),
        ),
        DeviceProfile(
            name="iot_gateway",
            vendor="MeshWorks",
            device_class="iot",
            os_name="linux-embedded",
            weight=7.0,
            network_concentration=0.6,
            preferred_as_count=5,
            bundles=(
                _bundle(1883, "mqtt", 0.85),
                _bundle(8883, "mqtt", 0.55, variant=1),
                _bundle(55443, "http", 0.8, variant=2, as_specific=True),
                _bundle(47808, "http", 0.55, variant=3, as_specific=True),
                _bundle(8080, "http", 0.3, variant=1),
                _bundle(22, "ssh", 0.25),
            ),
        ),
        DeviceProfile(
            name="voip_adapter",
            vendor="TalkBridge",
            device_class="embedded",
            os_name="rtos",
            weight=4.0,
            network_concentration=0.75,
            preferred_as_count=3,
            bundles=(
                _bundle(5060, "sip", 0.9),
                _bundle(5061, "sip", 0.55, variant=1),
                _bundle(10000, "http", 0.7, variant=2, as_specific=True),
                _bundle(5038, "sip", 0.45, variant=2, as_specific=True),
                _bundle(80, "http", 0.25),
            ),
        ),
        # --- Servers -------------------------------------------------------------
        DeviceProfile(
            name="web_hosting",
            vendor="StackHost",
            device_class="server",
            os_name="ubuntu",
            weight=6.0,
            network_concentration=0.8,
            preferred_as_count=3,
            bundles=(
                _bundle(80, "http", 0.95),
                _bundle(443, "https", 0.9),
                _bundle(22, "ssh", 0.85),
                _bundle(2082, "http", 0.6, variant=2),
                _bundle(2083, "https", 0.5, variant=2),
                _bundle(21, "ftp", 0.4),
                _bundle(25, "smtp", 0.3),
                _bundle(8080, "http", 0.25, variant=1),
            ),
        ),
        DeviceProfile(
            name="mail_server",
            vendor="MailCore",
            device_class="server",
            os_name="debian",
            weight=4.0,
            network_concentration=0.75,
            preferred_as_count=3,
            bundles=(
                _bundle(25, "smtp", 0.95),
                _bundle(465, "smtps", 0.8),
                _bundle(587, "submission", 0.85),
                _bundle(993, "imaps", 0.8),
                _bundle(995, "pop3s", 0.7),
                _bundle(143, "imap", 0.6),
                _bundle(110, "pop3", 0.45),
                _bundle(4190, "http", 0.4, variant=2),
                _bundle(80, "http", 0.4),
                _bundle(443, "https", 0.5),
            ),
        ),
        DeviceProfile(
            name="shared_hosting_imap_ssh",
            vendor="Bizland",
            device_class="server",
            os_name="centos",
            weight=4.0,
            network_concentration=0.95,
            preferred_as_count=1,
            bundles=(
                # Mirrors the paper's §6.6 example: IMAP banner on 143 in one
                # AS predicts SSH on 2222.
                _bundle(143, "imap", 0.9),
                _bundle(2222, "ssh", 0.9),
                _bundle(80, "http", 0.7),
                _bundle(443, "https", 0.65),
            ),
        ),
        DeviceProfile(
            name="database_server",
            vendor="DataPlane",
            device_class="database",
            os_name="ubuntu",
            weight=5.0,
            network_concentration=0.7,
            preferred_as_count=4,
            bundles=(
                _bundle(3306, "mysql", 0.6),
                _bundle(5432, "postgres", 0.45),
                _bundle(33060, "mysql", 0.4, variant=1),
                _bundle(1433, "mssql", 0.2),
                _bundle(6379, "redis", 0.25),
                _bundle(11211, "memcached", 0.2),
                _bundle(22, "ssh", 0.9),
                _bundle(80, "http", 0.3),
            ),
        ),
        DeviceProfile(
            name="nas_box",
            vendor="StoreSafe",
            device_class="nas",
            os_name="linux-embedded",
            weight=6.0,
            network_concentration=0.45,
            preferred_as_count=6,
            bundles=(
                _bundle(5000, "http", 0.9, variant=2),
                _bundle(5001, "https", 0.75, variant=2),
                _bundle(445, "smb", 0.8),
                _bundle(6690, "http", 0.5, variant=3, as_specific=True),
                _bundle(32400, "http", 0.45, variant=4, as_specific=True),
                _bundle(80, "http", 0.3),
                _bundle(22, "ssh", 0.4),
                _bundle(21, "ftp", 0.45),
                _bundle(873, "rsync", 0.25),
            ),
        ),
        DeviceProfile(
            name="vps_dev_box",
            vendor="CloudNine",
            device_class="server",
            os_name="debian",
            weight=6.0,
            network_concentration=0.6,
            preferred_as_count=4,
            bundles=(
                _bundle(22, "ssh", 0.95),
                _bundle(80, "http", 0.5),
                _bundle(443, "https", 0.45),
                _bundle(8888, "http", 0.4, variant=1),
                _bundle(3000, "http", 0.35, variant=2),
                _bundle(5601, "http", 0.2, variant=3),
                _bundle(3306, "mysql", 0.2),
                _bundle(9200, "elasticsearch", 0.15),
                _bundle(27017, "mongodb", 0.1),
            ),
        ),
        DeviceProfile(
            name="enterprise_vpn",
            vendor="GateKeep",
            device_class="server",
            os_name="freebsd",
            weight=3.0,
            network_concentration=0.65,
            preferred_as_count=4,
            bundles=(
                _bundle(443, "https", 0.9),
                _bundle(1723, "pptp", 0.75),
                _bundle(500, "ike", 0.4),
                _bundle(22, "ssh", 0.3),
            ),
        ),
        DeviceProfile(
            name="ipmi_bmc",
            vendor="ServerWorks",
            device_class="embedded",
            os_name="bmc",
            weight=2.0,
            network_concentration=0.8,
            preferred_as_count=2,
            bundles=(
                _bundle(623, "ipmi", 0.9),
                _bundle(80, "http", 0.7),
                _bundle(443, "https", 0.6),
                _bundle(5900, "vnc", 0.4),
            ),
        ),
        # --- Noise sources -------------------------------------------------------
        DeviceProfile(
            name="random_forwarder",
            vendor="Misc",
            device_class="embedded",
            os_name="linux-embedded",
            weight=4.0,
            network_concentration=0.05,
            preferred_as_count=10,
            bundles=(
                # Everything is port-forwarded to random high ports: hosts of
                # this profile are nearly unpredictable, contributing the
                # residual tail that no scanner configuration can find cheaply.
                _bundle(80, "http", 0.8, random_port=True),
                _bundle(22, "ssh", 0.5, random_port=True),
                _bundle(443, "https", 0.4, random_port=True),
            ),
        ),
        DeviceProfile(
            name="single_service_host",
            vendor="Misc",
            device_class="server",
            os_name="linux",
            weight=5.0,
            network_concentration=0.3,
            preferred_as_count=8,
            bundles=(
                _bundle(80, "http", 0.6),
                _bundle(443, "https", 0.4),
                _bundle(22, "ssh", 0.35),
            ),
        ),
    ]
    return profiles


def profiles_by_name(profiles: Optional[Sequence[DeviceProfile]] = None) -> Dict[str, DeviceProfile]:
    """Index a profile catalogue by name (defaults to the built-in catalogue)."""
    catalogue = list(profiles) if profiles is not None else default_profiles()
    index: Dict[str, DeviceProfile] = {}
    for profile in catalogue:
        if profile.name in index:
            raise ValueError(f"duplicate profile name: {profile.name}")
        index[profile.name] = profile
    return index
