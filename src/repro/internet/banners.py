"""Application-layer banner synthesis.

Table 1 of the paper lists the 25 features GPS extracts; 23 of them are
application-layer values pulled from protocol banners (TLS certificate fields,
HTTP titles and server headers, SSH banners and host keys, ...).  The
:class:`BannerFactory` synthesises those values for services in the synthetic
universe with two properties that matter for reproducing the paper:

1. **Fleet-level values are shared.**  All hosts of a given device profile emit
   the same HTTP ``Server`` header, TLS organisation, telnet banner, etc.  This
   is what makes application-layer features predictive: seeing the banner on
   one port identifies the device family and therefore its other ports.
2. **Host-level values are unique.**  TLS certificate hashes, SSH host keys and
   HTTP body hashes get per-host entropy, mirroring the dimensionality spread
   of Table 1 (certificate hashes have tens of millions of unique values while
   CWMP headers have ten).  Per-host values are *not* useful for generalising
   across hosts, and GPS's probability cut-off is what keeps them from
   polluting the model -- a behaviour the tests exercise explicitly.
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import Dict, List, Mapping, Tuple

from repro.engine.encoding import DictionaryEncoder
from repro.internet.profiles import DeviceProfile

#: Canonical application-layer feature keys (Table 1), keyed the way the
#: feature-extraction code expects them.
APP_FEATURE_KEYS = (
    "protocol",
    "tls_cert_hash",
    "tls_cert_org",
    "tls_cert_subject",
    "http_html_title",
    "http_body_hash",
    "http_server",
    "http_header",
    "ssh_host_key",
    "ssh_banner",
    "vnc_desktop_name",
    "smtp_banner",
    "ftp_banner",
    "imap_banner",
    "pop3_banner",
    "cwmp_header",
    "cwmp_body_hash",
    "telnet_banner",
    "pptp_vendor",
    "mysql_version",
    "memcached_version",
    "mssql_version",
    "ipmi_banner",
)


def _digest(*parts: object) -> str:
    """Stable short hex digest of the given parts (used for hashes/keys)."""
    joined = "|".join(str(p) for p in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class BannerFactory:
    """Builds application-layer feature dictionaries for synthetic services.

    The factory is stateless: feature values are pure functions of the device
    profile, protocol, banner variant and (for host-unique values) the host
    address, so regenerating a universe from the same seed yields identical
    banners.
    """

    def __init__(self, unique_body_fraction: float = 0.15) -> None:
        """Create a factory.

        Args:
            unique_body_fraction: fraction of hosts whose HTTP body hash is
                host-unique rather than fleet-shared.  Real fleets mix static
                firmware pages (shared hash) with pages embedding host-specific
                data (unique hash); the mix controls how much of the HTTP body
                feature is usable for prediction.
        """
        if not 0.0 <= unique_body_fraction <= 1.0:
            raise ValueError(
                f"unique_body_fraction out of range: {unique_body_fraction}"
            )
        self.unique_body_fraction = unique_body_fraction

    # -- protocol-specific helpers ------------------------------------------------

    def _http_features(self, profile: DeviceProfile, variant: int, ip: int) -> Dict[str, str]:
        title = f"{profile.vendor} {profile.device_class} v{variant}"
        server = f"{profile.vendor}-httpd/{1 + variant}.{len(profile.name) % 10}"
        header = f"X-Powered-By: {profile.os_name}"
        # A slice of hosts embeds host-specific content in the page body.
        host_bucket = (ip * 2654435761) % 1000 / 1000.0
        if host_bucket < self.unique_body_fraction:
            body_hash = _digest("body", profile.name, variant, ip)
        else:
            body_hash = _digest("body", profile.name, variant)
        return {
            "http_html_title": title,
            "http_body_hash": body_hash,
            "http_server": server,
            "http_header": header,
        }

    def _tls_features(self, profile: DeviceProfile, variant: int, ip: int) -> Dict[str, str]:
        org = f"{profile.vendor} Inc."
        subject = f"CN={profile.name}.device.example"
        cert_hash = _digest("cert", profile.name, variant, ip)
        return {
            "tls_cert_hash": cert_hash,
            "tls_cert_org": org,
            "tls_cert_subject": subject,
        }

    def _ssh_features(self, profile: DeviceProfile, variant: int, ip: int) -> Dict[str, str]:
        banner = f"SSH-2.0-{profile.vendor}_{profile.os_name}_{variant}"
        host_key = _digest("sshkey", profile.name, ip)
        return {"ssh_banner": banner, "ssh_host_key": host_key}

    # -- public API ----------------------------------------------------------------

    def features_for(
        self,
        profile: DeviceProfile,
        protocol: str,
        variant: int,
        ip: int,
    ) -> Dict[str, str]:
        """Return the application-layer feature values for one service.

        Only the keys relevant to ``protocol`` are present (plus ``protocol``
        itself, which LZR fingerprinting always yields); GPS's feature
        extraction treats missing keys as "feature not available".
        """
        features: Dict[str, str] = {"protocol": protocol}

        if protocol in ("http", "http-proxy", "elasticsearch"):
            features.update(self._http_features(profile, variant, ip))
        elif protocol == "https":
            features.update(self._tls_features(profile, variant, ip))
            features.update(self._http_features(profile, variant, ip))
        elif protocol in ("smtps", "imaps", "pop3s"):
            features.update(self._tls_features(profile, variant, ip))
            base = protocol[:-1]  # smtps -> smtp, imaps -> imap, pop3s -> pop3
            features[f"{base}_banner"] = (
                f"220 {profile.vendor} {base.upper()} service ready ({profile.os_name})"
            )
        elif protocol == "ssh":
            features.update(self._ssh_features(profile, variant, ip))
        elif protocol == "telnet":
            if variant == 0:
                banner = f"{profile.vendor} login:"
            else:
                banner = (
                    "Telnet service is disabled or Your telnet session has "
                    f"expired due to inactivity ({profile.vendor})"
                )
            features["telnet_banner"] = banner
        elif protocol == "cwmp":
            features["cwmp_header"] = f"Server: {profile.vendor}-cwmp"
            features["cwmp_body_hash"] = _digest("cwmp", profile.vendor)
        elif protocol == "vnc":
            features["vnc_desktop_name"] = f"{profile.vendor}-{profile.device_class}"
        elif protocol == "ftp":
            features["ftp_banner"] = f"220 {profile.vendor} FTP server ({profile.os_name}) ready"
        elif protocol == "smtp":
            features["smtp_banner"] = f"220 {profile.vendor} ESMTP ({profile.os_name})"
        elif protocol == "submission":
            features["smtp_banner"] = f"220 {profile.vendor} ESMTP submission ({profile.os_name})"
        elif protocol == "imap":
            if profile.name == "shared_hosting_imap_ssh":
                features["imap_banner"] = "* OK IMAP4 ready - STARTTLS required"
            else:
                features["imap_banner"] = f"* OK {profile.vendor} IMAP4 service ready"
        elif protocol == "pop3":
            features["pop3_banner"] = f"+OK {profile.vendor} POP3 service ready"
        elif protocol == "pptp":
            features["pptp_vendor"] = profile.vendor
        elif protocol == "mysql":
            features["mysql_version"] = f"5.7.{20 + variant}-{profile.vendor}"
        elif protocol == "memcached":
            features["memcached_version"] = f"1.6.{variant}"
        elif protocol == "mssql":
            features["mssql_version"] = f"15.0.{2000 + variant}"
        elif protocol == "ipmi":
            features["ipmi_banner"] = f"IPMI-2.0 {profile.vendor} BMC"
        elif protocol == "rtsp":
            features["http_server"] = f"{profile.vendor}-rtsp/{variant + 1}.0"
        elif protocol in ("dns", "sip", "ipp", "jetdirect", "smb", "rsync",
                          "redis", "mongodb", "ike", "postgres"):
            # Protocols for which Table 1 defines no dedicated banner feature:
            # LZR still fingerprints the protocol, which is itself a feature.
            pass
        else:
            # Unknown protocol: keep only the fingerprint.
            pass
        return features

    def pseudo_service_features(self, ip: int, incident_style: bool,
                                port: int = 0) -> Dict[str, str]:
        """Feature values for a *pseudo service* (Appendix B).

        Pseudo services are HTTP(ish) responders that successfully complete a
        handshake but host no real content ("no service exists here" pages,
        block pages, CDN default pages).  Most share identical content across
        all their ports; a long tail embeds a random incident identifier or
        timestamp (modelled by hashing the port into the body), which makes
        them harder to filter by content hash alone.
        """
        if incident_style:
            body_hash = _digest("pseudo-incident", ip, port)
            title = "Request blocked - Incident ID"
        else:
            body_hash = _digest("pseudo-static")
            title = "No service is available on this address"
        return {
            "protocol": "http",
            "http_html_title": title,
            "http_body_hash": body_hash,
            "http_server": "edge-gateway/1.0",
            "http_header": "X-Powered-By: gateway",
        }


class BannerInterner:
    """Interns banner feature dictionaries as dense integer ids.

    The columnar scan path (:class:`repro.scanner.records.ObservationBatch`)
    ships one small int per hit instead of copying the hit's banner dict; the
    interner is the id space those ints live in.  Two layers of lookup keep
    the per-hit cost O(1):

    * an **identity cache**: a dict object that was interned before maps to
      its id without being re-canonicalized.  Ground-truth
      :class:`~repro.internet.universe.ServiceRecord` dicts live for the
      lifetime of the universe and are pre-interned when its indices are
      built, so a scan hit resolves its banner id with a single int-keyed
      dict lookup.  The interner pins a reference to every identity-cached
      mapping, so ``id()`` keys can never be recycled to a different dict.
    * a **value table** built on :class:`~repro.engine.encoding.DictionaryEncoder`:
      dicts with equal content (canonicalized as sorted item tuples) share
      one id, whichever object carried them.  Transient dicts -- pseudo-service
      pages generated during a scan -- dedupe through this layer; the static
      "no service here" page collapses to a single id across every pseudo
      host and port.

    ``features(banner_id)`` returns a read-only :class:`types.MappingProxyType`
    view of the first mapping interned under the id (created once per id, so
    materializing observation rows allocates nothing per row).  The proxy may
    alias ground-truth state; read-only access is exactly the contract
    :class:`~repro.scanner.records.ScanObservation` already documents for
    ``app_features``.
    """

    def __init__(self) -> None:
        self._encoder = DictionaryEncoder()
        self._by_identity: Dict[int, Tuple[Mapping[str, str], int]] = {}
        self._views: List[Mapping[str, str]] = []

    def __len__(self) -> int:
        return len(self._views)

    def intern(self, features: Mapping[str, str]) -> int:
        """Return the id for ``features``, interning it if unseen.

        The mapping is identity-cached (a reference is pinned), so repeated
        calls with the same object are a single dict lookup.
        """
        cached = self._by_identity.get(id(features))
        if cached is not None and cached[0] is features:
            return cached[1]
        banner_id = self.intern_value(features)
        self._by_identity[id(features)] = (features, banner_id)
        return banner_id

    def intern_value(self, features: Mapping[str, str]) -> int:
        """Return the id for ``features`` by content, without identity caching.

        Meant for transient dicts (generated pseudo-service pages): equal
        content maps to one id and the interner keeps only the first carrier.
        """
        key = tuple(sorted(features.items()))
        before = len(self._encoder)
        banner_id = self._encoder.encode(key)
        if banner_id == before:
            self._views.append(MappingProxyType(dict(features)))
        return banner_id

    def features(self, banner_id: int) -> Mapping[str, str]:
        """The read-only banner mapping interned under ``banner_id``.

        Negative ids are rejected outright: they address batch-local banners
        (:meth:`repro.scanner.records.ObservationBatch.banner_features`),
        and letting them fall through to Python's negative list indexing
        would silently return an unrelated interned banner.
        """
        if banner_id < 0:
            raise KeyError(f"unknown banner id: {banner_id}")
        try:
            return self._views[banner_id]
        except IndexError:
            raise KeyError(f"unknown banner id: {banner_id}") from None
