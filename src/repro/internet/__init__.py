"""Synthetic IPv4 Internet substrate.

The paper evaluates GPS against two ground-truth datasets derived from real
Internet-wide scans (the Censys Universal dataset and a month-long 1 % LZR
scan).  Neither is available offline, so the reproduction generates a
*synthetic Internet*: a ground-truth universe of hosts and services whose
statistical structure mirrors the predictive patterns the paper identifies in
Section 4:

* **Transport layer** -- ports co-occur on hosts, because devices ship with
  manufacturer-determined port bundles;
* **Application layer** -- banners, TLS certificates, HTTP titles etc. identify
  the manufacturer/OS/purpose of a host and therefore its other open ports;
* **Network layer** -- hosts of the same kind cluster in subnets and ASes;
* **Noise** -- pseudo-services, middleboxes, port-forwarding to random ports,
  and churn, all of which limit predictability (paper Section 7).

The rest of the code base (scanners, GPS, baselines, metrics) interacts with
the universe only through the scanner interface, so the code paths exercised
are the same ones a real deployment would use.
"""

from repro.internet.profiles import DeviceProfile, PortBundle, default_profiles
from repro.internet.banners import BannerFactory
from repro.internet.topology import AutonomousSystem, Topology, TopologyConfig
from repro.internet.universe import (
    Host,
    ServiceRecord,
    Universe,
    UniverseConfig,
    generate_universe,
)
from repro.internet.churn import ChurnConfig, apply_churn

__all__ = [
    "DeviceProfile",
    "PortBundle",
    "default_profiles",
    "BannerFactory",
    "AutonomousSystem",
    "Topology",
    "TopologyConfig",
    "Host",
    "ServiceRecord",
    "Universe",
    "UniverseConfig",
    "generate_universe",
    "ChurnConfig",
    "apply_churn",
]
