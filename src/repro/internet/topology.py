"""Synthetic Internet topology: autonomous systems and prefix allocation.

The network-layer features GPS uses (Table 1) are an address's /16 subnetwork
and its ASN.  For those features to be predictive in the synthetic universe,
device populations must cluster in networks the way they do on the real
Internet: residential ISPs full of one vendor's CPE, hosting providers full of
web servers, enterprises with a grab-bag of equipment.

The topology generator allocates each autonomous system one or more /16
prefixes from a private-style address pool and records the allocation in an
:class:`~repro.net.asn.AsnDatabase` so that GPS's ASN feature extraction can
perform the same "join against an ASN database" the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.asn import AsnDatabase, AsnRecord
from repro.net.ipv4 import prefix_size

#: Coarse AS categories; the universe generator prefers to place device
#: profiles in compatible categories (routers/IoT in access networks, servers
#: in hosting networks) which is what creates the network-layer correlations.
AS_CATEGORIES = ("residential", "hosting", "enterprise", "mobile", "academic")

_AS_NAME_POOL = {
    "residential": ["Distributel Network", "Free SAS", "HomeNet ISP", "FiberLink",
                    "CoastalCable", "PrairieDSL", "MetroFiber", "SunsetBroadband"],
    "hosting": ["Bizland Hosting", "StackHost Cloud", "CloudNine VPS", "RackForest",
                "NordicServers", "AtlasCompute"],
    "enterprise": ["GlobalCorp WAN", "Meridian Enterprises", "Northwind Group",
                   "Acme Industrial"],
    "mobile": ["SkyMobile", "TerraCell"],
    "academic": ["State University NOC", "Research Backbone"],
}


@dataclass(frozen=True)
class AutonomousSystem:
    """One synthetic autonomous system.

    Attributes:
        asn: the autonomous system number.
        name: organisation name (drawn from a fixed pool per category).
        category: coarse AS type, used when matching device profiles to ASes.
        prefixes: list of ``(base_address, prefix_len)`` announcements.
    """

    asn: int
    name: str
    category: str
    prefixes: Tuple[Tuple[int, int], ...]

    def address_capacity(self) -> int:
        """Total number of addresses announced by this AS."""
        return sum(prefix_size(length) for _, length in self.prefixes)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters controlling topology generation.

    Attributes:
        as_count: number of autonomous systems to create.
        prefixes_per_as: how many /``prefix_len`` blocks each AS announces.
        prefix_len: prefix length of each announced block (default /16 so the
            /16-subnet feature and the ASN feature are aligned but distinct —
            multi-prefix ASes make the ASN feature strictly coarser).
        base_octet: first octet of the synthetic address pool.  Allocation is
            sequential from ``base_octet.0.0.0`` which keeps the universe
            compact and collision-free.
        category_weights: relative frequency of each AS category.
    """

    as_count: int = 24
    prefixes_per_as: int = 2
    prefix_len: int = 16
    base_octet: int = 10
    category_weights: Tuple[Tuple[str, float], ...] = (
        ("residential", 0.40),
        ("hosting", 0.25),
        ("enterprise", 0.20),
        ("mobile", 0.10),
        ("academic", 0.05),
    )

    def __post_init__(self) -> None:
        if self.as_count < 1:
            raise ValueError("as_count must be >= 1")
        if self.prefixes_per_as < 1:
            raise ValueError("prefixes_per_as must be >= 1")
        if not 8 <= self.prefix_len <= 24:
            raise ValueError("prefix_len must be between /8 and /24")
        if not 1 <= self.base_octet <= 223:
            raise ValueError("base_octet must form a valid unicast address")
        for category, weight in self.category_weights:
            if category not in AS_CATEGORIES:
                raise ValueError(f"unknown AS category: {category}")
            if weight < 0:
                raise ValueError(f"negative weight for category {category}")


class Topology:
    """The generated set of autonomous systems plus lookup structures."""

    def __init__(self, systems: Sequence[AutonomousSystem]) -> None:
        self.systems: List[AutonomousSystem] = list(systems)
        self.asn_db = AsnDatabase()
        for system in self.systems:
            for base, length in system.prefixes:
                self.asn_db.add(AsnRecord(base=base, prefix_len=length,
                                          asn=system.asn, name=system.name))
        self._by_asn: Dict[int, AutonomousSystem] = {s.asn: s for s in self.systems}
        if len(self._by_asn) != len(self.systems):
            raise ValueError("duplicate ASN in topology")

    def by_category(self, category: str) -> List[AutonomousSystem]:
        """All ASes of a given category."""
        return [s for s in self.systems if s.category == category]

    def get(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number."""
        return self._by_asn[asn]

    def random_address(self, asn: int, rng: random.Random) -> int:
        """Draw a uniformly random address announced by ``asn``."""
        system = self._by_asn[asn]
        base, length = rng.choice(system.prefixes)
        return base + rng.randrange(prefix_size(length))

    def total_address_capacity(self) -> int:
        """Total announced address space across all ASes."""
        return sum(s.address_capacity() for s in self.systems)

    def __len__(self) -> int:
        return len(self.systems)


def generate_topology(config: TopologyConfig, rng: random.Random) -> Topology:
    """Generate a topology according to ``config``.

    /``prefix_len`` blocks are carved sequentially out of the pool starting at
    ``base_octet.0.0.0``; categories are assigned by weighted sampling and
    names by cycling through a per-category name pool.
    """
    categories = [c for c, _ in config.category_weights]
    weights = [w for _, w in config.category_weights]
    name_cursor: Dict[str, int] = {c: 0 for c in AS_CATEGORIES}

    systems: List[AutonomousSystem] = []
    block = 0
    block_size = prefix_size(config.prefix_len)
    pool_base = config.base_octet << 24
    for index in range(config.as_count):
        category = rng.choices(categories, weights=weights, k=1)[0]
        pool = _AS_NAME_POOL[category]
        name = pool[name_cursor[category] % len(pool)]
        if name_cursor[category] >= len(pool):
            name = f"{name} #{name_cursor[category] // len(pool) + 1}"
        name_cursor[category] += 1

        prefixes: List[Tuple[int, int]] = []
        for _ in range(config.prefixes_per_as):
            prefixes.append((pool_base + block * block_size, config.prefix_len))
            block += 1
        systems.append(AutonomousSystem(
            asn=64512 + index,
            name=name,
            category=category,
            prefixes=tuple(prefixes),
        ))
    return Topology(systems)
