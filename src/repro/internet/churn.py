"""Service churn: how the universe changes between two scans.

Section 3 of the paper motivates GPS's wall-clock constraint with a churn
measurement: two scans of the same 0.1 % of the address space ten days apart
disagree on 15 % of normalized services and 9 % of all services.  The churn
model here produces a "later" universe from an existing one by

* dropping a fraction of services (hosts going offline, firewalls closing
  ports),
* re-addressing a fraction of hosts inside their AS (DHCP churn), and
* spawning a small number of brand-new hosts.

The churn benchmark (``benchmarks/bench_sec3_churn.py``) replays the paper's
measurement against the synthetic universe: scan a fixed sample, apply churn,
re-scan, and report how many services disappeared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict

from repro.internet.universe import Host, ServiceRecord, Universe, UniverseConfig, generate_universe


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the churn model.

    Attributes:
        service_loss_rate: fraction of real services that disappear.
        host_readdress_rate: fraction of hosts that move to a new address
            inside the same AS (their services move with them).
        new_host_rate: new hosts created, as a fraction of the current host
            count (drawn from the same profile mix as the original universe).
        days: nominal number of days the churn spans; loss and re-addressing
            rates are interpreted as totals over this period, not per-day.
        seed: RNG seed for the churn draw.
    """

    service_loss_rate: float = 0.09
    host_readdress_rate: float = 0.05
    new_host_rate: float = 0.03
    days: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        for name in ("service_loss_rate", "host_readdress_rate", "new_host_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        if self.days < 1:
            raise ValueError("days must be >= 1")


def apply_churn(universe: Universe, config: ChurnConfig) -> Universe:
    """Produce a churned copy of ``universe`` (the original is untouched)."""
    rng = random.Random(config.seed)
    topology = universe.topology
    new_hosts: Dict[int, Host] = {}

    for ip, host in universe.hosts.items():
        # 1. Drop services.
        surviving: Dict[int, ServiceRecord] = {}
        for port, record in host.services.items():
            if rng.random() >= config.service_loss_rate:
                surviving[port] = record
        if not surviving and not host.is_pseudo_host() and not host.is_middlebox:
            # Host went completely offline.
            continue

        # 2. Possibly re-address the host within its AS.
        new_ip = ip
        if rng.random() < config.host_readdress_rate:
            for _ in range(32):
                candidate = topology.random_address(host.asn, rng)
                if candidate not in universe.hosts and candidate not in new_hosts:
                    new_ip = candidate
                    break
        moved_services = {
            port: replace(record, ip=new_ip) for port, record in surviving.items()
        }
        new_hosts[new_ip] = Host(
            ip=new_ip,
            asn=host.asn,
            profile_name=host.profile_name,
            services=moved_services,
            base_ttl=host.base_ttl,
            pseudo_port_range=host.pseudo_port_range,
            pseudo_incident_style=host.pseudo_incident_style,
            is_middlebox=host.is_middlebox,
        )

    # 3. Spawn new hosts using a small auxiliary universe with a derived seed.
    new_count = int(round(len(universe.hosts) * config.new_host_rate))
    if new_count > 0:
        aux_config = UniverseConfig(
            host_count=new_count,
            seed=config.seed + 104729,
            topology=universe.config.topology,
            profiles=universe.config.profiles,
            pseudo_host_fraction=0.0,
            middlebox_fraction=0.0,
            subnet_cluster_len=universe.config.subnet_cluster_len,
        )
        aux = generate_universe(aux_config)
        for ip, host in aux.hosts.items():
            if ip not in new_hosts and ip not in universe.hosts:
                new_hosts[ip] = host

    return Universe(hosts=new_hosts, topology=topology, config=universe.config)


def churn_summary(before: Universe, after: Universe) -> Dict[str, float]:
    """Compare two universes the way the paper's Section 3 measurement does.

    Returns the fraction of (ip, port) services from ``before`` that no longer
    respond in ``after`` (overall and normalized per port).
    """
    before_pairs = set(before.real_service_pairs())
    after_pairs = set(after.real_service_pairs())
    if not before_pairs:
        return {"service_loss": 0.0, "normalized_service_loss": 0.0}

    lost = before_pairs - after_pairs
    service_loss = len(lost) / len(before_pairs)

    per_port_before: Dict[int, int] = {}
    per_port_lost: Dict[int, int] = {}
    for ip, port in before_pairs:
        per_port_before[port] = per_port_before.get(port, 0) + 1
    for ip, port in lost:
        per_port_lost[port] = per_port_lost.get(port, 0) + 1
    normalized = sum(
        per_port_lost.get(port, 0) / count for port, count in per_port_before.items()
    ) / len(per_port_before)
    return {"service_loss": service_loss, "normalized_service_loss": normalized}
