"""Unified telemetry: metrics registry, span tracer, and the event bus.

(Named ``telemetry`` rather than ``metrics`` to avoid colliding with
``repro.core.metrics``, which holds the *paper's* coverage/precision
metrics -- those measure GPS, this package measures the software running
it.)

The :class:`Telemetry` facade bundles the two instrument surfaces every
instrumented layer needs -- a :class:`~repro.telemetry.registry.MetricsRegistry`
for counters/gauges/histograms and a :class:`~repro.telemetry.tracing.Tracer`
for phase span trees -- behind one enabled/disabled switch and one sampling
knob.  Components take an optional ``telemetry`` argument and default to
:data:`NULL_TELEMETRY`, whose instruments are all shared no-ops, so the
disabled path costs an attribute read and a no-op method call at most.

``sample_every`` thins *per-task* histogram observations (the engine's
per-task execute/queue timings, serving's per-request latencies): a value
of N records every Nth observation.  Counters, gauges and spans are never
sampled -- totals must stay exact.

Everything in this package is standard-library only, so any layer
(including ``engine.runtime``, which must stay import-light for spawned
workers) can import it without cycles.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.telemetry.events import EventBus
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer, trace_span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "Span",
    "Telemetry",
    "Tracer",
    "trace_span",
]


class Telemetry:
    """One run's (or one service's) metrics + tracer behind a single switch.

    Attributes:
        enabled: False makes every instrument a shared no-op.
        sample_every: record every Nth per-observation histogram sample
            (see :meth:`sampled`); 1 records everything.
        metrics: the registry; ``counter``/``gauge``/``histogram`` delegate.
        tracer: the span tracer; :meth:`span` delegates.
    """

    def __init__(self, enabled: bool = True, sample_every: int = 1,
                 max_spans: int = 100_000) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.sample_every = sample_every
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled, max_spans=max_spans)
        self._sample_tick = itertools.count()

    # -- instrument delegates ------------------------------------------------------

    def counter(self, name: str, help_text: str = "", **labels: str):
        return self.metrics.counter(name, help_text, **labels)

    def gauge(self, name: str, help_text: str = "", **labels: str):
        return self.metrics.gauge(name, help_text, **labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets=DEFAULT_LATENCY_BUCKETS, **labels: str):
        return self.metrics.histogram(name, help_text, buckets=buckets,
                                      **labels)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def sampled(self) -> bool:
        """True when a per-observation histogram sample should be recorded.

        A shared modulo counter: with ``sample_every == 1`` (the default)
        this is always true; larger values record every Nth call site hit
        across the whole Telemetry instance.  Disabled telemetry always
        answers False so callers can skip computing the observation.
        """
        if not self.enabled:
            return False
        if self.sample_every == 1:
            return True
        return next(self._sample_tick) % self.sample_every == 0

    # -- export --------------------------------------------------------------------

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()

    def write_trace(self, path: str) -> None:
        self.tracer.write_json(path)


#: Shared disabled instance -- the default for every instrumented component.
NULL_TELEMETRY = Telemetry(enabled=False)


def telemetry_or_null(telemetry: Optional[Telemetry]) -> Telemetry:
    """Normalise an optional telemetry argument to a usable instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
