"""Dependency-free metrics registry: counters, gauges, latency histograms.

The registry is the pull side of the telemetry subsystem: instrumented code
creates named instruments once (get-or-create, so hot paths can resolve a
labeled child per call without bookkeeping) and increments them; an exporter
renders the whole registry in one pass -- either the Prometheus text
exposition format (``GET /metrics`` in the serving layer) or a plain dict
for tests and reports.

Design constraints, in order:

* **near-zero cost when disabled** -- a registry constructed with
  ``enabled=False`` hands out shared null instruments whose mutators are
  single-``pass`` methods; instrumented code never branches on a flag
  beyond what it already does to avoid computing label values;
* **thread-safe** -- one registry-wide lock guards creation *and* updates.
  Every instrumented path in this codebase (serving worker threads, the
  engine coordinator, scan sweeps) mutates coarse-grained counters at rates
  where a contended ``dict``/``float`` update under one lock is noise; the
  simplicity buys exact totals under concurrency, which the tests assert;
* **fixed buckets** -- histograms are classic cumulative-bucket Prometheus
  histograms with bounds fixed at creation; ``le`` means "less than or
  equal", and one ``+Inf`` bucket is implicit.

Nothing here imports anything outside the standard library.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

#: Default histogram bounds, in seconds: 100 microseconds to 10 seconds,
#: roughly logarithmic.  Wide enough for both a micro-batched index read and
#: a full model build; callers with tighter distributions pass their own.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    """``{a="x",b="y"}`` (empty string for no labels); ``le`` renders last."""
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + rendered + "}"


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


class Counter:
    """Monotonically increasing count (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (resident bytes, pending requests)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` *exclusively of
    earlier buckets* internally; rendering accumulates them, so the exposed
    ``le`` series is cumulative exactly like a Prometheus client's.
    """

    __slots__ = ("_lock", "bounds", "_bucket_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = lock
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``[(le, cumulative count), ...]`` ending with ``("+Inf", count)``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self._bucket_counts):
            running += bucket
            out.append((_format_value(bound), running))
        out.append(("+Inf", running + self._bucket_counts[-1]))
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class _Family:
    """One metric name: its kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Thread-safe name -> instrument table with Prometheus rendering.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: the first call
    under a name fixes its kind, help text and (for histograms) bucket
    bounds; later calls with the same name and labels return the same
    instrument, so instrumented code can resolve handles per call.  A name
    reused with a different kind raises -- that is a bug, not a preference.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- instrument creation -------------------------------------------------------

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._child(name, "counter", help_text, None, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", help_text, None, labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        return self._child(name, "histogram", help_text,
                           tuple(float(b) for b in buckets), labels)

    def _child(self, name: str, kind: str, help_text: str,
               buckets: Optional[Tuple[float, ...]],
               labels: Dict[str, str]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        label_key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_text,
                                                        buckets)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}")
            child = family.children.get(label_key)
            if child is None:
                if kind == "counter":
                    child = Counter(self._lock)
                elif kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(
                        self._lock,
                        buckets if buckets is not None
                        else DEFAULT_LATENCY_BUCKETS)
                family.children[label_key] = child
            return child

    # -- export --------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format (0.0.4).

        Families render sorted by name and children sorted by label set, so
        the output is deterministic -- the golden test pins it.  An empty
        (or disabled) registry renders the empty string, which is a valid
        exposition document.
        """
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            for family in families:
                if not family.children:
                    continue
                if family.help:
                    lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                for label_key in sorted(family.children):
                    child = family.children[label_key]
                    if family.kind == "histogram":
                        assert isinstance(child, Histogram)
                        for le, cumulative in child.cumulative_buckets():
                            lines.append(
                                f"{family.name}_bucket"
                                f"{_format_labels(label_key, ('le', le))} "
                                f"{cumulative}")
                        lines.append(
                            f"{family.name}_sum{_format_labels(label_key)} "
                            f"{_format_value(child.sum)}")
                        lines.append(
                            f"{family.name}_count{_format_labels(label_key)} "
                            f"{child.count}")
                    else:
                        value = child.value  # type: ignore[union-attr]
                        lines.append(
                            f"{family.name}{_format_labels(label_key)} "
                            f"{_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot (tests, reports); one entry per family."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                samples = []
                for label_key in sorted(family.children):
                    child = family.children[label_key]
                    if family.kind == "histogram":
                        assert isinstance(child, Histogram)
                        samples.append({
                            "labels": dict(label_key),
                            "buckets": dict(child.cumulative_buckets()),
                            "sum": child.sum,
                            "count": child.count,
                        })
                    else:
                        samples.append({
                            "labels": dict(label_key),
                            "value": child.value,  # type: ignore[union-attr]
                        })
                out[name] = {"type": family.kind, "help": family.help,
                             "samples": samples}
        return out


#: Shared disabled registry: every instrument it hands out is a no-op.
NULL_REGISTRY = MetricsRegistry(enabled=False)
