"""A minimal synchronous event bus: publish structured events to sinks.

The engine runtime already produces a structured event stream
(:class:`~repro.engine.runtime.RuntimeEvent`); before telemetry existed its
only consumer was a bespoke ``logging`` path.  The bus generalises that:
producers ``publish`` events, and any number of sinks (a logger forwarder,
the CLI's ``--verbose-runtime`` printer, a test capture list) ``subscribe``
plain callables.

Publishing with zero subscribers costs one attribute read and one tuple
truth test -- cheap enough to sit on the worker-supervision path
unconditionally.  Subscriber exceptions are swallowed: a broken sink must
never take down the runtime it is observing.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Tuple

__all__ = ["EventBus"]

Sink = Callable[[Any], None]


class EventBus:
    """Thread-safe fan-out of events to subscribed callables."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: Tuple[Sink, ...] = ()

    def subscribe(self, sink: Sink) -> Sink:
        """Add a sink; returns it so callers can keep a handle to unsubscribe."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks = self._sinks + (sink,)
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        """Remove a sink; unknown sinks are ignored.

        Matches by equality (like :meth:`subscribe`'s dedup) so a bound
        method re-derived from the same object still unsubscribes.
        """
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s != sink)

    def publish(self, event: Any) -> None:
        """Deliver one event to every current sink, in subscription order."""
        sinks = self._sinks
        if not sinks:
            return
        for sink in sinks:
            try:
                sink(event)
            except Exception:
                pass

    def __len__(self) -> int:
        return len(self._sinks)
