"""Span-based tracer: a parent/child tree of monotonic phase timings.

Where the registry answers "how many / how fast on average", the tracer
answers "what did this *particular* run spend its time on": every
instrumented phase opens a span, spans opened while another is active nest
under it, and the finished tree exports as JSON (``--trace-out``) or as a
flat depth-annotated event log.

Timing uses ``time.perf_counter`` throughout -- monotonic, unaffected by
wall-clock adjustments -- with span starts recorded relative to the
tracer's own epoch so exported offsets are small, stable numbers.

Thread model: each thread keeps its own open-span stack (``threading.local``),
so worker threads trace independently without cross-talk; completed root
spans append to one shared list under a lock.  A disabled tracer (and any
span opened past ``max_spans``) hands back the shared :data:`NULL_SPAN`,
whose enter/exit/set are no-ops.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["NULL_SPAN", "Span", "Tracer", "trace_span"]

TRACE_FORMAT_VERSION = 1


class Span:
    """One timed phase: name, attributes, children, and its place in time.

    A span is its own context manager::

        with tracer.span("model.build", hosts=123) as span:
            ...
            span.set("patterns", len(model.cooccurrence))

    ``start_s`` is seconds since the owning tracer's epoch; ``duration_s``
    is filled in on exit.  Attributes are plain JSON-able values.
    """

    __slots__ = ("name", "attrs", "start_s", "duration_s", "children",
                 "_tracer", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any],
                 tracer: Optional["Tracer"], start_s: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.duration_s: Optional[float] = None
        self.children: List[Span] = []
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-phase (counts, sizes)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], dict(data.get("attrs", {})), None,
                   data.get("start_s", 0.0))
        span.duration_s = data.get("duration_s")
        span.children = [cls.from_dict(child)
                         for child in data.get("children", ())]
        return span


class _NullSpan:
    """Shared span stand-in: enter/exit/set do nothing, nest nowhere."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    duration_s = None
    start_s = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees; one instance per run / per service.

    ``max_spans`` bounds memory on pathological span rates: once the budget
    is spent new spans become :data:`NULL_SPAN` and ``dropped`` counts them.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 100_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._span_count = 0

    def span(self, name: str, **attrs: Any):
        """Open a span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            if self._span_count >= self.max_spans:
                self.dropped += 1
                return NULL_SPAN
            self._span_count += 1
        return Span(name, dict(attrs), self,
                    time.perf_counter() - self._epoch)

    # -- stack plumbing (called by Span.__enter__/__exit__) -------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(span)

    # -- export --------------------------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        """Completed root spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def span_count(self) -> int:
        return self._span_count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "dropped": self.dropped,
            "spans": [root.to_dict() for root in self.roots],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def flat_events(self) -> List[Dict[str, Any]]:
        """The tree as a flat DFS event log: one dict per span with depth."""
        events: List[Dict[str, Any]] = []

        def walk(span: Span, depth: int) -> None:
            events.append({
                "name": span.name,
                "depth": depth,
                "start_s": span.start_s,
                "duration_s": span.duration_s,
                "attrs": dict(span.attrs),
            })
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return events

    @staticmethod
    def spans_from_dict(data: Dict[str, Any]) -> List[Span]:
        """Rebuild the span tree from an exported document."""
        return [Span.from_dict(entry) for entry in data.get("spans", ())]

    @classmethod
    def spans_from_json(cls, text: str) -> List[Span]:
        return cls.spans_from_dict(json.loads(text))


def trace_span(tracer: Optional[Tracer], name: str, **attrs: Any):
    """Open a span on ``tracer``; a no-op span when tracer is None/disabled.

    The standard call form for code that takes an optional tracer::

        with trace_span(self.tracer, "priors.build", entries=n):
            ...
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def iter_spans(spans: List[Span]) -> Iterator[Span]:
    """DFS over a span forest (roots first, then children)."""
    stack = list(reversed(spans))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))
