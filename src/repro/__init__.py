"""GPS: Predicting IPv4 Services Across All Ports (SIGCOMM 2022) -- reproduction.

This package reproduces the GPS system and its evaluation against a synthetic
IPv4 universe.  The usual workflow is:

>>> from repro.internet import UniverseConfig, generate_universe
>>> from repro.scanner import ScanPipeline
>>> from repro.core import GPS, GPSConfig
>>> universe = generate_universe(UniverseConfig(host_count=500, seed=3))
>>> pipeline = ScanPipeline(universe)
>>> gps = GPS(pipeline, GPSConfig(seed_fraction=0.02, step_size=16))
>>> run = gps.run()  # doctest: +SKIP

Sub-packages:

* :mod:`repro.core` -- the GPS system (the paper's contribution);
* :mod:`repro.internet` -- the synthetic Internet substrate;
* :mod:`repro.scanner` -- the simulated ZMap/LZR/ZGrab scan pipeline;
* :mod:`repro.engine` -- the parallel computation engine (BigQuery substitute);
* :mod:`repro.datasets` -- ground-truth datasets and seed/test splits;
* :mod:`repro.baselines` -- exhaustive scanning, the XGBoost-style scanner,
  target generation algorithms and the recommender baseline;
* :mod:`repro.analysis` -- the evaluation harness behind every table/figure.
"""

from repro.core import GPS, GPSConfig, FeatureConfig
from repro.internet import Universe, UniverseConfig, generate_universe
from repro.scanner import ScanPipeline

__version__ = "1.0.0"

__all__ = [
    "GPS",
    "GPSConfig",
    "FeatureConfig",
    "Universe",
    "UniverseConfig",
    "generate_universe",
    "ScanPipeline",
    "__version__",
]
