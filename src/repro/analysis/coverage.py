"""Coverage-versus-bandwidth experiments (Figure 2) and parameter sweeps (Figures 5-6).

The experiment shape is always the same: build a ground-truth dataset, split
it into seed and test halves, run GPS from the seed, and compare its
bandwidth-annotated discovery curve against the "exhaustive, optimal order"
and oracle references computed from the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.scenarios import run_gps_on_dataset
from repro.baselines.exhaustive import optimal_port_order_curve, oracle_curve
from repro.core.config import FeatureConfig
from repro.core.gps import GPSRunResult
from repro.core.metrics import (
    CoveragePoint,
    bandwidth_savings,
    bandwidth_to_reach,
    coverage_curve,
)
from repro.datasets.builders import GroundTruthDataset
from repro.internet.universe import Universe


@dataclass
class CoverageExperiment:
    """Result of one Figure 2-style experiment.

    Attributes:
        dataset_name: which ground truth was used.
        seed_fraction: seed size (fraction of the address space).
        step_size: GPS scanning step size (prefix length).
        gps_points: GPS coverage curve.
        optimal_points: "exhaustive, optimal order" reference curve.
        oracle_points: oracle reference curve.
        run: the underlying GPS run (model, plan, predictions, log).
    """

    dataset_name: str
    seed_fraction: float
    step_size: int
    gps_points: List[CoveragePoint]
    optimal_points: List[CoveragePoint]
    oracle_points: List[CoveragePoint]
    run: GPSRunResult

    def final_fraction(self) -> float:
        """Fraction of all ground-truth services GPS eventually finds."""
        return self.gps_points[-1].fraction if self.gps_points else 0.0

    def final_normalized_fraction(self) -> float:
        """Normalized fraction GPS eventually finds."""
        return self.gps_points[-1].normalized_fraction if self.gps_points else 0.0

    def savings_at(self, target_fraction: float, normalized: bool = False) -> Optional[float]:
        """Bandwidth savings versus optimal port-order probing at a coverage level."""
        return bandwidth_savings(self.gps_points, self.optimal_points,
                                 target_fraction, normalized=normalized)

    def gps_bandwidth_at(self, target_fraction: float,
                         normalized: bool = False) -> Optional[float]:
        """GPS bandwidth (100 % scans) to reach a coverage level."""
        return bandwidth_to_reach(self.gps_points, target_fraction, normalized=normalized)


def run_coverage_experiment(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fraction: float,
    step_size: int = 16,
    split_seed: int = 0,
    feature_config: Optional[FeatureConfig] = None,
    max_full_scans: Optional[float] = None,
    seed_cost_mode: str = "scan",
    executor: Optional[str] = None,
    num_workers: int = 0,
    shard_count: int = 0,
    telemetry=None,
    seed_override=None,
) -> CoverageExperiment:
    """Run GPS against a dataset and compute the Figure 2 curves.

    ``executor`` / ``num_workers`` / ``shard_count`` route the run's engine
    builds through a persistent execution runtime (see
    :func:`repro.analysis.scenarios.run_gps_on_dataset`); the curves are
    identical on every backend and shard layout.  ``telemetry`` instruments
    the run (phase spans, scan counters) without changing the curves.
    ``seed_override`` replaces the dataset-split seed with a pre-collected
    seed scan (a reloaded snapshot -- the Section 6.5 reuse mode); coverage
    is still evaluated against the full dataset ground truth.
    """
    run, pipeline, _ = run_gps_on_dataset(
        universe, dataset, seed_fraction, step_size=step_size,
        split_seed=split_seed, feature_config=feature_config,
        max_full_scans=max_full_scans, seed_cost_mode=seed_cost_mode,
        executor=executor, num_workers=num_workers, shard_count=shard_count,
        telemetry=telemetry, seed_override=seed_override,
    )
    ground_truth = dataset.pairs()
    gps_points = coverage_curve(run.log_as_tuples(), ground_truth,
                                dataset.address_space_size)
    return CoverageExperiment(
        dataset_name=dataset.name,
        seed_fraction=seed_fraction,
        step_size=step_size,
        gps_points=gps_points,
        optimal_points=optimal_port_order_curve(dataset),
        oracle_points=oracle_curve(dataset),
        run=run,
    )


def run_step_size_sweep(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fraction: float,
    step_sizes: Sequence[int] = (0, 4, 8, 12, 16, 20),
    split_seed: int = 0,
) -> Dict[int, CoverageExperiment]:
    """Appendix D.1 (Figure 5): how the scanning step size trades bandwidth for recall."""
    results: Dict[int, CoverageExperiment] = {}
    for step_size in step_sizes:
        results[step_size] = run_coverage_experiment(
            universe, dataset, seed_fraction, step_size=step_size,
            split_seed=split_seed,
        )
    return results


def run_seed_size_sweep(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fractions: Sequence[float] = (0.001, 0.005, 0.01, 0.02),
    step_size: int = 16,
    split_seed: int = 0,
) -> Dict[float, CoverageExperiment]:
    """Appendix D.2 (Figure 6): how the seed size changes what GPS can find.

    The seed-collection bandwidth is included in each curve (GPS charges the
    seed scan to its ledger), matching the figure's "including collecting the
    seed" accounting.
    """
    results: Dict[float, CoverageExperiment] = {}
    for seed_fraction in seed_fractions:
        results[seed_fraction] = run_coverage_experiment(
            universe, dataset, seed_fraction, step_size=step_size,
            split_seed=split_seed,
        )
    return results


def coverage_summary_rows(experiment: CoverageExperiment,
                          targets: Sequence[float] = (0.5, 0.8, 0.9, 0.94)) -> List[Tuple[str, str, str]]:
    """Rows of (coverage target, GPS bandwidth, savings vs optimal order).

    Used by the Figure 2 benchmark to print the paper-style "GPS finds X % of
    services using N x less bandwidth" statements.
    """
    rows: List[Tuple[str, str, str]] = []
    for target in targets:
        gps_bandwidth = experiment.gps_bandwidth_at(target)
        savings = experiment.savings_at(target)
        rows.append((
            f"{target:.0%}",
            "n/a" if gps_bandwidth is None else f"{gps_bandwidth:.2f}",
            "n/a" if savings is None else f"{savings:.1f}x",
        ))
    return rows
