"""Limit studies: random host configuration (Section 7) and churn (Section 3).

* :func:`run_ideal_conditions_study` reproduces the Section 7 thought
  experiment: assume nearly all patterns are known (a 95 % seed), assume
  feature correlations are perfect (every service of a host counts as found
  the moment any one of its services is found), and use the largest scanning
  step size (/0, i.e. whole-port sweeps).  The resulting coverage ceiling is
  what any intelligent scanner -- GPS included -- could at best achieve, and
  the gap to 100 % is attributable to hosts with random configurations.
* :func:`run_churn_measurement` reproduces the Section 3 motivation: scan a
  sample, wait (apply the churn model), re-scan, and report how many services
  disappeared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.metrics import CoveragePoint
from repro.datasets.builders import GroundTruthDataset
from repro.datasets.split import split_seed_test
from repro.internet.churn import ChurnConfig, apply_churn, churn_summary
from repro.internet.universe import Universe

Pair = Tuple[int, int]


@dataclass
class IdealConditionsStudy:
    """Result of the Section 7 study.

    Attributes:
        points: normalized-coverage curve under ideal conditions (each point is
            one whole-port sweep).
        exhaustive_full_scans: bandwidth of exhaustively scanning every port of
            the dataset's domain.
        achievable_normalized: the largest normalized coverage reachable with
            less bandwidth than exhaustive scanning.
    """

    points: List[CoveragePoint]
    exhaustive_full_scans: float
    achievable_normalized: float


def run_ideal_conditions_study(dataset: GroundTruthDataset,
                               seed_fraction_of_dataset: float = 0.95,
                               split_seed: int = 0) -> IdealConditionsStudy:
    """Replay the Section 7 ideal-conditions experiment on a dataset.

    The test half (the remaining 5 %) is what must be discovered; ports are
    swept in descending order of how many *test* hosts they would newly reveal,
    and every service of a revealed host counts as discovered immediately
    (the "feature correlations are 100 % available and accurate" assumption).
    """
    if not 0.0 < seed_fraction_of_dataset < 1.0:
        raise ValueError("seed_fraction_of_dataset must be in (0, 1)")
    seed_fraction = seed_fraction_of_dataset * dataset.sample_fraction
    split = split_seed_test(dataset, seed_fraction, seed=split_seed)
    test_pairs = split.test_pairs()
    if not test_pairs:
        return IdealConditionsStudy(points=[], exhaustive_full_scans=0.0,
                                    achievable_normalized=0.0)

    ports_by_host: Dict[int, Set[int]] = {}
    hosts_by_port: Dict[int, Set[int]] = {}
    truth_per_port: Dict[int, int] = {}
    for ip, port in test_pairs:
        ports_by_host.setdefault(ip, set()).add(port)
        hosts_by_port.setdefault(port, set()).add(ip)
        truth_per_port[port] = truth_per_port.get(port, 0) + 1

    space = dataset.address_space_size
    port_domain_size = (len(dataset.port_domain) if dataset.port_domain
                        else len(truth_per_port))
    exhaustive_full_scans = float(port_domain_size)

    covered_hosts: Set[int] = set()
    found_per_port: Dict[int, int] = {}
    normalized_sum = 0.0
    points: List[CoveragePoint] = []
    probes = 0
    found = 0

    remaining_ports = set(hosts_by_port)
    while remaining_ports:
        # Greedy: sweep the port that reveals the most not-yet-covered hosts.
        best_port = max(
            remaining_ports,
            key=lambda port: (len(hosts_by_port[port] - covered_hosts), -port),
        )
        remaining_ports.discard(best_port)
        newly_covered = hosts_by_port[best_port] - covered_hosts
        if not newly_covered and points:
            # Every remaining port only re-reveals known hosts; under the
            # ideal-correlation assumption there is nothing left to gain.
            break
        probes += space  # a /0 step: one full scan of this port
        for ip in newly_covered:
            covered_hosts.add(ip)
            for port in ports_by_host[ip]:
                found += 1
                found_per_port[port] = found_per_port.get(port, 0) + 1
                normalized_sum += 1.0 / truth_per_port[port]
        points.append(CoveragePoint(
            full_scans=probes / space,
            probes=probes,
            found=found,
            fraction=found / len(test_pairs),
            normalized_fraction=normalized_sum / len(truth_per_port),
            precision=found / probes if probes else 0.0,
        ))

    achievable = 0.0
    for point in points:
        if point.full_scans < exhaustive_full_scans:
            achievable = max(achievable, min(1.0, point.normalized_fraction))
    return IdealConditionsStudy(points=points,
                                exhaustive_full_scans=exhaustive_full_scans,
                                achievable_normalized=achievable)


@dataclass
class ChurnMeasurement:
    """Result of the Section 3 churn measurement."""

    days: int
    service_loss: float
    normalized_service_loss: float


def run_churn_measurement(universe: Universe,
                          churn: ChurnConfig | None = None) -> ChurnMeasurement:
    """Apply the churn model and measure how many services disappeared."""
    churn = churn or ChurnConfig()
    later = apply_churn(universe, churn)
    summary = churn_summary(universe, later)
    return ChurnMeasurement(
        days=churn.days,
        service_loss=summary["service_loss"],
        normalized_service_loss=summary["normalized_service_loss"],
    )
