"""Plain-text rendering of tables and curves.

Benchmarks print their results through these helpers so that running
``pytest benchmarks/ --benchmark-only`` leaves a readable record of every
reproduced table and figure alongside the timing numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.metrics import CoveragePoint


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_curve(points: Sequence[CoveragePoint], label: str = "",
                 max_rows: int = 12, normalized: bool = False) -> str:
    """Render a coverage curve as a compact table of sampled points."""
    if not points:
        return f"{label}: (empty curve)"
    if len(points) <= max_rows:
        sampled = list(points)
    else:
        step = (len(points) - 1) / (max_rows - 1)
        indices = sorted({int(round(i * step)) for i in range(max_rows)})
        sampled = [points[i] for i in indices]
    headers = ["bandwidth (100% scans)",
               "normalized fraction" if normalized else "fraction",
               "precision"]
    rows = [
        (f"{p.full_scans:.3f}",
         f"{(p.normalized_fraction if normalized else p.fraction):.4f}",
         f"{p.precision:.5f}")
        for p in sampled
    ]
    return format_table(headers, rows, title=label)


def format_ratio(value: float | None, digits: int = 1) -> str:
    """Render a bandwidth-savings ratio ("7.6x", or "n/a" when undefined)."""
    if value is None:
        return "n/a"
    return f"{value:.{digits}f}x"
