"""Performance breakdown (Table 2) and compute-scaling measurements.

Table 2 decomposes a full GPS run into scanning, computation and data-transfer
phases and reports bandwidth, computation time (single core), wall-clock time
and data volume for each.  The reproduction measures what it can measure
directly (model-building and prediction computation, single core versus the
parallel engine) and models what depends on infrastructure that does not exist
offline (line-rate scan time, upload/download time at a given link speed),
using the same cost model as the paper: probes x packet size / line rate and
bytes / transfer rate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import FeatureConfig
from repro.core.features import extract_host_features, extract_host_features_columns
from repro.core.gps import GPS
from repro.core.model import build_model, build_model_with_engine
from repro.core.predictions import (
    PredictiveFeatureIndex,
    build_prediction_index_with_engine,
)
from repro.core.priors import build_priors_plan, build_priors_plan_with_engine
from repro.datasets.builders import GroundTruthDataset
from repro.datasets.io import observation_to_dict
from repro.datasets.split import seed_scan_cost_probes, split_seed_test
from repro.engine.parallel import ExecutorConfig
from repro.internet.universe import Universe
from repro.scanner.bandwidth import BITS_PER_PROBE, ScanCategory
from repro.scanner.pipeline import ScanPipeline
from repro.scanner.records import ObservationBatch


@dataclass
class PhaseRow:
    """One row of the Table 2 breakdown.

    Attributes:
        name: phase label (matching the paper's row names).
        probes: probes sent in this phase (0 for pure-compute phases).
        full_scans: the same bandwidth in "100 % scans".
        compute_seconds_single_core: measured single-core computation time.
        compute_seconds_parallel: measured computation time on the parallel
            engine (None when the phase has no parallel implementation).
        wall_seconds: modelled wall-clock time of the phase (scan time at the
            configured line rate, transfer time at the configured link speed,
            or the parallel compute time for computation phases).
        data_bytes: data produced/transferred by the phase.
    """

    name: str
    probes: int = 0
    full_scans: float = 0.0
    compute_seconds_single_core: float = 0.0
    compute_seconds_parallel: Optional[float] = None
    wall_seconds: float = 0.0
    data_bytes: int = 0


@dataclass
class PerformanceBreakdown:
    """The full Table 2 analogue."""

    rows: List[PhaseRow] = field(default_factory=list)
    seed_scan_rate_bps: float = 1.5e9
    prediction_scan_rate_bps: float = 50e6
    transfer_rate_bytes_per_s: float = 25e6
    parallel_workers: int = 1

    def total_wall_seconds(self) -> float:
        """Sum of modelled wall-clock time across phases."""
        return sum(row.wall_seconds for row in self.rows)

    def total_compute_seconds_single_core(self) -> float:
        """Total single-core computation time."""
        return sum(row.compute_seconds_single_core for row in self.rows)

    def total_full_scans(self) -> float:
        """Total bandwidth in 100 % scans."""
        return sum(row.full_scans for row in self.rows)

    def speedup(self) -> Optional[float]:
        """Single-core versus parallel compute speedup across compute phases."""
        single = sum(row.compute_seconds_single_core for row in self.rows
                     if row.compute_seconds_parallel is not None)
        parallel = sum(row.compute_seconds_parallel for row in self.rows
                       if row.compute_seconds_parallel is not None)
        if parallel and parallel > 0:
            return single / parallel
        return None


def _observations_bytes(observations: Sequence) -> int:
    """Approximate serialized size of a set of observations (JSON lines)."""
    return sum(len(json.dumps(observation_to_dict(obs))) + 1 for obs in observations)


def run_performance_breakdown(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fraction: float = 0.01,
    step_size: int = 16,
    split_seed: int = 0,
    executor: Optional[ExecutorConfig] = None,
    seed_scan_rate_bps: float = 1.5e9,
    prediction_scan_rate_bps: float = 50e6,
    transfer_rate_bytes_per_s: float = 25e6,
) -> PerformanceBreakdown:
    """Measure/model the Table 2 breakdown for one GPS configuration.

    Computation phases are run twice -- once single-core, once on the parallel
    engine described by ``executor`` -- so the breakdown can report the
    speedup the paper attributes to a highly parallel execution environment.
    """
    executor = executor or ExecutorConfig(backend="thread", workers=4)
    split = split_seed_test(dataset, seed_fraction, seed=split_seed)
    feature_config = FeatureConfig()
    asn_db = universe.topology.asn_db
    space = universe.address_space_size()

    breakdown = PerformanceBreakdown(
        seed_scan_rate_bps=seed_scan_rate_bps,
        prediction_scan_rate_bps=prediction_scan_rate_bps,
        transfer_rate_bytes_per_s=transfer_rate_bytes_per_s,
        parallel_workers=executor.workers,
    )

    # -- Phase: seed scan (bandwidth-modelled; the data already exists) -------------
    seed_probes = seed_scan_cost_probes(dataset, seed_fraction)
    seed_bytes = _observations_bytes(split.seed_observations)
    breakdown.rows.append(PhaseRow(
        name="1% seed scan (if needed)" if abs(seed_fraction - 0.01) < 1e-9
        else f"{seed_fraction:.2%} seed scan (if needed)",
        probes=seed_probes,
        full_scans=seed_probes / space,
        wall_seconds=seed_probes * BITS_PER_PROBE / seed_scan_rate_bps,
    ))
    breakdown.rows.append(PhaseRow(
        name="Seed scan upload",
        data_bytes=seed_bytes,
        wall_seconds=seed_bytes / transfer_rate_bytes_per_s,
    ))

    # -- Phase: predicting the first service (computation) ---------------------------
    start = time.perf_counter()
    host_features = extract_host_features(split.seed_observations, asn_db, feature_config)
    model_single = build_model(host_features)
    priors_plan = build_priors_plan(host_features, model_single, step_size,
                                    dataset.port_domain)
    pfs_single = time.perf_counter() - start

    # The priors-scan phase below needs the pipeline anyway; creating it
    # here lets the columnar rebuild share its status-id space.
    pipeline = ScanPipeline(universe)

    # The engine measurement runs the fused path's own ingest: a dataset
    # split hands GPS the seed as a pre-sliced column batch (see
    # SeedTestSplit.seed_scan_result), so the timed region covers exactly
    # what a fused run computes -- columns -> encoded host/service/predictor
    # columns -> fused model and priors builds.  Outputs are identical to
    # the single-core rows above.
    seed_batch = split.seed_scan_result().batch
    if seed_batch is None:  # object-backed dataset: rebuild columns untimed
        seed_batch = ObservationBatch.from_observations(
            split.seed_observations, statuses=pipeline.status_encoder)
    start = time.perf_counter()
    host_columns = extract_host_features_columns(seed_batch, asn_db,
                                                 feature_config)
    model_parallel = build_model_with_engine(host_columns, executor)
    build_priors_plan_with_engine(host_columns, model_parallel, step_size,
                                  dataset.port_domain, executor=executor)
    pfs_parallel = time.perf_counter() - start

    plan_bytes = sum(len(entry.describe()) + 1 for entry in priors_plan)
    breakdown.rows.append(PhaseRow(
        name="Predicting first service (PFS)",
        compute_seconds_single_core=pfs_single,
        compute_seconds_parallel=pfs_parallel,
        wall_seconds=pfs_parallel,
        data_bytes=_observations_bytes(split.seed_observations),
    ))
    breakdown.rows.append(PhaseRow(
        name="PFS download",
        data_bytes=plan_bytes,
        wall_seconds=plan_bytes / transfer_rate_bytes_per_s,
    ))

    # -- Phase: priors scan (executed against the universe) ---------------------------
    priors_observations = []
    for entry in priors_plan:
        priors_observations.extend(
            pipeline.scan_prefix(entry.port, entry.subnet, category=ScanCategory.PRIORS)
        )
    priors_probes = pipeline.ledger.total_probes(ScanCategory.PRIORS)
    priors_bytes = _observations_bytes(priors_observations)
    breakdown.rows.append(PhaseRow(
        name="PFS scan",
        probes=priors_probes,
        full_scans=priors_probes / space,
        wall_seconds=priors_probes * BITS_PER_PROBE / prediction_scan_rate_bps,
    ))
    breakdown.rows.append(PhaseRow(
        name="PFS scan upload",
        data_bytes=priors_bytes,
        wall_seconds=priors_bytes / transfer_rate_bytes_per_s,
    ))

    # -- Phase: predicting remaining services (computation) ----------------------------
    start = time.perf_counter()
    index = PredictiveFeatureIndex.from_seed(host_features, model_single,
                                             port_domain=dataset.port_domain)
    known = {obs.pair() for obs in split.seed_observations}
    known.update(obs.pair() for obs in priors_observations)
    predictions = index.predict(priors_observations, asn_db, feature_config,
                                known_pairs=known)
    prs_single = time.perf_counter() - start

    start = time.perf_counter()
    index_parallel = build_prediction_index_with_engine(
        host_columns, model_parallel, port_domain=dataset.port_domain,
        executor=executor)
    index_parallel.predict(priors_observations, asn_db, feature_config,
                           known_pairs=known)
    prs_parallel = time.perf_counter() - start

    predictions_bytes = sum(24 for _ in predictions)  # ip + port + probability per line
    breakdown.rows.append(PhaseRow(
        name="Predicting remaining services (PRS)",
        compute_seconds_single_core=prs_single,
        compute_seconds_parallel=prs_parallel,
        wall_seconds=prs_parallel,
        data_bytes=priors_bytes,
    ))
    breakdown.rows.append(PhaseRow(
        name="PRS download",
        data_bytes=predictions_bytes,
        wall_seconds=predictions_bytes / transfer_rate_bytes_per_s,
    ))

    # -- Phase: prediction scan ---------------------------------------------------------
    prediction_probes = len(predictions)
    breakdown.rows.append(PhaseRow(
        name="PRS scan",
        probes=prediction_probes,
        full_scans=prediction_probes / space,
        wall_seconds=prediction_probes * BITS_PER_PROBE / prediction_scan_rate_bps,
    ))
    return breakdown
