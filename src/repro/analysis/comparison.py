"""GPS versus the XGBoost-style sequential scanner (Section 6.4, Figure 4).

The comparison has three parts:

* **Figure 4a** -- bandwidth each system spends collecting its *prior*
  information for a target port: for the XGBoost scanner that is the cost of
  scanning every earlier port in its sequence; for GPS it is the cost of the
  priors-scan entries that discovered the services whose features end up
  predicting the target port.
* **Figure 4b** -- bandwidth each system then spends scanning the target port
  itself: predicted candidates for the XGBoost scanner, predicted (ip, port)
  probes for GPS.
* **Figure 4c** -- the normalized-service coverage curve of both systems over
  the comparison ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.scenarios import run_gps_on_dataset
from repro.baselines.xgboost_scanner import (
    XGBoostScanRun,
    XGBoostScanner,
    XGBoostScannerConfig,
)
from repro.core.gps import GPSRunResult
from repro.core.metrics import CoveragePoint, coverage_curve
from repro.datasets.builders import GroundTruthDataset
from repro.internet.universe import Universe
from repro.net.ipv4 import ip_in_prefix, subnet_key_parts

Pair = Tuple[int, int]


@dataclass
class PortComparison:
    """Per-port bandwidth comparison (one bar group of Figures 4a/4b).

    All bandwidth figures are in units of 100 % scans of the address space.
    """

    port: int
    gps_prior_full_scans: float
    xgb_prior_full_scans: float
    gps_port_full_scans: float
    xgb_port_full_scans: float
    gps_coverage: float
    xgb_coverage: float


@dataclass
class XGBoostComparison:
    """Full result of the Figure 4 comparison."""

    ports: List[PortComparison]
    gps_normalized_curve: List[CoveragePoint]
    xgb_normalized_curve: List[CoveragePoint]
    gps_run: GPSRunResult
    xgb_run: XGBoostScanRun

    def average_prior_savings(self) -> Optional[float]:
        """Average ratio of XGBoost prior bandwidth to GPS prior bandwidth."""
        ratios = [
            comparison.xgb_prior_full_scans / comparison.gps_prior_full_scans
            for comparison in self.ports
            if comparison.gps_prior_full_scans > 0
        ]
        return sum(ratios) / len(ratios) if ratios else None

    def ports_where_gps_cheaper(self) -> int:
        """How many comparison ports GPS scans with less port bandwidth."""
        return sum(
            1 for comparison in self.ports
            if comparison.gps_port_full_scans < comparison.xgb_port_full_scans
        )


def _gps_per_port_accounting(run: GPSRunResult, universe: Universe,
                             ports: Sequence[int],
                             ground_truth: Set[Pair]) -> Dict[int, Tuple[int, int, int]]:
    """Per-port (prior probes, port probes, found count) for a GPS run.

    The prior cost of a target port is the cost of the priors-plan entries
    that discovered at least one service whose features generated a prediction
    for that port (identified through each prediction's source pair: the
    predicting host and the port embedded in its predictor tuple).
    """
    wanted = set(ports)

    # Source pairs (predicting service) per target port.
    sources_per_port: Dict[int, Set[Pair]] = {}
    for prediction in run.predictions:
        if prediction.port in wanted:
            source = (prediction.ip, prediction.predictor[1])
            sources_per_port.setdefault(prediction.port, set()).add(source)

    # Which priors entry discovered which observation.
    entry_cost: List[int] = []
    entry_pairs: List[Set[Pair]] = []
    for entry in run.priors_plan:
        base, prefix_len = subnet_key_parts(entry.subnet)
        entry_cost.append(universe.announced_overlap(base, prefix_len))
        entry_pairs.append(set())
    priors_pairs = {obs.pair() for obs in run.priors_observations}
    for index, entry in enumerate(run.priors_plan):
        base, prefix_len = subnet_key_parts(entry.subnet)
        for ip, port in priors_pairs:
            if port == entry.port and ip_in_prefix(ip, base, prefix_len):
                entry_pairs[index].add((ip, port))

    found_pairs = run.discovered_pairs() & ground_truth
    accounting: Dict[int, Tuple[int, int, int]] = {}
    for port in ports:
        sources = sources_per_port.get(port, set())
        prior_probes = sum(
            cost for cost, pairs in zip(entry_cost, entry_pairs)
            if pairs & sources
        )
        port_probes = sum(1 for prediction in run.predictions if prediction.port == port)
        found = sum(1 for ip, p in found_pairs if p == port)
        accounting[port] = (prior_probes, port_probes, found)
    return accounting


def run_xgboost_comparison(
    universe: Universe,
    dataset: GroundTruthDataset,
    ports: Optional[Sequence[int]] = None,
    seed_fraction: float = 0.005,
    step_size: int = 16,
    split_seed: int = 0,
    scanner_config: Optional[XGBoostScannerConfig] = None,
) -> XGBoostComparison:
    """Run both systems on the same dataset and compare them per port.

    Args:
        universe: the synthetic universe both systems scan.
        dataset: the ground-truth dataset (the paper uses the Censys dataset).
        ports: the comparison ports (default: the dataset's 19 most popular,
            mirroring the 19 ports of Figure 4).
        seed_fraction: seed size for both systems (the paper uses 0.5 %).
        step_size: GPS scanning step size (the paper uses /16).
        split_seed: RNG seed of the seed/test split (shared by both systems).
        scanner_config: overrides for the XGBoost-style scanner.
    """
    if ports is None:
        ports = dataset.port_registry().top_ports(19)
    ports = list(ports)

    # GPS side.
    gps_run, _, split = run_gps_on_dataset(
        universe, dataset, seed_fraction, step_size=step_size, split_seed=split_seed,
    )
    gps_accounting = _gps_per_port_accounting(gps_run, universe, ports,
                                              dataset.pairs())

    # XGBoost-scanner side (shares the same seed/test split).
    config = scanner_config or XGBoostScannerConfig(
        ports=tuple(ports), neighborhood_prefix=min(24, max(8, step_size + 8)),
    )
    scanner = XGBoostScanner(dataset, config)
    xgb_run = scanner.run(split)
    xgb_by_port = {outcome.port: outcome for outcome in xgb_run.outcomes}

    truth_per_port: Dict[int, int] = {}
    for _, port in dataset.pairs():
        truth_per_port[port] = truth_per_port.get(port, 0) + 1

    space = dataset.address_space_size
    comparisons: List[PortComparison] = []
    for port in ports:
        gps_prior, gps_port, gps_found = gps_accounting.get(port, (0, 0, 0))
        xgb_outcome = xgb_by_port.get(port)
        truth = truth_per_port.get(port, 0)
        comparisons.append(PortComparison(
            port=port,
            gps_prior_full_scans=gps_prior / space,
            xgb_prior_full_scans=(xgb_outcome.prior_probes / space) if xgb_outcome else 0.0,
            gps_port_full_scans=gps_port / space,
            xgb_port_full_scans=(xgb_outcome.probes / space) if xgb_outcome else 0.0,
            gps_coverage=gps_found / truth if truth else 0.0,
            xgb_coverage=xgb_outcome.coverage if xgb_outcome else 0.0,
        ))

    # Figure 4c: normalized coverage over the comparison ports only.
    restricted = dataset.restricted_to_ports(ports)
    restricted_truth = restricted.pairs()
    gps_curve = coverage_curve(gps_run.log_as_tuples(), restricted_truth, space)
    xgb_curve = coverage_curve(xgb_run.discovery_log, restricted_truth, space)

    return XGBoostComparison(
        ports=comparisons,
        gps_normalized_curve=gps_curve,
        xgb_normalized_curve=xgb_curve,
        gps_run=gps_run,
        xgb_run=xgb_run,
    )
