"""Evaluation harness: the code behind every table and figure in the paper.

Each module corresponds to one experiment family; the benchmarks under
``benchmarks/`` are thin wrappers that call these functions with standard
scales and print the rows/series the paper reports.

* :mod:`repro.analysis.scenarios` -- shared experiment scales, universe and
  dataset builders, standard GPS runs;
* :mod:`repro.analysis.coverage` -- coverage-versus-bandwidth experiments
  (Figure 2) plus the step-size and seed-size parameter sweeps (Figures 5-6);
* :mod:`repro.analysis.precision` -- the precision experiment (Figure 3);
* :mod:`repro.analysis.comparison` -- GPS versus the XGBoost-style scanner
  (Figure 4);
* :mod:`repro.analysis.feature_analysis` -- feature dimensionality (Table 1),
  most-predictive feature values (Table 3) and network-feature candidates
  (Table 4 / Appendix C);
* :mod:`repro.analysis.performance` -- the performance breakdown (Table 2);
* :mod:`repro.analysis.limits` -- the random-host-configuration limit study
  (Section 7) and the churn measurement (Section 3);
* :mod:`repro.analysis.reporting` -- plain-text table/series rendering.
"""

from repro.analysis.scenarios import (
    SMALL_SCALE,
    MEDIUM_SCALE,
    ExperimentScale,
    make_censys_dataset,
    make_lzr_dataset,
    make_universe,
    run_gps_on_dataset,
)
from repro.analysis.coverage import (
    CoverageExperiment,
    run_coverage_experiment,
    run_seed_size_sweep,
    run_step_size_sweep,
)
from repro.analysis.precision import PrecisionExperiment, run_precision_experiment
from repro.analysis.comparison import (
    PortComparison,
    XGBoostComparison,
    run_xgboost_comparison,
)
from repro.analysis.feature_analysis import (
    feature_dimensionality,
    most_predictive_feature_types,
    most_predictive_feature_types_from_run,
    network_feature_predictiveness,
)
from repro.analysis.performance import PerformanceBreakdown, run_performance_breakdown
from repro.analysis.limits import run_churn_measurement, run_ideal_conditions_study
from repro.analysis.reporting import format_curve, format_table

__all__ = [
    "ExperimentScale",
    "SMALL_SCALE",
    "MEDIUM_SCALE",
    "make_universe",
    "make_censys_dataset",
    "make_lzr_dataset",
    "run_gps_on_dataset",
    "CoverageExperiment",
    "run_coverage_experiment",
    "run_step_size_sweep",
    "run_seed_size_sweep",
    "PrecisionExperiment",
    "run_precision_experiment",
    "PortComparison",
    "XGBoostComparison",
    "run_xgboost_comparison",
    "feature_dimensionality",
    "most_predictive_feature_types",
    "most_predictive_feature_types_from_run",
    "network_feature_predictiveness",
    "PerformanceBreakdown",
    "run_performance_breakdown",
    "run_ideal_conditions_study",
    "run_churn_measurement",
    "format_table",
    "format_curve",
]
