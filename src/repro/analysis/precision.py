"""Precision experiment (Figure 3).

GPS probes its predictions in descending order of predictability, so its
precision (services found per probe sent) is highest at the start of the scan
schedule and decays as it works through less certain predictions.  Figure 3
plots precision against the fraction of (all and normalized) services found
and compares it with exhaustively probing ports in the optimal order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.coverage import CoverageExperiment, run_coverage_experiment
from repro.core.metrics import coverage_curve, precision_curve
from repro.datasets.builders import GroundTruthDataset
from repro.internet.universe import Universe


@dataclass
class PrecisionExperiment:
    """Result of the Figure 3 experiment.

    Attributes:
        coverage: the underlying coverage experiment (GPS + references).
        gps_all: (fraction of all services found, precision) series for GPS.
        gps_normalized: (normalized fraction found, precision) series for GPS.
        exhaustive_all: same series for optimal port-order probing.
    """

    coverage: CoverageExperiment
    gps_all: List[Tuple[float, float]]
    gps_normalized: List[Tuple[float, float]]
    exhaustive_all: List[Tuple[float, float]]

    def precision_advantage_at(self, target_fraction: float) -> Optional[float]:
        """GPS precision divided by exhaustive precision at a coverage level.

        The paper reports GPS finding the 94th percentile of services with
        204x more precision than exhaustive probing; this helper computes the
        analogous ratio for the synthetic datasets.
        """
        gps = _precision_at(self.gps_all, target_fraction)
        exhaustive = _precision_at(self.exhaustive_all, target_fraction)
        if gps is None or exhaustive is None or exhaustive == 0.0:
            return None
        return gps / exhaustive


def _precision_at(series: List[Tuple[float, float]],
                  target_fraction: float) -> Optional[float]:
    for fraction, precision in series:
        if fraction >= target_fraction:
            return precision
    return None


def run_precision_experiment(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fraction: float = 0.01,
    step_size: int = 20,
    split_seed: int = 0,
) -> PrecisionExperiment:
    """Run the Figure 3 experiment (small step size maximises precision).

    Precision here characterises GPS's *scanning schedule* -- the priors and
    prediction scans that the probabilistic model orders by predictability --
    so the seed scan (pure random probing, whose precision is by definition
    the universe's background density) is excluded from both the probe counts
    and the set of services to be found, mirroring how the paper discusses
    Figure 3 ("GPS scans services that are most predictable first").
    """
    coverage = run_coverage_experiment(universe, dataset, seed_fraction,
                                       step_size=step_size, split_seed=split_seed)
    run = coverage.run
    seed_pairs = {obs.pair() for obs in run.seed_observations}
    schedule_truth = dataset.pairs() - seed_pairs

    seed_probes = 0
    schedule_log = []
    for batch in run.discovery_log:
        if batch.phase == "seed":
            seed_probes = batch.cumulative_probes
            continue
        schedule_log.append((batch.cumulative_probes - seed_probes, batch.pairs))
    gps_points = coverage_curve(schedule_log, schedule_truth,
                                dataset.address_space_size)

    return PrecisionExperiment(
        coverage=coverage,
        gps_all=precision_curve(gps_points, normalized=False),
        gps_normalized=precision_curve(gps_points, normalized=True),
        exhaustive_all=precision_curve(coverage.optimal_points, normalized=False),
    )
