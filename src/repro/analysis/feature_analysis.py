"""Feature analysis: Tables 1, 3 and 4.

* :func:`feature_dimensionality` -- Table 1: how many unique values each GPS
  feature takes in a ground-truth dataset.
* :func:`most_predictive_feature_types` -- Table 3: for every seed service,
  which *type* of feature tuple (e.g. ``(Port, Port's protocol)`` or
  ``(Port, ASN, HTTP body hash)``) is the most predictive of it, weighted by
  services and by normalized services.
* :func:`network_feature_predictiveness` -- Table 4 / Appendix C: which
  network-layer feature (ASN or /16-/23 subnet) is most predictive when GPS is
  configured with all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FeatureConfig
from repro.core.features import PredictorTuple, extract_host_features
from repro.core.model import build_model
from repro.datasets.builders import GroundTruthDataset
from repro.internet.banners import APP_FEATURE_KEYS
from repro.internet.universe import Universe
from repro.net.ipv4 import subnet_key
from repro.scanner.records import ScanObservation

#: Human-readable labels for the Table 1 rows, keyed by feature key.
FEATURE_LABELS: Dict[str, str] = {
    "protocol": "Protocol",
    "tls_cert_hash": "TLS Cert: Hash",
    "tls_cert_org": "TLS Cert: Organization",
    "tls_cert_subject": "TLS Cert: Subject Name",
    "http_html_title": "HTTP: HTML title",
    "http_body_hash": "HTTP: Body Hash",
    "http_server": "HTTP: Server",
    "http_header": "HTTP: Header",
    "ssh_host_key": "SSH: Host Key",
    "ssh_banner": "SSH: Banner",
    "vnc_desktop_name": "VNC: Desktop Name",
    "smtp_banner": "SMTP: Banner",
    "ftp_banner": "FTP: Banner",
    "imap_banner": "IMAP: Banner",
    "pop3_banner": "POP3: Banner",
    "cwmp_header": "CWMP: Header",
    "cwmp_body_hash": "CWMP: Body Hash",
    "telnet_banner": "Telnet: Banner",
    "pptp_vendor": "PPTP: Vendor",
    "mysql_version": "MYSQL: Server Version",
    "memcached_version": "Memcached: Server Version",
    "mssql_version": "MSSQL: Server Version",
    "ipmi_banner": "IPMI: Banner",
}


def feature_dimensionality(dataset: GroundTruthDataset,
                           universe: Universe) -> List[Tuple[str, int]]:
    """Table 1: number of unique values of every GPS feature in the dataset.

    Application-layer dimensionalities are counted over the dataset's banner
    fields; the two network-layer rows (/16 subnetwork and ASN) are counted
    over the dataset's responsive addresses.
    """
    unique_values: Dict[str, set] = {key: set() for key in APP_FEATURE_KEYS}
    subnets: set = set()
    asns: set = set()
    for observation in dataset.observations:
        for key, value in observation.app_features.items():
            if key in unique_values:
                unique_values[key].add(value)
        subnets.add(subnet_key(observation.ip, 16))
        asn = universe.topology.asn_db.asn_of(observation.ip)
        if asn:
            asns.add(asn)

    rows: List[Tuple[str, int]] = []
    for key in APP_FEATURE_KEYS:
        label = FEATURE_LABELS.get(key, key)
        rows.append((label, len(unique_values[key])))
    rows.append(("IP's /16 subnetwork", len(subnets)))
    rows.append(("IP's ASN", len(asns)))
    return rows


def _feature_type(predictor: PredictorTuple) -> Tuple[str, ...]:
    """The *type* of a predictor tuple: which feature kinds it combines.

    Examples: ``("Port",)``, ``("Port", "protocol")``,
    ``("Port", "asn", "http_body_hash")``.
    """
    tag = predictor[0]
    if tag == "P":
        return ("Port",)
    if tag == "PA":
        return ("Port", predictor[2])
    if tag == "PN":
        return ("Port", predictor[2])
    if tag == "PAN":
        return ("Port", predictor[4], predictor[2])
    return (repr(predictor),)


@dataclass
class FeatureTypeShare:
    """One row of Table 3 / Table 4."""

    feature_type: Tuple[str, ...]
    normalized_share: float
    service_share: float

    def label(self) -> str:
        """Render the feature type the way the paper's tables do."""
        return "(" + ", ".join(self.feature_type) + ")"


def _best_predictor_shares(
    observations: Sequence[ScanObservation],
    universe: Universe,
    feature_config: FeatureConfig,
    restrict_families: Optional[Sequence[str]] = None,
) -> List[FeatureTypeShare]:
    """Shared machinery of Tables 3 and 4.

    For every service on a multi-service host, find the predictor tuple (from
    the host's other services) with the maximum conditional probability and
    attribute the service to that tuple's feature type.  Shares are reported
    both per service and per normalized service (each port weighted equally).
    """
    host_features = extract_host_features(observations, universe.topology.asn_db,
                                          feature_config)
    model = build_model(host_features)

    port_populations: Dict[int, int] = {}
    for observation in observations:
        port_populations[observation.port] = port_populations.get(observation.port, 0) + 1

    service_weight: Dict[Tuple[str, ...], float] = {}
    normalized_weight: Dict[Tuple[str, ...], float] = {}
    attributed_services = 0
    attributed_ports: Dict[int, float] = {}

    for host in host_features.values():
        open_ports = host.open_ports()
        if len(open_ports) < 2:
            continue
        for port_a in open_ports:
            candidates: List[PredictorTuple] = []
            for port_b in open_ports:
                if port_b != port_a:
                    candidates.extend(host.ports[port_b])
            if restrict_families is not None:
                candidates = [c for c in candidates if c[0] in restrict_families]
            predictor, probability = model.best_predictor(candidates, port_a)
            if predictor is None or probability <= 0.0:
                continue
            feature_type = _feature_type(predictor)
            service_weight[feature_type] = service_weight.get(feature_type, 0.0) + 1.0
            normalized_weight[feature_type] = (
                normalized_weight.get(feature_type, 0.0)
                + 1.0 / port_populations[port_a]
            )
            attributed_services += 1
            attributed_ports[port_a] = attributed_ports.get(port_a, 0.0) + 1.0

    total_services = sum(service_weight.values())
    total_normalized = sum(normalized_weight.values())
    shares = [
        FeatureTypeShare(
            feature_type=feature_type,
            normalized_share=(normalized_weight[feature_type] / total_normalized
                              if total_normalized else 0.0),
            service_share=(service_weight[feature_type] / total_services
                           if total_services else 0.0),
        )
        for feature_type in service_weight
    ]
    shares.sort(key=lambda share: -share.normalized_share)
    return shares


def most_predictive_feature_types(
    dataset: GroundTruthDataset,
    universe: Universe,
    seed_observations: Optional[Sequence[ScanObservation]] = None,
    feature_config: Optional[FeatureConfig] = None,
    top: int = 5,
) -> List[FeatureTypeShare]:
    """Table 3: the feature types most often chosen as "most predictive"."""
    observations = seed_observations if seed_observations is not None else dataset.observations
    shares = _best_predictor_shares(observations, universe,
                                    feature_config or FeatureConfig())
    return shares[:top]


def most_predictive_feature_types_from_run(
    run, dataset: GroundTruthDataset, top: int = 5,
) -> List[FeatureTypeShare]:
    """Table 3, computed the way the paper computes it: from a GPS run.

    Every ground-truth service that GPS's prediction scan confirmed is
    attributed to the feature type of the pattern that predicted it; shares
    are reported per service and per normalized service (weighting each
    service by the inverse of its port's population in the ground truth).
    Host-unique feature values (certificate hashes, SSH host keys) rarely win
    here because they cannot generalise to hosts outside the seed -- which is
    why the protocol- and network-level patterns dominate, as in the paper.
    """
    ground_truth = dataset.pairs()
    truth_per_port: Dict[int, int] = {}
    for _, port in ground_truth:
        truth_per_port[port] = truth_per_port.get(port, 0) + 1

    confirmed = {obs.pair() for obs in run.prediction_observations} & ground_truth
    service_weight: Dict[Tuple[str, ...], float] = {}
    normalized_weight: Dict[Tuple[str, ...], float] = {}
    for prediction in run.predictions:
        pair = prediction.pair()
        if pair not in confirmed:
            continue
        feature_type = _feature_type(prediction.predictor)
        service_weight[feature_type] = service_weight.get(feature_type, 0.0) + 1.0
        normalized_weight[feature_type] = (
            normalized_weight.get(feature_type, 0.0)
            + 1.0 / truth_per_port[prediction.port]
        )

    total_services = sum(service_weight.values())
    total_normalized = sum(normalized_weight.values())
    shares = [
        FeatureTypeShare(
            feature_type=feature_type,
            normalized_share=(normalized_weight[feature_type] / total_normalized
                              if total_normalized else 0.0),
            service_share=(service_weight[feature_type] / total_services
                           if total_services else 0.0),
        )
        for feature_type in service_weight
    ]
    shares.sort(key=lambda share: -share.normalized_share)
    return shares[:top]


def network_feature_predictiveness(
    dataset: GroundTruthDataset,
    universe: Universe,
    seed_observations: Optional[Sequence[ScanObservation]] = None,
) -> List[FeatureTypeShare]:
    """Table 4 / Appendix C: which network feature is most predictive.

    GPS is configured with every candidate network feature (/16-/23 and the
    ASN) and only the (Port, Net) predictor family, then each service is
    attributed to the network feature of its best predictor.
    """
    config = FeatureConfig(
        app_feature_keys=(),
        network_feature_kinds=("asn", "subnet16", "subnet17", "subnet18",
                               "subnet19", "subnet20", "subnet21", "subnet22",
                               "subnet23"),
        include_transport_only=False,
        include_app=False,
        include_network=True,
        include_app_network=False,
    )
    observations = seed_observations if seed_observations is not None else dataset.observations
    return _best_predictor_shares(observations, universe, config,
                                  restrict_families=("PN",))
