"""Shared experiment scenarios: scales, universes, datasets and standard GPS runs.

Every benchmark and example builds its world through this module so that the
same universe/dataset configurations are exercised everywhere.  Two scales are
provided:

* ``SMALL_SCALE`` -- seconds-fast, used by the test suite and the quickstart;
* ``MEDIUM_SCALE`` -- the default for benchmarks, big enough for the curves to
  be smooth while still running on a laptop.

The paper's experiments operate on the real Internet (3.7 billion addresses);
the scales here shrink the address space while keeping the relative quantities
(seed fractions, step sizes, bandwidth in "100 % scans") meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import FeatureConfig, GPSConfig
from repro.core.gps import GPS, GPSRunResult
from repro.datasets.builders import (
    GroundTruthDataset,
    build_censys_like,
    build_lzr_like,
)
from repro.datasets.split import SeedTestSplit, seed_scan_cost_probes, split_seed_test
from repro.internet.topology import TopologyConfig
from repro.internet.universe import Universe, UniverseConfig, generate_universe
from repro.scanner.pipeline import ScanPipeline


@dataclass(frozen=True)
class ExperimentScale:
    """A named experiment size.

    Attributes:
        name: scale label.
        host_count: number of real hosts in the synthetic universe.
        as_count: autonomous systems in the topology.
        prefixes_per_as: /16 blocks announced per AS.
        censys_top_ports: port count of the Censys-like dataset.
        lzr_sample_fraction: address-space fraction of the LZR-like dataset.
        default_seed_fraction: seed size used by the standard runs.
    """

    name: str
    host_count: int
    as_count: int
    prefixes_per_as: int
    censys_top_ports: int
    lzr_sample_fraction: float
    default_seed_fraction: float

    def universe_config(self, seed: int = 1) -> UniverseConfig:
        """The universe configuration for this scale."""
        return UniverseConfig(
            host_count=self.host_count,
            seed=seed,
            topology=TopologyConfig(as_count=self.as_count,
                                    prefixes_per_as=self.prefixes_per_as),
        )


SMALL_SCALE = ExperimentScale(
    name="small",
    host_count=2500,
    as_count=8,
    prefixes_per_as=1,
    censys_top_ports=80,
    lzr_sample_fraction=0.10,
    default_seed_fraction=0.05,
)

MEDIUM_SCALE = ExperimentScale(
    name="medium",
    host_count=12000,
    as_count=12,
    prefixes_per_as=1,
    censys_top_ports=300,
    lzr_sample_fraction=0.05,
    default_seed_fraction=0.03,
)


def make_universe(scale: ExperimentScale = SMALL_SCALE, seed: int = 1) -> Universe:
    """Generate the synthetic universe for a scale (deterministic per seed)."""
    return generate_universe(scale.universe_config(seed=seed))


def make_censys_dataset(universe: Universe,
                        scale: ExperimentScale = SMALL_SCALE) -> GroundTruthDataset:
    """The scale's Censys-like ground truth (100 % scan of the top-N ports)."""
    return build_censys_like(universe, top_ports=scale.censys_top_ports)


def make_lzr_dataset(universe: Universe,
                     scale: ExperimentScale = SMALL_SCALE,
                     seed: int = 11) -> GroundTruthDataset:
    """The scale's LZR-like ground truth (sampled scan across all ports)."""
    return build_lzr_like(universe, sample_fraction=scale.lzr_sample_fraction,
                          seed=seed, min_responsive_ips=3)


def run_gps_on_dataset(
    universe: Universe,
    dataset: GroundTruthDataset,
    seed_fraction: float,
    step_size: int = 16,
    split_seed: int = 0,
    feature_config: Optional[FeatureConfig] = None,
    max_full_scans: Optional[float] = None,
    use_engine: bool = False,
    seed_cost_mode: str = "scan",
    executor: Optional[str] = None,
    num_workers: int = 0,
    shard_count: int = 0,
    telemetry=None,
    seed_override=None,
) -> Tuple[GPSRunResult, ScanPipeline, SeedTestSplit]:
    """Run GPS in dataset-split mode (the paper's evaluation methodology).

    The dataset is split into a seed and a test half by address; GPS trains on
    the seed half, scans the universe through a fresh pipeline, and is charged
    for the seed according to ``seed_cost_mode``:

    * ``"scan"`` -- charge the full random-probing cost the seed scan would
      have required (seed fraction x ports swept x address space);
    * ``"available"`` -- charge nothing, modelling the paper's "use an
      available seed set (e.g. the LZR dataset)" deployment mode
      (Section 5.1); used by the all-port experiments, where collecting a seed
      at this reproduction's scale would otherwise dominate every curve.

    ``seed_override`` (a :class:`~repro.scanner.pipeline.SeedScanResult`)
    replaces the split's seed half entirely -- the Section 6.5 "reuse an
    existing seed scan" deployment mode, fed by a reloaded snapshot.  The
    split is still computed (the test half stays well-defined) but GPS
    trains on the supplied seed and the ``seed_cost_mode`` charge applies to
    it unchanged.

    ``executor`` selects a persistent engine-runtime backend (``"serial"``,
    ``"thread"`` or ``"pool"``; implies ``use_engine``) with ``num_workers``
    workers over ``shard_count`` resident shards (0 = one per worker); the
    runtime lives for this one run and is closed before returning.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) instruments the
    run's pipeline and orchestrator -- phase spans, scan counters, engine
    timings -- without changing any output.

    Returns the run result, the pipeline (whose ledger holds the bandwidth
    accounting) and the split (for evaluating against the test half).
    """
    if seed_cost_mode not in ("scan", "available"):
        raise ValueError(f"unknown seed_cost_mode: {seed_cost_mode}")
    split = split_seed_test(dataset, seed_fraction, seed=split_seed)
    pipeline = ScanPipeline(universe, telemetry=telemetry)
    engine_kwargs = {}
    if executor is not None:
        engine_kwargs = {"executor": executor, "num_workers": num_workers,
                         "shard_count": shard_count}
    config = GPSConfig(
        seed_fraction=seed_fraction,
        step_size=step_size,
        port_domain=dataset.port_domain,
        feature_config=feature_config or FeatureConfig(),
        max_full_scans=max_full_scans,
        use_engine=use_engine or executor is not None,
        **engine_kwargs,
    )
    if seed_cost_mode == "scan":
        seed_cost = seed_scan_cost_probes(dataset, seed_fraction)
    else:
        seed_cost = 0
    seed_result = seed_override if seed_override is not None else split.seed_scan_result()
    with GPS(pipeline, config, telemetry=telemetry) as gps:
        result = gps.run(seed=seed_result, seed_cost_probes=seed_cost)
    return result, pipeline, split
