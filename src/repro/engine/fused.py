"""Fused streaming operators: join + group-by + count in one pass.

The GPS model-building query is a self-join whose *output* is quadratic in
the services per host, but whose *answer* -- co-occurrence counts per
(predictor, target port) -- is only as large as the number of distinct
patterns.  :func:`repro.engine.ops.hash_join` followed by
:func:`repro.engine.ops.group_count` materializes the whole quadratic
intermediate as row tuples (twice, when self-pair exclusion re-filters the
joined table) before a single count happens.

:func:`join_group_count` fuses the pipeline: left rows stream through the
right-side hash index and every surviving (left, right) combination folds
directly into a per-key counter.  No joined ``Table`` is ever constructed,
self-pairs are skipped inline, and peak memory is the size of the *answer*
plus the right-side index.  The operator is defined to be exactly equivalent
to ``group_count(hash_join(left, right, ...), keys)`` -- the property the
test suite checks on randomized tables -- while the query plan it compiles
(:class:`FusedJoinPlan`) is plain picklable data, which is what lets
:mod:`repro.engine.parallel` scatter chunks of the streamed side across
worker processes without re-deriving anything.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.columns import IntColumn, require_numpy, to_numpy
from repro.engine.table import Table

__all__ = [
    "FusedArgmaxPlan",
    "FusedJoinPlan",
    "FusedPartnerPlan",
    "argmax_partner_select",
    "compile_join_plan",
    "fold_model_pairs_arrays",
    "fold_value_counts_arrays",
    "join_group_count",
    "partner_group_count",
]

#: Exclusion-predicate shapes: both operands from the streamed (left) side,
#: one per side, or both from the indexed (right) side.
_EXCL_LL = "LL"
_EXCL_LR = "LR"
_EXCL_RR = "RR"


@dataclass(frozen=True)
class FusedJoinPlan:
    """A compiled fused join+group-count query (schema-level, no data).

    The plan names which physical columns feed the join key, which fill the
    static (left-side) slots of the group key, which right-side payload slots
    fill the rest, and how the optional exclusion predicate is evaluated.
    Slot indices refer to positions in the output group-key tuple; payload
    indices refer to positions in the per-match right-side value tuples
    stored in the hash index.

    Attributes:
        on: join column names (present in both tables).
        width: arity of the group-key tuples the query produces.
        static_slots: ``(slot, left_column_name)`` pairs filled once per left
            row (join columns are read from the left side -- they are equal
            across sides by construction).
        right_slots: ``(slot, payload_index)`` pairs filled once per match.
        right_payload: right-side column names stored in the index, in
            payload order.
        exclusion: ``None`` or ``(shape, a, b)`` where shape is ``"LL"``,
            ``"LR"`` or ``"RR"``; for ``L`` operands the operand is a left
            column name, for ``R`` operands a payload index.
    """

    on: Tuple[str, ...]
    width: int
    static_slots: Tuple[Tuple[int, str], ...]
    right_slots: Tuple[Tuple[int, int], ...]
    right_payload: Tuple[str, ...]
    exclusion: Optional[Tuple[str, Any, Any]]


def compile_join_plan(left: Table, right: Table, on: Sequence[str],
                      keys: Sequence[str],
                      left_prefix: str = "l_", right_prefix: str = "r_",
                      exclude_self_pairs_on: Optional[Tuple[str, str]] = None,
                      ) -> FusedJoinPlan:
    """Compile group keys / exclusion names against the virtual join schema.

    The virtual schema is exactly :func:`repro.engine.ops.hash_join`'s output
    schema -- join columns unprefixed, then prefixed left and right value
    columns -- so callers address columns identically in both formulations.
    """
    for name in on:
        if name not in left.columns or name not in right.columns:
            raise KeyError(f"join column {name!r} missing from one side")
    left_value_cols = [name for name in left.names if name not in on]
    right_value_cols = [name for name in right.names if name not in on]

    payload: List[str] = []

    def payload_index(right_col: str) -> int:
        if right_col not in payload:
            payload.append(right_col)
        return payload.index(right_col)

    def resolve(name: str) -> Tuple[str, Any]:
        """Map an output-schema name to ('L', left column) or ('R', payload idx)."""
        if name in on:
            return ("L", name)
        if name.startswith(left_prefix):
            stripped = name[len(left_prefix):]
            if stripped in left_value_cols:
                return ("L", stripped)
        if name.startswith(right_prefix):
            stripped = name[len(right_prefix):]
            if stripped in right_value_cols:
                return ("R", payload_index(stripped))
        raise KeyError(f"column {name!r} not in join output schema")

    static_slots: List[Tuple[int, str]] = []
    right_slots: List[Tuple[int, int]] = []
    for slot, name in enumerate(keys):
        side, ref = resolve(name)
        if side == "L":
            static_slots.append((slot, ref))
        else:
            right_slots.append((slot, ref))

    exclusion: Optional[Tuple[str, Any, Any]] = None
    if exclude_self_pairs_on is not None:
        try:
            side_a, ref_a = resolve(exclude_self_pairs_on[0])
            side_b, ref_b = resolve(exclude_self_pairs_on[1])
        except KeyError:
            raise KeyError(
                f"exclude_self_pairs_on columns {exclude_self_pairs_on} not in output schema"
            ) from None
        if side_b == "L" and side_a == "R":
            side_a, ref_a, side_b, ref_b = side_b, ref_b, side_a, ref_a
        exclusion = (side_a + side_b, ref_a, ref_b)

    return FusedJoinPlan(
        on=tuple(on),
        width=len(keys),
        static_slots=tuple(static_slots),
        right_slots=tuple(right_slots),
        right_payload=tuple(payload),
        exclusion=exclusion,
    )


def build_right_index(right: Table, plan: FusedJoinPlan,
                      columns: Optional[Dict[str, List[Any]]] = None,
                      ) -> Dict[Hashable, List[Tuple[Any, ...]]]:
    """Hash the right side: join key -> list of payload tuples.

    Single-column join keys are stored unwrapped (scalar keys hash faster
    than 1-tuples and the index is internal to the operator).  ``columns``
    overrides the physical columns (the parallel driver passes
    dictionary-encoded ones); by default the table's own columns are used.
    """
    cols = columns if columns is not None else right.columns
    key_cols = [cols[name] for name in plan.on]
    payload_cols = [cols[name] for name in plan.right_payload]
    index: Dict[Hashable, List[Tuple[Any, ...]]] = {}
    if not key_cols:
        raise ValueError("join requires at least one key column")
    single = len(key_cols) == 1
    key_col0 = key_cols[0]
    for i in range(len(right)):
        key = key_col0[i] if single else tuple(col[i] for col in key_cols)
        entry = index.get(key)
        if entry is None:
            entry = index[key] = []
        entry.append(tuple(col[i] for col in payload_cols))
    return index


def count_join_chunk(payload: Tuple[Any, ...]) -> Counter:
    """Stream one chunk of left rows through the index, counting group keys.

    ``payload`` is plain data -- ``(key_cols, static_cols, excl, right_slots,
    width, index, pack_base)`` with ``excl`` as ``None`` or ``(shape, a, b)``
    where ``L`` operands are column lists and ``R`` operands payload indices
    -- so the same function runs in-process and as a process-pool worker.
    When ``pack_base`` is set the returned counter is keyed by packed ints
    (``left * pack_base + right``) instead of 2-tuples; drivers unpack with
    :func:`unpack_counts`.
    """
    key_cols, static_cols, excl, right_slots, width, index, pack_base = payload
    counts: Counter = Counter()
    if not key_cols:
        return counts
    n = len(key_cols[0])
    single = len(key_cols) == 1
    key_col0 = key_cols[0]
    index_get = index.get
    shape = excl[0] if excl is not None else None

    # Fast path for the model-building shape: one join key, a two-slot group
    # key of (left value, right value), and no exclusion or a left-vs-right
    # one.  This is the loop every pair in the co-occurrence query runs
    # through, so it avoids the slot indirection of the general case.  When
    # the driver proved both group columns integral (``pack_base`` set), the
    # two-int group key is packed into a single int -- hashing a small int is
    # several times cheaper than hashing a 2-tuple, and this loop does one
    # hash per joined pair.  The driver unpacks the distinct keys afterwards.
    if (single and width == 2 and len(static_cols) == 1 and len(right_slots) == 1
            and static_cols[0][0] == 0 and right_slots[0][0] == 1
            and shape in (None, _EXCL_LR)):
        _, left_col = static_cols[0]
        _, right_idx = right_slots[0]
        if pack_base is not None:
            # Packed keys fold through a small bounded buffer so the actual
            # counting happens in C (``Counter.update`` over a list of ints)
            # instead of one interpreted dict-increment per joined pair.
            buffer: List[int] = []
            buffer_append = buffer.append
            flush = counts.update
            if shape is None:
                for i in range(n):
                    matches = index_get(key_col0[i])
                    if not matches:
                        continue
                    packed = left_col[i] * pack_base
                    for match in matches:
                        buffer_append(packed + match[right_idx])
                    if len(buffer) >= 8192:
                        flush(buffer)
                        buffer.clear()
            else:
                _, excl_col, excl_idx = excl
                for i in range(n):
                    matches = index_get(key_col0[i])
                    if not matches:
                        continue
                    packed = left_col[i] * pack_base
                    excl_value = excl_col[i]
                    for match in matches:
                        if excl_value == match[excl_idx]:
                            continue
                        buffer_append(packed + match[right_idx])
                    if len(buffer) >= 8192:
                        flush(buffer)
                        buffer.clear()
            if buffer:
                flush(buffer)
            return counts
        if shape is None:
            for i in range(n):
                matches = index_get(key_col0[i])
                if not matches:
                    continue
                left_value = left_col[i]
                for match in matches:
                    counts[(left_value, match[right_idx])] += 1
        else:
            _, excl_col, excl_idx = excl
            for i in range(n):
                matches = index_get(key_col0[i])
                if not matches:
                    continue
                left_value = left_col[i]
                excl_value = excl_col[i]
                for match in matches:
                    if excl_value == match[excl_idx]:
                        continue
                    counts[(left_value, match[right_idx])] += 1
        return counts

    if excl is not None:
        _, excl_a, excl_b = excl
    parts: List[Any] = [None] * width
    for i in range(n):
        key = key_col0[i] if single else tuple(col[i] for col in key_cols)
        matches = index_get(key)
        if not matches:
            continue
        if shape == _EXCL_LL and excl_a[i] == excl_b[i]:
            continue
        for slot, col in static_cols:
            parts[slot] = col[i]
        for match in matches:
            if shape == _EXCL_LR:
                if excl_a[i] == match[excl_b]:
                    continue
            elif shape == _EXCL_RR:
                if match[excl_a] == match[excl_b]:
                    continue
            for slot, payload_idx in right_slots:
                parts[slot] = match[payload_idx]
            counts[tuple(parts)] += 1
    return counts


def chunk_payload(plan: FusedJoinPlan,
                  columns: Dict[str, List[Any]],
                  index: Dict[Hashable, List[Tuple[Any, ...]]],
                  start: int = 0, stop: Optional[int] = None,
                  pack_base: Optional[int] = None) -> Tuple[Any, ...]:
    """Assemble a :func:`count_join_chunk` payload for left rows [start:stop).

    ``columns`` holds the left table's physical columns (raw or encoded);
    slicing happens here so the parallel driver ships only each worker's
    range of the streamed side.
    """
    def span(col: List[Any]) -> List[Any]:
        return col if start == 0 and stop is None else col[start:stop]

    key_cols = [span(columns[name]) for name in plan.on]
    static_cols = [(slot, span(columns[name])) for slot, name in plan.static_slots]
    excl = plan.exclusion
    if excl is not None:
        shape, a, b = excl
        if shape == _EXCL_LL:
            excl = (shape, span(columns[a]), span(columns[b]))
        elif shape == _EXCL_LR:
            excl = (shape, span(columns[a]), b)
    return (key_cols, static_cols, excl, list(plan.right_slots), plan.width, index,
            pack_base)


def _is_int_column(values: Sequence[Any]) -> bool:
    """True when every value is a plain int (the packable column shape)."""
    return all(type(v) is int for v in values)


def packing_base(plan: FusedJoinPlan, left_columns: Dict[str, List[Any]],
                 right_columns: Dict[str, List[Any]],
                 int_keys: Optional[bool] = None) -> Optional[int]:
    """The int-packing base for a query, or ``None`` when packing is unsound.

    Packing applies to the two-slot fast shape (one left group column at slot
    0, one right at slot 1, exclusion absent or left-vs-right) when the left
    group column holds plain ints and the right one non-negative plain ints;
    ``base = max(right) + 1`` makes ``left * base + right`` bijective, so the
    packed counter unpacks losslessly via divmod.

    ``int_keys`` short-circuits the per-element type scans: ``True`` asserts
    both group columns are plain ints (the caller just dictionary-encoded
    them, say), ``False`` disables packing outright, ``None`` detects.
    """
    shape = plan.exclusion[0] if plan.exclusion is not None else None
    if int_keys is False:
        return None
    if not (len(plan.on) == 1 and plan.width == 2
            and len(plan.static_slots) == 1 and plan.static_slots[0][0] == 0
            and len(plan.right_slots) == 1 and plan.right_slots[0][0] == 1
            and shape in (None, _EXCL_LR)):
        return None
    left_col = left_columns[plan.static_slots[0][1]]
    right_col = right_columns[plan.right_payload[plan.right_slots[0][1]]]
    if int_keys is None and not (_is_int_column(left_col)
                                 and _is_int_column(right_col)):
        return None
    if right_col and min(right_col) < 0:
        return None
    return (max(right_col) + 1) if right_col else 1


def unpack_counts(counts: Counter, pack_base: int) -> Dict[Tuple[Any, ...], int]:
    """Reverse the int packing of a fast-path counter into 2-tuple keys."""
    return {divmod(key, pack_base): count for key, count in counts.items()}


# -- fused partner selection (the priors-planning query shape) --------------------------


@dataclass(frozen=True)
class FusedPartnerPlan:
    """A compiled partner-selection + group-count query (plain picklable data).

    This is the second GPS query shape the engine fuses (the paper's
    Section 5.3 priors planner; :class:`FusedJoinPlan` covers the Section 5.2
    model build).  Rows are *members* grouped into *groups* -- services
    grouped by host -- flattened into offset-indexed columns the same way the
    join plan flattens tables, so chunks of groups slice out of the columns
    and ship to workers as plain data.

    The query: for every member of a multi-member group, select the *partner*
    member (any other member of the same group) whose encoded values score
    highest against the member's label, breaking ties toward the partner with
    the smallest label; fold ``(partner_label, group_key)`` occurrences
    straight into a counter.  Single-member groups contribute their only
    member directly.  No per-group intermediate survives the fold -- peak
    memory is one group's scratch plus the answer counter.

    Scores are exact integer fractions: the score of value ``v`` against
    label ``m`` is ``target_counts[v].get(m, 0) / denominators[v]``, divided
    at fold time with exactly the operands the reference implementation
    divides -- fused and legacy therefore compare bit-identical IEEE doubles
    and select identical partners.  Storing count rows (typically references
    into an existing model's dictionaries) also means compiling a plan never
    materializes a probability table.

    Attributes:
        group_keys: one key per group (the priors planner stores the host's
            subnet key here).
        member_starts: offsets into ``labels``/``value_starts``; group ``g``
            owns members ``member_starts[g]:member_starts[g + 1]``.  Length is
            ``len(group_keys) + 1``.
        labels: per-member integer label (the service's port), ascending
            within each group -- the tie-break order relies on this.
        value_starts: offsets into ``value_ids`` per member; length is
            ``len(labels) + 1``.
        value_ids: dictionary-encoded values (predictor-tuple ids) per member.
        target_counts: per encoded id, ``label -> co-occurrence count``.  May
            alias dictionaries owned by the model the plan was compiled from;
            a plan is a query snapshot, not a container, so compile a fresh
            plan after mutating the model.  Precondition: a value's row never
            contains the label of the member carrying it (true by
            construction for co-occurrence counts, which never count a label
            against itself); the fold's saturation early-exit relies on it.
        denominators: per encoded id, the count's denominator (the value's
            support); must be positive wherever the count row is non-empty.
        allowed_labels: optional label whitelist applied to the *selected*
            partner (and to single-member groups) before counting.
    """

    group_keys: Tuple[int, ...]
    member_starts: Tuple[int, ...]
    labels: Tuple[int, ...]
    value_starts: Tuple[int, ...]
    value_ids: Tuple[int, ...]
    target_counts: Tuple[Dict[int, int], ...]
    denominators: Tuple[int, ...]
    allowed_labels: Optional[frozenset] = None

    def __len__(self) -> int:
        return len(self.group_keys)


def partner_chunk_payload(plan: FusedPartnerPlan, start: int = 0,
                          stop: Optional[int] = None) -> Tuple[Any, ...]:
    """Slice groups ``[start:stop)`` of a partner plan into a worker payload.

    Only the chunk's own span of each flat column is shipped; the score table
    travels whole (it plays the role the right-side hash index plays for the
    join operator -- shared read-only state every worker needs).  Offset
    columns keep their absolute values; :func:`count_partner_chunk` rebases
    them from their first entry.
    """
    if stop is None:
        stop = len(plan.group_keys)
    m_lo, m_hi = plan.member_starts[start], plan.member_starts[stop]
    v_lo, v_hi = plan.value_starts[m_lo], plan.value_starts[m_hi]
    return (
        plan.group_keys[start:stop],
        plan.member_starts[start:stop + 1],
        plan.labels[m_lo:m_hi],
        plan.value_starts[m_lo:m_hi + 1],
        plan.value_ids[v_lo:v_hi],
        plan.target_counts,
        plan.denominators,
        plan.allowed_labels,
    )


def count_partner_chunk(payload: Tuple[Any, ...]) -> Counter:
    """Fold one chunk of groups into ``(partner_label, group_key)`` counts.

    ``payload`` is plain data (see :func:`partner_chunk_payload`), so the
    same function runs in-process and as a process-pool worker.  Per group of
    ``k`` members the scratch is three ``k``-length lists; the selected
    partner folds straight into the counter and the scratch dies with the
    group.
    """
    (group_keys, member_starts, labels, value_starts, value_ids,
     target_counts, denominators, allowed) = payload
    counts: Counter = Counter()
    if not group_keys:
        return counts
    m_base = member_starts[0]
    v_base = value_starts[0]
    for g in range(len(group_keys)):
        lo = member_starts[g] - m_base
        hi = member_starts[g + 1] - m_base
        k = hi - lo
        if k == 0:
            continue
        group_key = group_keys[g]
        if k == 1:
            label = labels[lo]
            if allowed is None or label in allowed:
                counts[(label, group_key)] += 1
            continue
        if k == 2:
            # A two-member group forces the choice: each member's only
            # candidate partner is the other member, whatever its score.
            # Most multi-service hosts have exactly two services, so this
            # path also lets the compiler skip encoding their values.
            first, second = labels[lo], labels[lo + 1]
            if allowed is None or second in allowed:
                counts[(second, group_key)] += 1
            if allowed is None or first in allowed:
                counts[(first, group_key)] += 1
            continue
        members = labels[lo:hi]
        # For every target member i, the running best (score, partner label)
        # over source members j != i.  Scores are folded source-major so each
        # count row is fetched once per source value, and the strict > keeps
        # the first (smallest-label) source on ties -- the documented
        # deterministic tie-break.  A value never scores against its own
        # member (its count row cannot contain its own label), so col[j]
        # stays 0.0 and needs no exclusion test in the inner loop.
        best_score = [-1.0] * k
        best_partner = [0] * k
        full = k - 1
        for j in range(k):
            v_lo = value_starts[lo + j] - v_base
            v_hi = value_starts[lo + j + 1] - v_base
            col = [0.0] * k
            saturated = 0
            for v in range(v_lo, v_hi):
                pid = value_ids[v]
                row = target_counts[pid]
                if not row:
                    continue
                denom = denominators[pid]
                row_get = row.get
                i = 0
                for member in members:
                    count = row_get(member)
                    if count:
                        if count == denom:
                            # Exactly 1.0, the maximum a score can reach;
                            # once every other member is saturated no later
                            # value of this member can improve anything.
                            if col[i] != 1.0:
                                col[i] = 1.0
                                saturated += 1
                        else:
                            score = count / denom
                            if score > col[i]:
                                col[i] = score
                    i += 1
                if saturated == full:
                    break
            partner = members[j]
            for i in range(k):
                if i != j and col[i] > best_score[i]:
                    best_score[i] = col[i]
                    best_partner[i] = partner
        for i in range(k):
            partner = best_partner[i]
            if allowed is None or partner in allowed:
                counts[(partner, group_key)] += 1
    return counts


def partner_group_count(plan: FusedPartnerPlan) -> Dict[Tuple[int, int], int]:
    """Execute a partner plan serially: ``(partner_label, group_key) -> count``.

    The parallel form (:func:`repro.engine.parallel.partitioned_partner_group_count`)
    scatters contiguous group chunks across workers; both produce identical
    counters for any chunking because groups never interact.
    """
    return count_partner_chunk(partner_chunk_payload(plan))


# -- fused argmax partner selection (the prediction-index query shape) --------------------


@dataclass(frozen=True)
class FusedArgmaxPlan:
    """A compiled argmax partner-selection query (plain picklable data).

    The third GPS query shape the engine fuses: the Section 5.4
    most-predictive-feature-values build
    (:meth:`repro.core.predictions.PredictiveFeatureIndex.from_seed`).  The
    layout is the :class:`FusedPartnerPlan` flattening -- groups (hosts) own
    contiguous runs of members (services) which own contiguous runs of
    dictionary-encoded values (predictor-tuple ids) -- but where the partner
    plan folds only the best partner's *label* into a counter, this plan
    tracks the best predictor *identity* alongside the max score: for every
    member, the query selects the single value (drawn from the group's other
    members) whose score against the member's label wins under the reference
    ordering, and emits ``(label, value_id, score)``.

    The reference ordering is exactly
    :meth:`repro.core.model.CooccurrenceModel.best_predictor`'s: maximum
    probability, ties broken toward larger support, then toward the smallest
    predictor *tuple*.  Encoded ids are first-seen-ordered, not
    value-ordered, so the plan carries ``tie_ranks`` -- the rank of each id
    in ascending decoded-tuple order -- making the id-space fold bit-identical
    to the nested-tuple loops.  Selection is two-tier, mirroring the
    ``min_support``-then-fallback call pattern: values with support below
    ``min_support`` are only eligible when no supported value scores
    positively.

    Scores are exact ``count / support`` integer divisions with the very
    operands the reference divides, so probabilities (and the cutoff
    comparison) are bit-identical IEEE doubles.

    Attributes:
        member_starts: group ``g`` owns members
            ``member_starts[g]:member_starts[g + 1]``; length is the number
            of groups plus one.  Groups with fewer than two members
            contribute nothing (the compiler simply omits such hosts).
        labels: per-member integer label (the service's port), ascending
            within each group.
        value_starts: offsets into ``value_ids`` per member.
        value_ids: dictionary-encoded predictor-tuple ids per member.
        target_counts: per encoded id, ``label -> co-occurrence count`` (the
            :class:`FusedPartnerPlan` aliasing notes apply; unlike the
            partner fold, this operator excludes a member's own values
            explicitly, so it does not rely on the self-label precondition).
        denominators: per encoded id, the value's support; positive wherever
            the count row is non-empty.
        tie_ranks: per encoded id, its rank in ascending decoded-value order.
        allowed_labels: optional label whitelist applied to the *target*
            member (disallowed members are skipped, their values still score
            for siblings).
        min_support: minimum support for the preferred selection tier.
        probability_cutoff: selections scoring below this are dropped.
    """

    member_starts: Tuple[int, ...]
    labels: Tuple[int, ...]
    value_starts: Tuple[int, ...]
    value_ids: Tuple[int, ...]
    target_counts: Tuple[Dict[int, int], ...]
    denominators: Tuple[int, ...]
    tie_ranks: Tuple[int, ...]
    allowed_labels: Optional[frozenset] = None
    min_support: int = 1
    probability_cutoff: float = 0.0

    def __len__(self) -> int:
        return len(self.member_starts) - 1


def argmax_chunk_payload(plan: FusedArgmaxPlan, start: int = 0,
                         stop: Optional[int] = None) -> Tuple[Any, ...]:
    """Slice groups ``[start:stop)`` of an argmax plan into a worker payload.

    Mirrors :func:`partner_chunk_payload`: only the chunk's span of each flat
    column ships; the shared side tables (count rows, supports, tie ranks)
    travel whole.  Offsets stay absolute and are rebased by the fold.
    """
    if stop is None:
        stop = len(plan)
    m_lo, m_hi = plan.member_starts[start], plan.member_starts[stop]
    v_lo, v_hi = plan.value_starts[m_lo], plan.value_starts[m_hi]
    return (
        plan.member_starts[start:stop + 1],
        plan.labels[m_lo:m_hi],
        plan.value_starts[m_lo:m_hi + 1],
        plan.value_ids[v_lo:v_hi],
        plan.target_counts,
        plan.denominators,
        plan.tie_ranks,
        plan.allowed_labels,
        plan.min_support,
        plan.probability_cutoff,
    )


def select_argmax_chunk(payload: Tuple[Any, ...]) -> List[Tuple[int, int, float]]:
    """Select one chunk's ``(label, value_id, score)`` winners, in member order.

    ``payload`` is plain data (see :func:`argmax_chunk_payload`), so the same
    function runs in-process and as a process-pool worker.  Per group of
    ``k`` members the scratch is eight ``k``-length lists (the running best
    per target for the supported and fallback tiers); winners append straight
    to the output and the scratch dies with the group.
    """
    (member_starts, labels, value_starts, value_ids, target_counts,
     denominators, tie_ranks, allowed, min_support, cutoff) = payload
    out: List[Tuple[int, int, float]] = []
    groups = len(member_starts) - 1
    if groups <= 0:
        return out
    m_base = member_starts[0]
    v_base = value_starts[0]
    for g in range(groups):
        lo = member_starts[g] - m_base
        hi = member_starts[g + 1] - m_base
        k = hi - lo
        if k < 2:
            continue
        members = labels[lo:hi]
        # Two running bests per target member i: one over values with
        # support >= min_support, one over the rest; the fallback tier only
        # wins when the supported tier stays empty (mirroring the reference's
        # best_predictor(min_support) call followed by the unrestricted one).
        # Scores are folded source-major so each count row is fetched once
        # per value.  A member's own values are excluded explicitly (i != j):
        # the reference draws candidates only from the group's *other*
        # members, and although a predictor tuple produced by the feature
        # extractor embeds its own port (so its count row can never contain
        # it), the operator must match the oracle for any caller-supplied
        # model, not just well-formed co-occurrence counts.
        sup_prob = [0.0] * k
        sup_support = [0] * k
        sup_rank = [0] * k
        sup_id = [-1] * k
        uns_prob = [0.0] * k
        uns_support = [0] * k
        uns_rank = [0] * k
        uns_id = [-1] * k
        for j in range(k):
            v_lo = value_starts[lo + j] - v_base
            v_hi = value_starts[lo + j + 1] - v_base
            for v in range(v_lo, v_hi):
                pid = value_ids[v]
                row = target_counts[pid]
                if not row:
                    continue
                denom = denominators[pid]
                rank = tie_ranks[pid]
                row_get = row.get
                if denom >= min_support:
                    b_prob, b_support = sup_prob, sup_support
                    b_rank, b_id = sup_rank, sup_id
                else:
                    b_prob, b_support = uns_prob, uns_support
                    b_rank, b_id = uns_rank, uns_id
                i = 0
                for member in members:
                    if i != j:
                        count = row_get(member)
                        if count:
                            # prob > 0 always holds here, so the initial
                            # (0.0, 0, _) sentinel can never tie a real score
                            # and the rank comparison only fires between two
                            # genuine candidates -- exactly the reference's
                            # "best is not None" guard.
                            prob = count / denom
                            cur = b_prob[i]
                            if (prob > cur
                                    or (prob == cur
                                        and (denom > b_support[i]
                                             or (denom == b_support[i]
                                                 and rank < b_rank[i])))):
                                b_prob[i] = prob
                                b_support[i] = denom
                                b_rank[i] = rank
                                b_id[i] = pid
                    i += 1
        for i in range(k):
            label = members[i]
            if allowed is not None and label not in allowed:
                continue
            if sup_id[i] >= 0:
                pid, prob = sup_id[i], sup_prob[i]
            elif uns_id[i] >= 0:
                pid, prob = uns_id[i], uns_prob[i]
            else:
                continue
            if prob < cutoff:
                continue
            out.append((label, pid, prob))
    return out


def argmax_partner_select(plan: FusedArgmaxPlan) -> List[Tuple[int, int, float]]:
    """Execute an argmax plan serially: ``(label, value_id, score)`` winners.

    The parallel form (:func:`repro.engine.parallel.partitioned_argmax_partner_select`)
    scatters contiguous group chunks across workers and concatenates the
    per-chunk winner lists; groups never interact, so any chunking produces
    the identical list.
    """
    return select_argmax_chunk(argmax_chunk_payload(plan))


# -- bulk array kernels (the numpy column backend) ---------------------------------------
#
# The folds above stream row-by-row through Python loops -- the stdlib
# backend, and the equivalence oracle for everything below.  When the numpy
# gate is on (see repro.engine.columns), the model-build fold runs instead as
# whole-column ufunc passes over the group-structured buffers: expand the
# join's full multiset of packed keys, sort it, run-length count it, and
# subtract the excluded self pairs.  Sorting machine words is cheaper than a
# per-pair dict hop, and numpy releases the GIL inside its C loops -- which
# is what lets the thread executor fold resident shards concurrently.


def _run_length(np, sorted_values):
    """Distinct values and their run lengths of an already-sorted array."""
    boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries + 1))
    uniq = sorted_values[starts]
    counts = np.diff(np.append(starts, sorted_values.size))
    return uniq, counts


def _int_column_of(np, values) -> IntColumn:
    """An :class:`IntColumn` holding an int64 ndarray's values (one memcpy)."""
    column = IntColumn()
    column.frombytes(np.ascontiguousarray(values, dtype=np.int64).tobytes())
    return column


def fold_model_pairs_arrays(member_starts, labels, value_starts, value_ids,
                            pack_base: int) -> Tuple[IntColumn, IntColumn]:
    """The model-build join fold as bulk array passes (numpy backend).

    Input is the flattened group structure every fused plan uses (and every
    resident shard stores): group ``g`` owns members
    ``member_starts[g]:member_starts[g+1]``, member ``m`` carries the label
    ``labels[m]`` and the encoded values
    ``value_ids[value_starts[m]:value_starts[m+1]]``.  The fold counts, for
    every value of every member, one occurrence per *other* member's label in
    the same group, keyed ``value_id * pack_base + label`` -- exactly the
    packed counter :func:`count_join_chunk` produces for the model join
    (the tests pin the equivalence).

    Precondition: labels are unique within each group (host port runs are,
    by construction) -- the join excludes matches whose label equals the
    carrying member's own, which under uniqueness is exactly one self pair
    per value, subtracted here as a second run-length pass.

    Returns ``(keys, counts)`` sorted by packed key, as picklable
    :class:`IntColumn` buffers (a pool worker's reply needs no numpy on the
    receiving side).
    """
    np = require_numpy()
    ms = to_numpy(member_starts)
    ports = to_numpy(labels)
    vcounts = np.diff(to_numpy(value_starts))
    vids = to_numpy(value_ids)
    n_groups = ms.size - 1
    if n_groups <= 0 or vids.size == 0:
        return IntColumn(), IntColumn()
    sizes = np.diff(ms)
    group_of_member = np.repeat(np.arange(n_groups, dtype=np.int64), sizes)
    member_of_value = np.repeat(
        np.arange(ports.size, dtype=np.int64), vcounts)
    group_of_value = group_of_member[member_of_value]
    reps = sizes[group_of_value]
    total = int(reps.sum())
    if total == 0:
        return IntColumn(), IntColumn()
    # Expand the full multiset (every value x every label of its group,
    # self included): out_starts[v] is where value v's run begins in the
    # output, so (arange - run start + group's member offset) indexes the
    # right span of ``ports`` for every output slot at once.
    out_ends = np.cumsum(reps)
    out_starts = out_ends - reps
    idx = np.arange(total, dtype=np.int64) + np.repeat(
        ms[group_of_value] - out_starts, reps)
    full = np.repeat(vids, reps) * pack_base + ports[idx]
    # In-place sort + run-length count; np.sort over int64 is the whole
    # fold's hot loop and runs GIL-free.  (No argsort anywhere: a stable
    # argsort of the expansion costs an order of magnitude more than the
    # value sort and nothing here needs original positions.)
    full.sort()
    uniq, counts = _run_length(np, full)
    # Subtract the excluded self pairs: each value once against its own
    # member's label.  Every self key exists in ``uniq`` by construction, so
    # searchsorted hits exact positions.
    self_keys = np.sort(vids * pack_base + ports[member_of_value])
    self_uniq, self_counts = _run_length(np, self_keys)
    counts[np.searchsorted(uniq, self_uniq)] -= self_counts
    keep = counts > 0
    return _int_column_of(np, uniq[keep]), _int_column_of(np, counts[keep])


def fold_value_counts_arrays(value_ids) -> Tuple[IntColumn, IntColumn]:
    """``Counter(value_ids)`` as a bulk sort + run-length pass (numpy backend).

    The model build's denominator fold: how many services carry each encoded
    predictor id.  Returns ``(ids, counts)`` sorted by id, as picklable
    :class:`IntColumn` buffers.
    """
    np = require_numpy()
    vids = to_numpy(value_ids)
    if vids.size == 0:
        return IntColumn(), IntColumn()
    ordered = np.sort(vids)
    uniq, counts = _run_length(np, ordered)
    return _int_column_of(np, uniq), _int_column_of(np, counts)


def join_group_count(left: Table, right: Table, on: Sequence[str],
                     keys: Sequence[str],
                     left_prefix: str = "l_", right_prefix: str = "r_",
                     exclude_self_pairs_on: Optional[Tuple[str, str]] = None,
                     int_keys: Optional[bool] = None,
                     ) -> Dict[Tuple[Any, ...], int]:
    """Fused JOIN + GROUP BY ``keys`` + COUNT(*), never materializing the join.

    Exactly equivalent to::

        group_count(hash_join(left, right, on, left_prefix, right_prefix,
                              exclude_self_pairs_on), keys)

    but the quadratic joined relation only ever exists as a stream: each left
    row meets its matches in the right-side hash index and the surviving
    combinations are folded straight into the result counter.

    ``int_keys`` is a performance hint for the packed fast path (see
    :func:`packing_base`); results are identical either way as long as the
    hint is truthful.
    """
    plan = compile_join_plan(left, right, on, keys, left_prefix, right_prefix,
                             exclude_self_pairs_on)
    index = build_right_index(right, plan)
    pack_base = packing_base(plan, left.columns, right.columns, int_keys)
    counts = count_join_chunk(chunk_payload(plan, left.columns, index,
                                            pack_base=pack_base))
    if pack_base is not None:
        return unpack_counts(counts, pack_base)
    return counts
