"""Deterministic fault injection for the runtime and the scanner path.

Robustness claims are worthless unless they are testable, and testable means
*repeatable*: the same seed must produce the same crash at the same point in
the same build, every run, on every machine.  This module provides the two
seeded chaos layers the self-healing runtime is exercised with:

* :class:`FaultPlan` -- a frozen description of *where* faults fire inside the
  pool runtime (worker crashes, injected task exceptions, dropped replies,
  slow replies) and *how lossy* the simulated network is in the scanner path.
  A plan is plain data: it pickles across the spawn boundary into worker
  processes and hashes into cache keys.
* :class:`WorkerFaultState` -- the worker-side interpreter of a plan.  Each
  worker process owns one; it counts matching task occurrences and applies
  the planned fault when the occurrence index matches.
* :class:`ProbeLossModel` -- a seeded, per-(layer, ip, port, attempt) loss
  decision for the scanner simulators.  Losses are *bounded*: after
  ``max_consecutive_losses`` attempts on the same target the probe always
  gets through, which is what makes retry-equivalence provable (with a retry
  budget at least that deep, every ground-truth responder is observed and
  scan results are bit-identical to the lossless run).

Determinism rests on :func:`repro.engine.encoding.stable_hash`, which is
``PYTHONHASHSEED``-independent, so fault decisions agree between the
coordinator and spawned workers without any shared RNG state.

Crash faults (``crash_task``) are gated behind the same environment variable
as the ``_crash`` drill task (``REPRO_RUNTIME_CRASH_TEST=1``) so a stray plan
in production config cannot hard-kill worker processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.encoding import stable_hash

#: Environment gate shared with the ``_crash`` drill task in the runtime:
#: faults that terminate a worker process only fire when this is set to "1".
CRASH_TEST_ENV = "REPRO_RUNTIME_CRASH_TEST"

#: Exit code used by injected worker crashes (distinct from the drill's 17).
FAULT_CRASH_EXIT_CODE = 23

_HASH_SPAN = float(2**64)
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """Finalize a 64-bit hash into a uniformly distributed 64-bit value.

    :func:`stable_hash` is a *partitioning* hash: nearby keys (consecutive
    addresses, small attempt indices) land on nearby outputs, which is
    exactly wrong for a loss draw -- without mixing, one decision would
    effectively cover a whole sweep.  The splitmix64 finalizer avalanches
    every input bit across the output, turning the stable hash into an
    independent per-target coin.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of injected faults.

    Runtime fields (interpreted by :class:`WorkerFaultState` inside worker
    processes):

    Attributes:
        seed: base seed folded into every loss-model decision.
        generation: pool spawn generation the runtime faults fire in.  Workers
            respawned during recovery run at generation ``old + 1``, so the
            default of ``0`` means "fault the original workers once and let
            recovery proceed cleanly" -- the shape every deterministic
            recovery test wants.  ``None`` faults every generation (used to
            exhaust the retry budget).
        crash_task: name of the runtime task (or the literal ``"load"``)
            whose Nth matching occurrence hard-kills the worker via
            ``os._exit``.  Gated behind ``REPRO_RUNTIME_CRASH_TEST=1``.
        crash_workers: worker ids the crash applies to (empty tuple = all).
        crash_at: 0-based occurrence index of the matching task at which the
            crash fires.
        error_task / error_at: inject a ``RuntimeError`` (surfaced as a
            normal task failure) at the Nth occurrence of a task.
        drop_reply_task / drop_reply_at: compute the task but never reply --
            the deterministic way to wedge a live worker for deadline tests.
        slow_task / slow_seconds: sleep before replying to matching tasks.

    Scanner fields (interpreted by :class:`ProbeLossModel`):

    Attributes:
        probe_loss_rate: probability in ``[0, 1)`` that a probe attempt is
            dropped.
        max_consecutive_losses: hard bound on losses for one (layer, ip,
            port) target; the attempt with this index always succeeds.
        max_probe_retries: retry budget the scan pipeline threads into the
            simulators; must be ``>= max_consecutive_losses`` for loss to be
            coverage-neutral.
        retry_backoff_s: simulated per-retry backoff (kept tiny; it exists so
            the retry loop has the same shape as a real scanner's).
    """

    seed: int = 0
    generation: Optional[int] = 0
    crash_task: Optional[str] = None
    crash_workers: Tuple[int, ...] = ()
    crash_at: int = 0
    error_task: Optional[str] = None
    error_workers: Tuple[int, ...] = ()
    error_at: int = 0
    drop_reply_task: Optional[str] = None
    drop_reply_workers: Tuple[int, ...] = ()
    drop_reply_at: int = 0
    slow_task: Optional[str] = None
    slow_workers: Tuple[int, ...] = ()
    slow_seconds: float = 0.0
    probe_loss_rate: float = 0.0
    max_consecutive_losses: int = 2
    max_probe_retries: int = 3
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probe_loss_rate < 1.0:
            raise ValueError("probe_loss_rate must be in [0, 1)")
        if self.max_consecutive_losses < 1:
            raise ValueError("max_consecutive_losses must be at least 1")
        if self.max_probe_retries < 0:
            raise ValueError("max_probe_retries must be non-negative")
        if self.slow_seconds < 0 or self.retry_backoff_s < 0:
            raise ValueError("durations must be non-negative")
        if self.probe_loss_rate > 0 and (
                self.max_probe_retries < self.max_consecutive_losses):
            raise ValueError(
                "max_probe_retries must cover max_consecutive_losses so loss "
                "stays coverage-neutral")

    # -- runtime-side queries ---------------------------------------------------------

    def touches_runtime(self) -> bool:
        """Whether any runtime (non-scanner) fault is configured."""
        return any((self.crash_task, self.error_task,
                    self.drop_reply_task, self.slow_task))

    def loss_model(self) -> Optional["ProbeLossModel"]:
        """The scanner loss model, or ``None`` when the plan is lossless."""
        if self.probe_loss_rate == 0.0:
            return None
        return ProbeLossModel(seed=self.seed,
                              loss_rate=self.probe_loss_rate,
                              max_consecutive_losses=self.max_consecutive_losses)


class WorkerFaultState:
    """Worker-side interpreter of a :class:`FaultPlan`.

    One instance lives inside each worker process; it tracks how many times
    each planned task name has been seen and fires the planned fault when the
    occurrence index matches.  All decisions are pure functions of the plan
    plus local counters, so two runs of the same plan against the same task
    stream behave identically.
    """

    def __init__(self, plan: Optional[FaultPlan], worker_id: int,
                 generation: int = 0) -> None:
        self.plan = plan
        self.worker_id = worker_id
        self.generation = generation
        self._crash_seen = 0
        self._error_seen = 0
        self._drop_seen = 0

    def _active(self, workers: Tuple[int, ...]) -> bool:
        plan = self.plan
        if plan is None:
            return False
        if plan.generation is not None and plan.generation != self.generation:
            return False
        return not workers or self.worker_id in workers

    def on_task(self, task_name: str) -> None:
        """Apply pre-execution faults (crash / slow) for ``task_name``.

        Raises:
            SystemExit: never -- crashes use ``os._exit`` to mimic a hard
                worker death (no cleanup, no queue flush), exactly what the
                supervisor must recover from.
        """
        plan = self.plan
        if plan is None:
            return
        if (plan.crash_task == task_name and self._active(plan.crash_workers)):
            occurrence = self._crash_seen
            self._crash_seen += 1
            if occurrence == plan.crash_at:
                if os.environ.get(CRASH_TEST_ENV) != "1":
                    raise RuntimeError(
                        f"FaultPlan crash requires {CRASH_TEST_ENV}=1")
                os._exit(FAULT_CRASH_EXIT_CODE)
        if (plan.slow_task == task_name and self._active(plan.slow_workers)
                and plan.slow_seconds > 0):
            import time
            time.sleep(plan.slow_seconds)

    def should_error(self, task_name: str) -> bool:
        """Whether to raise an injected exception for this task occurrence."""
        plan = self.plan
        if plan is None or plan.error_task != task_name:
            return False
        if not self._active(plan.error_workers):
            return False
        occurrence = self._error_seen
        self._error_seen += 1
        return occurrence == plan.error_at

    def should_drop_reply(self, task_name: str) -> bool:
        """Whether to compute but swallow the reply for this occurrence."""
        plan = self.plan
        if plan is None or plan.drop_reply_task != task_name:
            return False
        if not self._active(plan.drop_reply_workers):
            return False
        occurrence = self._drop_seen
        self._drop_seen += 1
        return occurrence == plan.drop_reply_at


@dataclass(frozen=True)
class ProbeLossModel:
    """Seeded per-probe loss decisions with bounded consecutive losses.

    The decision for attempt ``k`` on target ``(layer, ip, port)`` is a pure
    function of ``(seed, layer, ip, port, k)`` via ``stable_hash``, so the
    coordinator, tests, and any re-run agree on exactly which probes drop.
    Attempt indices at or beyond ``max_consecutive_losses`` never drop, which
    bounds the worst case and keeps retry loops finite and provably
    coverage-neutral.
    """

    seed: int
    loss_rate: float
    max_consecutive_losses: int = 2

    def lost(self, layer: str, ip: int, port: int, attempt: int = 0) -> bool:
        """Whether this probe attempt is dropped by the simulated network."""
        if self.loss_rate <= 0.0 or attempt >= self.max_consecutive_losses:
            return False
        draw = _mix64(stable_hash((self.seed, layer, ip, port, attempt)))
        return draw / _HASH_SPAN < self.loss_rate


__all__ = [
    "CRASH_TEST_ENV",
    "FAULT_CRASH_EXIT_CODE",
    "FaultPlan",
    "ProbeLossModel",
    "WorkerFaultState",
]
