"""Parallelizable computation engine: the reproduction's BigQuery substitute.

The paper implements GPS's model building -- self-joining the seed scan to
find all pairwise feature/port combinations, aggregating identical patterns,
and computing conditional probabilities -- as SQL on Google BigQuery, because
the computation is "heavily reading data, aggregating, and joining among
shared data fields" (Section 5.5) and embarrassingly parallel.

Offline we cannot use BigQuery, so this package provides the same primitives:

* :class:`~repro.engine.table.Table` -- a small in-memory columnar table;
* :mod:`~repro.engine.ops` -- projection, filtering, hash join and group-by
  aggregation over tables;
* :mod:`~repro.engine.fused` -- the fused streaming ``join_group_count``
  operator, which folds the self-join directly into per-key counters without
  materializing the joined table (the hot path of model building);
* :mod:`~repro.engine.encoding` -- dictionary encoding of hashable values to
  dense integer ids (cheap grouping keys, ``PYTHONHASHSEED``-independent
  sharding, compact cross-process payloads);
* :mod:`~repro.engine.parallel` -- executors that scatter streamed chunks and
  run them serially, on a thread pool, or on a process pool, so the Table 2
  experiment can measure how GPS's prediction computation scales with the
  degree of parallelism;
* :mod:`~repro.engine.shard` -- ``PYTHONHASHSEED``-independent hash
  partitioning of encoded columns into shards with a stable identity;
* :mod:`~repro.engine.runtime` -- the persistent execution runtime: one
  shared worker pool (``serial`` / ``thread`` / ``pool`` executors) that
  holds sharded columns resident and executes every fused plan without
  per-call process spawn.

GPS's model (:mod:`repro.core.model`) ships two implementations: a direct
dictionary-based one (the single-core reference) and one expressed against
this engine; the test suite asserts they produce identical probabilities.
"""

from repro.engine.table import Column, Table
from repro.engine.encoding import DictionaryEncoder, stable_hash
from repro.engine.fused import join_group_count
from repro.engine.ops import (
    aggregate,
    filter_rows,
    group_count,
    hash_join,
    project,
)
from repro.engine.parallel import (
    ExecutorConfig,
    ParallelExecutor,
    SerialExecutor,
    ThreadPoolExecutorBackend,
    ProcessPoolExecutorBackend,
    make_executor,
    partitioned_group_count,
    partitioned_join_group_count,
)
from repro.engine.runtime import (
    RUNTIME_EXECUTORS,
    EngineRuntime,
    WorkerCrashError,
    WorkerTaskError,
)
from repro.engine.shard import ShardedColumns, shard_columns, shard_group_columns

__all__ = [
    "Column",
    "Table",
    "DictionaryEncoder",
    "stable_hash",
    "project",
    "filter_rows",
    "hash_join",
    "group_count",
    "join_group_count",
    "aggregate",
    "ExecutorConfig",
    "ParallelExecutor",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "make_executor",
    "partitioned_group_count",
    "partitioned_join_group_count",
    "RUNTIME_EXECUTORS",
    "EngineRuntime",
    "WorkerCrashError",
    "WorkerTaskError",
    "ShardedColumns",
    "shard_columns",
    "shard_group_columns",
]
