"""Dictionary encoding: interning hashable values as dense integer ids.

The engine's hot values -- predictor tuples especially -- are nested tuples
mixing strings and ints.  Grouping, sharding and (worst of all) pickling them
across process boundaries pays the full cost of their structure on every
touch.  A :class:`DictionaryEncoder` interns each distinct value once and
hands out a dense integer id, so the rest of a query operates on flat ints:

* grouping keys become ints (or short int tuples), which hash and compare in
  a few nanoseconds;
* partitioning can shard on the id itself, independent of
  ``PYTHONHASHSEED``;
* the process backend ships columns of ints instead of lists of nested
  tuples, which shrinks and speeds up the pickle payloads dramatically.

Ids are assigned in first-seen order, so encoding is deterministic for a
deterministic input stream; :meth:`DictionaryEncoder.decode` reverses the
mapping when the query result is reassembled into model dictionaries.

:func:`stable_hash` is the companion sharding hash: unlike the builtin
``hash``, it does not vary with ``PYTHONHASHSEED`` for str-bearing values, so
hash-partitioned runs are bit-reproducible across interpreter invocations.
"""

from __future__ import annotations

import zlib
from typing import Any, Hashable, Iterable, List, Sequence

__all__ = ["DictionaryEncoder", "stable_hash"]


class DictionaryEncoder:
    """Bidirectional mapping between hashable values and dense integer ids.

    One encoder instance defines one id space: equal values always receive
    the same id and distinct values distinct ids, so comparing ids is exactly
    comparing values.  A single encoder can therefore intern values from many
    columns at once (join keys, group keys, exclusion columns) and equality
    semantics survive the encoding.
    """

    def __init__(self) -> None:
        self._ids: dict = {}
        self._values: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: Hashable) -> int:
        """Return the id for ``value``, assigning the next dense id if new."""
        ids = self._ids
        existing = ids.get(value)
        if existing is not None:
            return existing
        new_id = len(self._values)
        ids[value] = new_id
        self._values.append(value)
        return new_id

    def encode_column(self, values: Iterable[Hashable]) -> List[int]:
        """Encode a whole column, returning the parallel list of ids."""
        ids = self._ids
        out: List[int] = []
        append = out.append
        for value in values:
            existing = ids.get(value)
            if existing is None:
                existing = len(self._values)
                ids[value] = existing
                self._values.append(value)
            append(existing)
        return out

    def values(self) -> List[Hashable]:
        """The interned values in id order (``values()[i]`` decodes id ``i``).

        Side tables aligned with the id space are built from this view: the
        fused priors planner, for example, derives one probability row per
        interned predictor tuple by iterating the values once after all
        columns are encoded.
        """
        return list(self._values)

    def decode(self, encoded: int) -> Hashable:
        """Return the value interned under ``encoded``."""
        try:
            return self._values[encoded]
        except IndexError:
            raise KeyError(f"unknown encoded id: {encoded}") from None

    def decode_tuple(self, encoded: Sequence[int]) -> tuple:
        """Decode a tuple of ids element-wise (group keys come back this way)."""
        values = self._values
        return tuple(values[i] for i in encoded)


def stable_hash(value: Any) -> int:
    """A deterministic, ``PYTHONHASHSEED``-independent hash for sharding.

    Like the builtin ``hash`` it is consistent with equality for the value
    kinds the engine stores (ints, bools and integral floats that compare
    equal hash equal; equal tuples hash equal regardless of element repr),
    but unlike the builtin it does not vary with ``PYTHONHASHSEED``, so
    hash-partitioned runs are bit-reproducible.  Integers hash to themselves
    (dictionary-encoded ids shard round-robin with perfect balance); tuples
    combine element hashes recursively; strings and everything else hash via
    CRC-32.  This is a *partitioning* hash, not a cryptographic one.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # 2.0 == 2 must hash equal; non-integral floats never equal ints.
        if value.is_integer():
            return int(value)
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, tuple):
        # CPython-style tuple combination over stable element hashes, folded
        # to 64 bits; equal tuples combine equal element hashes.
        combined = 0x345678
        for item in value:
            combined = ((combined * 1000003) ^ stable_hash(item)) & 0xFFFFFFFFFFFFFFFF
        return combined
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if value is None:
        return 0x6E6F6E65  # "none"
    return zlib.crc32(repr(value).encode("utf-8"))
