"""Relational operations over :class:`~repro.engine.table.Table`.

These are the four operations the GPS model-building "query" needs, mirroring
the SQL the paper runs on BigQuery (Section 5.5):

* :func:`project` / :func:`filter_rows` -- SELECT column subsets and WHERE
  predicates;
* :func:`hash_join` -- the self-JOIN of the seed scan on the host address that
  produces every pairwise combination of a host's services;
* :func:`group_count` / :func:`aggregate` -- GROUP BY feature pattern and
  target port, counting occurrences, from which conditional probabilities are
  derived.

Everything is a pure function from tables to tables (or dictionaries), which
is what lets :mod:`repro.engine.parallel` run the same operations partitioned
across workers.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.engine.table import Table


def project(table: Table, names: Sequence[str]) -> Table:
    """Return a table with only the requested columns (SELECT a, b, ...)."""
    missing = [name for name in names if name not in table.columns]
    if missing:
        raise KeyError(f"unknown columns: {missing}")
    return Table(columns={name: list(table.columns[name]) for name in names})


class _RowView(Mapping):
    """A zero-copy mapping view of one row, re-aimed at successive indices.

    ``filter_rows`` hands the predicate one of these instead of building a
    fresh ``dict(zip(names, row))`` per row: lookups go straight to the
    backing columns, so only the fields the predicate actually touches are
    read.  The view is only valid during the predicate call; predicates that
    need to retain a row must copy it (``dict(record)``).
    """

    __slots__ = ("_columns", "_names", "_index")

    def __init__(self, columns: Dict[str, List[Any]]) -> None:
        self._columns = columns
        self._names = list(columns)
        self._index = 0

    def __getitem__(self, name: str) -> Any:
        return self._columns[name][self._index]

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


def filter_rows(table: Table, predicate: Callable[[Mapping[str, Any]], bool]) -> Table:
    """Return the rows for which ``predicate(record)`` is true (WHERE ...).

    The predicate receives a column-backed mapping view of the row rather
    than a materialized dict, and the output table is assembled column-wise
    from the surviving indices.
    """
    view = _RowView(table.columns)
    keep: List[int] = []
    for i in range(len(table)):
        view._index = i
        if predicate(view):
            keep.append(i)
    return Table(columns={
        name: [col[i] for i in keep] for name, col in table.columns.items()
    })


def hash_join(left: Table, right: Table, on: Sequence[str],
              left_prefix: str = "l_", right_prefix: str = "r_",
              exclude_self_pairs_on: Tuple[str, str] | None = None) -> Table:
    """Inner hash join of two tables on equality of the ``on`` columns.

    Output columns are the join keys (unprefixed) plus every non-key column of
    each side with the corresponding prefix.  When
    ``exclude_self_pairs_on=(left_col, right_col)`` is given, rows where the
    two (prefixed) columns are equal are dropped -- this is how the GPS
    self-join excludes the trivial pairing of a service with itself.
    """
    for name in on:
        if name not in left.columns or name not in right.columns:
            raise KeyError(f"join column {name!r} missing from one side")

    left_value_cols = [name for name in left.names if name not in on]
    right_value_cols = [name for name in right.names if name not in on]
    out_names = (list(on)
                 + [left_prefix + name for name in left_value_cols]
                 + [right_prefix + name for name in right_value_cols])

    # Build the hash index over the right side.
    index: Dict[Tuple[Hashable, ...], List[Tuple[Any, ...]]] = {}
    right_key_cols = [right.columns[name] for name in on]
    right_val_cols = [right.columns[name] for name in right_value_cols]
    for i in range(len(right)):
        key = tuple(col[i] for col in right_key_cols)
        value = tuple(col[i] for col in right_val_cols)
        index.setdefault(key, []).append(value)

    exclude_left = exclude_right = None
    if exclude_self_pairs_on is not None:
        exclude_left, exclude_right = exclude_self_pairs_on
        if exclude_left not in out_names or exclude_right not in out_names:
            raise KeyError(
                f"exclude_self_pairs_on columns {exclude_self_pairs_on} not in output schema"
            )

    left_key_cols = [left.columns[name] for name in on]
    left_val_cols = [left.columns[name] for name in left_value_cols]
    rows: List[Tuple[Any, ...]] = []
    for i in range(len(left)):
        key = tuple(col[i] for col in left_key_cols)
        matches = index.get(key)
        if not matches:
            continue
        left_values = tuple(col[i] for col in left_val_cols)
        for right_values in matches:
            row = key + left_values + right_values
            rows.append(row)

    table = Table.from_rows(out_names, rows)
    if exclude_left is not None and exclude_right is not None and len(table):
        left_col = table.columns[exclude_left]
        right_col = table.columns[exclude_right]
        keep = [i for i in range(len(table)) if left_col[i] != right_col[i]]
        table = Table(columns={
            name: [col[i] for i in keep] for name, col in table.columns.items()
        })
    return table


def group_count(table: Table, keys: Sequence[str]) -> Dict[Tuple[Any, ...], int]:
    """GROUP BY ``keys`` and COUNT(*) -- the core aggregation of model building."""
    return Counter(table.iter_rows(keys))


def aggregate(table: Table, keys: Sequence[str], value: str,
              func: Callable[[List[Any]], Any]) -> Dict[Tuple[Any, ...], Any]:
    """GROUP BY ``keys`` and apply ``func`` to the list of ``value`` entries."""
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    value_col = table.columns[value]
    key_cols = [table.columns[name] for name in keys]
    for i in range(len(table)):
        key = tuple(col[i] for col in key_cols)
        groups.setdefault(key, []).append(value_col[i])
    return {key: func(values) for key, values in groups.items()}


def distinct_count(table: Table, keys: Sequence[str], value: str) -> Dict[Tuple[Any, ...], int]:
    """GROUP BY ``keys`` and COUNT(DISTINCT value)."""
    groups: Dict[Tuple[Any, ...], set] = {}
    value_col = table.columns[value]
    key_cols = [table.columns[name] for name in keys]
    for i in range(len(table)):
        key = tuple(col[i] for col in key_cols)
        groups.setdefault(key, set()).add(value_col[i])
    return {key: len(values) for key, values in groups.items()}
