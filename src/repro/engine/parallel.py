"""Partitioned parallel execution of engine operations.

GPS's key computational claim is that its conditional-probability model is
embarrassingly parallel: the co-occurrence counts for disjoint feature
partitions never interact, so the work can be sharded across however many
workers are available (BigQuery slots in the paper, worker threads/processes
here).  The Table 2 benchmark sweeps the worker count and reports wall-clock
scaling of the same model computation.

Three backends share one interface:

* :class:`SerialExecutor` -- runs partitions in the calling thread (the
  single-core reference configuration of Table 2);
* :class:`ThreadPoolExecutorBackend` -- runs partitions on a thread pool
  (cheap to spin up; limited by the GIL for pure-Python aggregation but still
  useful for validating the partitioning logic);
* :class:`ProcessPoolExecutorBackend` -- runs partitions on a process pool
  (true parallelism; partition payloads must be picklable).

Partitioned aggregation is *streaming*: rows are scattered to workers in
contiguous chunks during a single pass over the input, each worker folds its
chunk into a local :class:`collections.Counter`, and the local counters are
summed at the end.  Nothing is re-materialized or hash-sharded up front, and
the merged result is independent of the chunking, so runs are deterministic
for any worker count.  On the process backend, values are dictionary-encoded
(:mod:`repro.engine.encoding`) before scattering so the pickle payloads are
flat integer columns rather than lists of nested tuples.

:func:`partitioned_group_count` is the parallel form of
:func:`repro.engine.ops.group_count`; :func:`partitioned_join_group_count`
is the parallel form of the fused :func:`repro.engine.fused.join_group_count`
(chunks of the streamed join side scatter across workers, each carrying the
shared right-side hash index).

Every partitioned operation can alternatively dispatch through a persistent
:class:`repro.engine.runtime.EngineRuntime` (the ``runtime`` parameter): the
same chunk payloads ship to the runtime's long-lived workers instead of a
freshly spawned pool, so per-call process start-up disappears while results
stay bit-identical.  The runtime additionally supports *resident* datasets
(ship the columns once, then only plans -- see
:mod:`repro.core.runtime_plans`), which is what the GPS orchestrator uses.
"""

from __future__ import annotations

import concurrent.futures
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.engine.encoding import DictionaryEncoder, stable_hash
from repro.engine.fused import (
    FusedArgmaxPlan,
    FusedJoinPlan,
    FusedPartnerPlan,
    argmax_chunk_payload,
    build_right_index,
    chunk_payload,
    compile_join_plan,
    count_join_chunk,
    count_partner_chunk,
    packing_base,
    partner_chunk_payload,
    select_argmax_chunk,
    unpack_counts,
)
from repro.engine.runtime import EngineRuntime, WorkerCrashError
from repro.engine.table import Table


def _dispatch_plan(config: Optional["ExecutorConfig"],
                   runtime: Optional[EngineRuntime]) -> Tuple[int, bool]:
    """Validate the dispatch choice; return (parallel degree, encode payloads).

    Exactly one of ``config`` (per-call executor) and ``runtime`` (persistent
    pool) must be provided; payloads are dictionary-encoded whenever they
    cross a process boundary.
    """
    if (config is None) == (runtime is None):
        raise ValueError("provide exactly one of config and runtime")
    if runtime is not None:
        return runtime.num_workers, runtime.wants_encoded_payloads
    return config.workers, config.backend == "process"


def _run_chunks(config: Optional["ExecutorConfig"], runtime: Optional[EngineRuntime],
                local_func: Callable[[Any], Any], task_name: str,
                payloads: Sequence[Any]) -> List[Any]:
    """Run chunk payloads on the chosen dispatcher, results in payload order."""
    if runtime is not None:
        return runtime.map_stateless(task_name, payloads)
    return make_executor(config).map(local_func, payloads)


@dataclass(frozen=True)
class ExecutorConfig:
    """How to run partitioned work.

    Attributes:
        backend: ``"serial"``, ``"thread"`` or ``"process"``.
        workers: number of partitions/workers (ignored for ``"serial"``).
    """

    backend: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend: {self.backend}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class ParallelExecutor:
    """Interface: run a map function over partitions and merge the results."""

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        """Apply ``func`` to every partition, returning results in order."""
        raise NotImplementedError


class SerialExecutor(ParallelExecutor):
    """Runs every partition in the calling thread."""

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        return [func(partition) for partition in partitions]


class ThreadPoolExecutorBackend(ParallelExecutor):
    """Runs partitions on a thread pool."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(func, partitions))


class ProcessPoolExecutorBackend(ParallelExecutor):
    """Runs partitions on a process pool (func and partitions must pickle).

    Unlike the persistent runtime's supervised pool, this per-call pool has
    nothing to recover into -- it dies with the call -- so a worker crash is
    translated to the engine's uniform :class:`WorkerCrashError` instead of
    leaking :class:`concurrent.futures.process.BrokenProcessPool`.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            try:
                return list(pool.map(func, partitions))
            except concurrent.futures.process.BrokenProcessPool as exc:
                raise WorkerCrashError(
                    "a process-pool worker died mid-partition; per-call pools "
                    "are not supervised (use the persistent 'pool' runtime "
                    f"executor for crash recovery): {exc}") from exc


def make_executor(config: ExecutorConfig) -> ParallelExecutor:
    """Instantiate the executor described by ``config``."""
    if config.backend == "serial":
        return SerialExecutor()
    if config.backend == "thread":
        return ThreadPoolExecutorBackend(config.workers)
    return ProcessPoolExecutorBackend(config.workers)


# -- partitioned group-count -----------------------------------------------------------


def _count_rows(rows: Sequence[Hashable]) -> Counter:
    """Count occurrences of each key in one chunk (worker function)."""
    return Counter(rows)


def partition_rows(rows: Iterable[Tuple[Hashable, ...]],
                   partitions: int) -> List[List[Tuple[Hashable, ...]]]:
    """Shard rows by a stable hash of their key tuple into ``partitions`` buckets.

    Sharding uses :func:`repro.engine.encoding.stable_hash`, not the builtin
    ``hash``, so the shard a key lands in does not depend on
    ``PYTHONHASHSEED``: parallel runs are bit-reproducible across interpreter
    invocations even for str-bearing keys.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    shards: List[List[Tuple[Hashable, ...]]] = [[] for _ in range(partitions)]
    for row in rows:
        shards[stable_hash(row) % partitions].append(row)
    return shards


def _contiguous_chunks(items: Sequence[Any], chunk_count: int) -> List[Sequence[Any]]:
    """Split a sequence into at most ``chunk_count`` contiguous slices."""
    count = min(len(items), max(1, chunk_count))
    if count <= 1:
        return [items]
    size = (len(items) + count - 1) // count
    return [items[start:start + size] for start in range(0, len(items), size)]


def merge_counters(counters: Iterable[Counter]) -> Counter:
    """Sum per-worker local counters into the final result.

    The canonical reduce step of every partitioned count in the engine
    (per-call backends and the persistent runtime alike): counter addition
    is commutative, so the merged result is independent of chunking, shard
    layout and arrival order.
    """
    merged: Counter = Counter()
    for counts in counters:
        merged.update(counts)
    return merged


#: Backwards-compatible private alias (pre-runtime name).
_merge_counters = merge_counters


def partitioned_group_count(table: Table, keys: Sequence[str],
                            config: Optional[ExecutorConfig] = None,
                            runtime: Optional[EngineRuntime] = None,
                            ) -> Dict[Tuple[Hashable, ...], int]:
    """GROUP BY + COUNT(*) executed across partitions.

    Equivalent to :func:`repro.engine.ops.group_count`; the test suite checks
    the equivalence property on random tables.  Rows scatter to workers in
    contiguous chunks straight off a single streaming pass; each worker
    counts its chunk locally and the local counters are summed, so no
    key-disjointness precondition (and no up-front hash-sharding pass) is
    needed.  When the payload crosses a process boundary each key tuple is
    dictionary-encoded to one integer first, so workers receive flat
    ``List[int]`` payloads.  ``runtime`` dispatches the same chunks to a
    persistent worker pool instead of spawning one for this call.
    """
    workers, encode = _dispatch_plan(config, runtime)
    if encode:
        encoder = DictionaryEncoder()
        encoded = encoder.encode_column(table.iter_rows(keys))
        chunks = _contiguous_chunks(encoded, workers)
        merged = _merge_counters(
            _run_chunks(config, runtime, _count_rows, "count_rows", chunks))
        return {encoder.decode(key_id): count for key_id, count in merged.items()}
    rows = list(table.iter_rows(keys))
    chunks = _contiguous_chunks(rows, workers)
    return _merge_counters(
        _run_chunks(config, runtime, _count_rows, "count_rows", chunks))


# -- partitioned fused join + group-count ----------------------------------------------


def _plan_left_columns(plan: FusedJoinPlan) -> List[str]:
    """Left-table columns the fused operator actually reads."""
    names = list(plan.on) + [name for _, name in plan.static_slots]
    if plan.exclusion is not None:
        shape, a, b = plan.exclusion
        if shape == "LL":
            names.extend((a, b))
        elif shape == "LR":
            names.append(a)
    seen: List[str] = []
    for name in names:
        if name not in seen:
            seen.append(name)
    return seen


def partitioned_join_group_count(
        left: Table, right: Table, on: Sequence[str], keys: Sequence[str],
        config: Optional[ExecutorConfig] = None,
        left_prefix: str = "l_", right_prefix: str = "r_",
        exclude_self_pairs_on: Optional[Tuple[str, str]] = None,
        int_keys: Optional[bool] = None,
        runtime: Optional[EngineRuntime] = None,
) -> Dict[Tuple[Any, ...], int]:
    """Parallel form of :func:`repro.engine.fused.join_group_count`.

    The right side is hashed once; contiguous chunks of the streamed left
    side scatter across workers, each folding into a local counter that is
    summed at the end.  The joined relation is never materialized on any
    backend.  When the payload crosses a process boundary every value (join
    keys, group values, exclusion operands) is interned through one shared
    :class:`~repro.engine.encoding.DictionaryEncoder`, so the pickled
    payloads are integer columns and an integer-keyed index; group keys are
    decoded after the merge.  ``runtime`` dispatches the same chunk payloads
    to a persistent worker pool instead of spawning one for this call.
    """
    workers, encode = _dispatch_plan(config, runtime)
    plan = compile_join_plan(left, right, on, keys, left_prefix, right_prefix,
                             exclude_self_pairs_on)
    if not len(left) or not len(right):
        return Counter()

    encoder: Optional[DictionaryEncoder] = None
    if encode:
        encoder = DictionaryEncoder()
        left_cols: Dict[str, List[Any]] = {
            name: encoder.encode_column(left.columns[name])
            for name in _plan_left_columns(plan)
        }
        right_cols: Dict[str, List[Any]] = {
            name: encoder.encode_column(right.columns[name])
            for name in (*plan.on, *plan.right_payload)
        }
        index = build_right_index(right, plan, columns=right_cols)
        int_keys = True  # every shipped column was just dictionary-encoded
    else:
        left_cols = left.columns
        right_cols = right.columns
        index = build_right_index(right, plan)

    pack_base = packing_base(plan, left_cols, right_cols, int_keys)
    n = len(left)
    chunk_count = min(n, max(1, workers))
    size = (n + chunk_count - 1) // chunk_count
    payloads = [
        chunk_payload(plan, left_cols, index, start, min(start + size, n),
                      pack_base=pack_base)
        for start in range(0, n, size)
    ]
    merged = _merge_counters(
        _run_chunks(config, runtime, count_join_chunk, "join_chunk", payloads))
    counts: Dict[Tuple[Any, ...], int] = (
        unpack_counts(merged, pack_base) if pack_base is not None else merged
    )
    if encoder is not None:
        return {encoder.decode_tuple(key): count for key, count in counts.items()}
    return counts


def partitioned_partner_group_count(plan: FusedPartnerPlan,
                                    config: Optional[ExecutorConfig] = None,
                                    runtime: Optional[EngineRuntime] = None,
                                    ) -> Dict[Tuple[int, int], int]:
    """Parallel form of :func:`repro.engine.fused.partner_group_count`.

    Contiguous chunks of the plan's groups scatter across workers, each
    folding its chunk into a local counter that is summed at the end.  Groups
    are independent (the priors planner's hosts never interact), so the
    merged result is identical for any worker count and backend.  The plan's
    columns are already dictionary-encoded flat integers, so process-pool
    payloads pickle cheaply without a re-encoding pass; the shared score
    table ships whole to every worker, like the join operator's right-side
    index.  ``runtime`` dispatches the same chunk payloads to a persistent
    worker pool instead of spawning one for this call.
    """
    workers, _ = _dispatch_plan(config, runtime)
    n = len(plan.group_keys)
    if n == 0:
        return Counter()
    chunk_count = min(n, max(1, workers))
    size = (n + chunk_count - 1) // chunk_count
    payloads = [partner_chunk_payload(plan, start, min(start + size, n))
                for start in range(0, n, size)]
    return _merge_counters(
        _run_chunks(config, runtime, count_partner_chunk, "partner_chunk", payloads))


def partitioned_argmax_partner_select(plan: FusedArgmaxPlan,
                                      config: Optional[ExecutorConfig] = None,
                                      runtime: Optional[EngineRuntime] = None,
                                      ) -> List[Tuple[int, int, float]]:
    """Parallel form of :func:`repro.engine.fused.argmax_partner_select`.

    Contiguous chunks of the plan's groups scatter across workers; each
    worker returns its chunk's winner list and the lists concatenate in
    chunk order.  Groups are independent and winners are emitted in member
    order within each group, so the concatenation is identical to the serial
    list for any worker count and backend.  Like the partner plan, the flat
    columns are already dictionary-encoded ints and the shared side tables
    (count rows, supports, tie ranks) ship whole to every worker.
    ``runtime`` dispatches the same chunk payloads to a persistent worker
    pool instead of spawning one for this call.
    """
    workers, _ = _dispatch_plan(config, runtime)
    n = len(plan)
    if n == 0:
        return []
    chunk_count = min(n, max(1, workers))
    size = (n + chunk_count - 1) // chunk_count
    payloads = [argmax_chunk_payload(plan, start, min(start + size, n))
                for start in range(0, n, size)]
    results = _run_chunks(config, runtime, select_argmax_chunk, "argmax_chunk",
                          payloads)
    return [winner for chunk in results for winner in chunk]


def parallel_map_reduce(items: Sequence[Any],
                        map_func: Callable[[Sequence[Any]], Any],
                        reduce_func: Callable[[List[Any]], Any],
                        config: ExecutorConfig) -> Any:
    """Generic scatter/gather helper used by the GPS engine-backed model.

    ``items`` are split into ``config.workers`` contiguous chunks, ``map_func``
    runs per chunk on the configured backend, and ``reduce_func`` folds the
    chunk results into the final value.
    """
    if not items:
        return reduce_func([])
    chunks = [list(chunk) for chunk in _contiguous_chunks(items, config.workers)]
    executor = make_executor(config)
    return reduce_func(executor.map(map_func, chunks))
