"""Partitioned parallel execution of engine operations.

GPS's key computational claim is that its conditional-probability model is
embarrassingly parallel: the co-occurrence counts for disjoint feature
partitions never interact, so the work can be sharded across however many
workers are available (BigQuery slots in the paper, worker threads/processes
here).  The Table 2 benchmark sweeps the worker count and reports wall-clock
scaling of the same model computation.

Three backends share one interface:

* :class:`SerialExecutor` -- runs partitions in the calling thread (the
  single-core reference configuration of Table 2);
* :class:`ThreadPoolExecutorBackend` -- runs partitions on a thread pool
  (cheap to spin up; limited by the GIL for pure-Python aggregation but still
  useful for validating the partitioning logic);
* :class:`ProcessPoolExecutorBackend` -- runs partitions on a process pool
  (true parallelism; partition payloads must be picklable).

The helper :func:`partitioned_group_count` is the parallel form of
:func:`repro.engine.ops.group_count`: rows are sharded by the hash of their
key, each worker counts its shard, and the shard results are merged (counts
for a given key live in exactly one shard, so the merge is a plain union).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.engine.table import Table


@dataclass(frozen=True)
class ExecutorConfig:
    """How to run partitioned work.

    Attributes:
        backend: ``"serial"``, ``"thread"`` or ``"process"``.
        workers: number of partitions/workers (ignored for ``"serial"``).
    """

    backend: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend: {self.backend}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class ParallelExecutor:
    """Interface: run a map function over partitions and merge the results."""

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        """Apply ``func`` to every partition, returning results in order."""
        raise NotImplementedError


class SerialExecutor(ParallelExecutor):
    """Runs every partition in the calling thread."""

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        return [func(partition) for partition in partitions]


class ThreadPoolExecutorBackend(ParallelExecutor):
    """Runs partitions on a thread pool."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(func, partitions))


class ProcessPoolExecutorBackend(ParallelExecutor):
    """Runs partitions on a process pool (func and partitions must pickle)."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, func: Callable[[Any], Any], partitions: Sequence[Any]) -> List[Any]:
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(func, partitions))


def make_executor(config: ExecutorConfig) -> ParallelExecutor:
    """Instantiate the executor described by ``config``."""
    if config.backend == "serial":
        return SerialExecutor()
    if config.backend == "thread":
        return ThreadPoolExecutorBackend(config.workers)
    return ProcessPoolExecutorBackend(config.workers)


# -- partitioned group-count -----------------------------------------------------------


def _count_rows(rows: List[Tuple[Hashable, ...]]) -> Dict[Tuple[Hashable, ...], int]:
    """Count occurrences of each key tuple in one partition (worker function)."""
    counts: Dict[Tuple[Hashable, ...], int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


def partition_rows(rows: Iterable[Tuple[Hashable, ...]],
                   partitions: int) -> List[List[Tuple[Hashable, ...]]]:
    """Shard rows by the hash of their key tuple into ``partitions`` buckets."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    shards: List[List[Tuple[Hashable, ...]]] = [[] for _ in range(partitions)]
    for row in rows:
        shards[hash(row) % partitions].append(row)
    return shards


def partitioned_group_count(table: Table, keys: Sequence[str],
                            config: ExecutorConfig) -> Dict[Tuple[Hashable, ...], int]:
    """GROUP BY + COUNT(*) executed across partitions.

    Equivalent to :func:`repro.engine.ops.group_count`; the test suite checks
    the equivalence property on random tables.
    """
    rows = list(table.iter_rows(keys))
    partitions = max(1, config.workers)
    shards = partition_rows(rows, partitions)
    executor = make_executor(config)
    shard_counts = executor.map(_count_rows, shards)
    merged: Dict[Tuple[Hashable, ...], int] = {}
    for counts in shard_counts:
        # Keys are hash-partitioned, so shards are disjoint; a plain update
        # would suffice, but summing keeps the merge correct even if a caller
        # passes overlapping shards.
        for key, count in counts.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def parallel_map_reduce(items: Sequence[Any],
                        map_func: Callable[[Sequence[Any]], Any],
                        reduce_func: Callable[[List[Any]], Any],
                        config: ExecutorConfig) -> Any:
    """Generic scatter/gather helper used by the GPS engine-backed model.

    ``items`` are split into ``config.workers`` contiguous chunks, ``map_func``
    runs per chunk on the configured backend, and ``reduce_func`` folds the
    chunk results into the final value.
    """
    if not items:
        return reduce_func([])
    chunk_count = min(len(items), max(1, config.workers))
    chunk_size = (len(items) + chunk_count - 1) // chunk_count
    chunks = [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]
    executor = make_executor(config)
    return reduce_func(executor.map(map_func, chunks))
