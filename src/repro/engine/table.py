"""A small in-memory columnar table.

The engine's tables are deliberately simple: named columns backed by Python
lists, with row access as tuples.  The GPS workload never needs mutation,
indexing structures or type enforcement beyond "hashable values" -- it needs
projection, join and group-by over a few hundred thousand rows, which the ops
module provides on top of this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

Column = List[Any]


@dataclass
class Table:
    """A named collection of equal-length columns.

    Attributes:
        columns: mapping of column name to column values.  All columns must
            have the same length; the invariant is checked at construction and
            after every operation that builds a new table.
    """

    columns: Dict[str, Column]

    def __post_init__(self) -> None:
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from row tuples."""
        columns: Dict[str, Column] = {name: [] for name in names}
        for row in rows:
            if len(row) != len(names):
                raise ValueError(
                    f"row of width {len(row)} does not match schema of width {len(names)}"
                )
            for name, value in zip(names, row):
                columns[name].append(value)
        return cls(columns=columns)

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]],
                     names: Sequence[str]) -> "Table":
        """Build a table from dict records, taking ``names`` in order.

        Missing keys become ``None`` so sparse feature dictionaries (most
        application-layer features are absent for most services) map cleanly
        onto a fixed schema.
        """
        columns: Dict[str, Column] = {name: [] for name in names}
        for record in records:
            for name in names:
                columns[name].append(record.get(name))
        return cls(columns=columns)

    @classmethod
    def empty(cls, names: Sequence[str]) -> "Table":
        """An empty table with the given schema."""
        return cls(columns={name: [] for name in names})

    # -- accessors ---------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Column names in insertion order."""
        return list(self.columns)

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> Column:
        """Return one column (by reference; callers must not mutate it)."""
        return self.columns[name]

    def row(self, index: int) -> Tuple[Any, ...]:
        """Return one row as a tuple in schema order."""
        return tuple(self.columns[name][index] for name in self.columns)

    def iter_rows(self, names: Sequence[str] | None = None) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples, optionally restricted to a column subset."""
        selected = list(names) if names is not None else self.names
        cols = [self.columns[name] for name in selected]
        for values in zip(*cols) if cols else iter(()):
            yield values

    def to_records(self) -> List[Dict[str, Any]]:
        """Materialise the table as a list of dicts (tests and small outputs)."""
        names = self.names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows as a new table."""
        return Table(columns={name: col[:n] for name, col in self.columns.items()})
